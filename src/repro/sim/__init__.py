"""Discrete-event simulation primitives (clock + deterministic queues)."""

from .clock import MS, SECONDS, VirtualClock  # noqa: F401
from .queue import EventQueue  # noqa: F401
