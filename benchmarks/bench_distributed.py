"""Distributed exploration: the scaling gate (ROADMAP item 1 realized).

``bench_parallel.py`` proves worker-count-independent merging when the
scenario already *has* independent partitions.  This benchmark covers the
hard case that motivated :mod:`repro.core.distributed`: a single
connected 3-node symbolic flood whose SDS component graph gives
``ParallelRunner`` exactly one partition and therefore zero parallelism.
The distributed runner deepens the engine until the component fractures,
ships each subtree as a self-contained job, and work-steals stragglers.

Two properties are gated:

- **Exactness** — the distributed run (4 workers, stealing on) produces
  the same semantic counters *and* the same canonical trace multiset as
  the sequential run.  This holds unconditionally, on any machine.
- **Scaling** — wall-clock speedup at 4 workers.  The bar is tiered by
  the cores actually available to this process (cgroup-capped CI boxes
  often expose fewer): >=1.5x with 4+ cores, >=1.2x with 2-3, and on a
  single core only a bounded-overhead assertion (workers timeshare the
  core, so no wall-clock win is possible by construction).

Wall-clock is measured untraced — shipping per-event traces through the
transport is a debugging feature, not the production path — while the
equality check runs traced.  Headline numbers land in the
``SDE_BENCH_JSON`` artifact via :func:`benchmarks.record.record_bench`.
"""

import os
import time

from benchmarks.bench_solver import SYMBOLIC_FLOOD
from benchmarks.record import record_bench
from repro.api import DistributedRunner, Scenario, Topology, build_engine
from repro.obs import TraceEmitter, diff_traces, validate_trace

WORKERS = 4


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _scenario():
    return Scenario(
        name="symbolic-flood-3",
        program=SYMBOLIC_FLOOD,
        topology=Topology.full_mesh(3),
        horizon_ms=300,
    )


def test_distributed_equals_sequential(once, benchmark):
    """Trace-multiset equality of distributed vs sequential (traced)."""

    def measure():
        seq_trace = TraceEmitter()
        sequential = build_engine(_scenario(), "sds", trace=seq_trace).run()
        dist_trace = TraceEmitter()
        distributed = DistributedRunner(
            _scenario(), "sds", workers=WORKERS, trace=dist_trace
        ).run()
        return sequential, seq_trace, distributed, dist_trace

    sequential, seq_trace, distributed, dist_trace = once(measure)

    seq_counters = sequential.metrics["counters"]
    dist_counters = distributed.metrics["counters"]
    for name in (
        "states.total",
        "mapping.groups",
        "run.events_executed",
        "run.instructions",
        "solver.queries",
    ):
        assert dist_counters[name] == seq_counters[name], (
            name,
            seq_counters[name],
            dist_counters[name],
        )
    assert validate_trace(dist_trace.events) == []
    diff = diff_traces(seq_trace.events, dist_trace.events)
    assert diff.equal, diff.render(limit=5)

    benchmark.extra_info["jobs"] = dist_counters["distributed.jobs"]
    benchmark.extra_info["steals_granted"] = dist_counters["distributed.steals.granted"]
    record_bench(
        distributed_trace_equal=True,
        distributed_jobs=dist_counters["distributed.jobs"],
        distributed_steals_granted=dist_counters["distributed.steals.granted"],
        distributed_partition_depth=dist_counters[
            "distributed.partition_depth"
        ],
    )


def test_distributed_speedup(once, benchmark):
    """Wall-clock speedup at 4 workers on one connected component."""

    def measure():
        t0 = time.perf_counter()
        sequential = build_engine(_scenario(), "sds").run()
        sequential_s = time.perf_counter() - t0

        t1 = time.perf_counter()
        distributed = DistributedRunner(_scenario(), "sds", workers=WORKERS).run()
        distributed_s = time.perf_counter() - t1
        return sequential, sequential_s, distributed, distributed_s

    sequential, sequential_s, distributed, distributed_s = once(measure)

    # Cheap sanity that the timed runs explored the same space; the full
    # trace-level check is test_distributed_equals_sequential's job.
    assert distributed.total_states == sequential.total_states
    assert distributed.group_count == sequential.group_count

    cores = _available_cores()
    speedup = sequential_s / max(distributed_s, 1e-9)
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["sequential_s"] = round(sequential_s, 3)
    benchmark.extra_info["distributed_s"] = round(distributed_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["partition_depth"] = distributed.partition_depth
    benchmark.extra_info["jobs"] = distributed.jobs_dispatched
    record_bench(
        distributed_sequential_s=round(sequential_s, 3),
        distributed_wall_s=round(distributed_s, 3),
        distributed_speedup=round(speedup, 2),
        distributed_workers=WORKERS,
        distributed_cores=cores,
    )
    if cores >= 4:
        # The acceptance bar: near-linear scaling on the connected
        # component ParallelRunner cannot split at all.
        assert speedup >= 1.5, (
            f"distributed run too slow: {sequential_s:.2f}s sequential vs"
            f" {distributed_s:.2f}s on {WORKERS} workers (x{speedup:.2f})"
        )
    elif cores >= 2:
        assert speedup >= 1.2, (
            f"distributed run too slow: {sequential_s:.2f}s sequential vs"
            f" {distributed_s:.2f}s on {WORKERS} workers (x{speedup:.2f})"
        )
    else:
        # One core: no wall-clock win is possible, so assert the bounded
        # overhead of partition probing + shipping + process management.
        assert speedup > 1.0 / 1.4, (
            f"distributed overhead too high on a single core:"
            f" {sequential_s:.2f}s sequential vs {distributed_s:.2f}s"
            f" (x{speedup:.2f})"
        )
