"""Structured observability for SDE runs.

The paper's evaluation (Figures 9-12) lives on knowing *where* state
duplication and solver time go.  This package makes every run emit that
information as data rather than prose, in three layers:

- :mod:`repro.obs.events` — a low-overhead structured **event trace**
  (state forks, packet sends/deliveries, mapper copies, solver queries,
  worker lifecycle) serialized as JSONL;
- :mod:`repro.obs.metrics` — a **metrics registry** (counters, gauges,
  histograms) with deterministic snapshots, the JSON contract that
  benchmarks and CI trend;
- :mod:`repro.obs.profile` — a **phase profiler** (execute / map / solve /
  merge context-manager timers) surfaced in run reports.

:mod:`repro.obs.tracetool` turns traces back into summaries and diffs two
traces by canonical event multiset — the check behind the guarantee that a
``--workers N`` run is semantically identical to the sequential run.
"""

from .events import (
    EVENT_SCHEMA,
    META_EVENT_PREFIXES,
    VOLATILE_FIELDS,
    TraceEmitter,
    load_trace,
)
from .fileio import atomic_write_bytes, atomic_write_text
from .metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    report_snapshot,
    save_metrics,
    validate_metrics,
)
from .profile import PhaseProfiler, merge_phase_snapshots
from .tracetool import (
    TraceDiff,
    canonical_multiset,
    diff_traces,
    summarize_trace,
    validate_trace,
)

__all__ = [
    "EVENT_SCHEMA",
    "META_EVENT_PREFIXES",
    "VOLATILE_FIELDS",
    "TraceEmitter",
    "load_trace",
    "atomic_write_bytes",
    "atomic_write_text",
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "report_snapshot",
    "save_metrics",
    "validate_metrics",
    "PhaseProfiler",
    "merge_phase_snapshots",
    "TraceDiff",
    "canonical_multiset",
    "diff_traces",
    "summarize_trace",
    "validate_trace",
]
