"""Concrete evaluator tests, including the hypothesis oracle that smart
constructors never change an expression's meaning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import (
    EvalError,
    add,
    ashr,
    bv,
    bvand,
    bvnot,
    bvor,
    bvxor,
    concat,
    eq,
    evaluate,
    extract,
    ite,
    lshr,
    mask,
    mul,
    ne,
    neg,
    sdiv,
    sext,
    shl,
    sle,
    slt,
    srem,
    sub,
    to_signed,
    udiv,
    ule,
    ult,
    urem,
    var,
    zext,
)

X = var("x")
Y = var("y")


class TestBasicEvaluation:
    def test_const(self):
        assert evaluate(bv(42), {}) == 42

    def test_var(self):
        assert evaluate(X, {"x": 7}) == 7

    def test_var_value_masked(self):
        assert evaluate(var("b", 8), {"b": 0x1FF}) == 0xFF

    def test_missing_var_raises(self):
        with pytest.raises(EvalError):
            evaluate(X, {})

    def test_arith(self):
        env = {"x": 10, "y": 3}
        assert evaluate(add(X, Y), env) == 13
        assert evaluate(sub(X, Y), env) == 7
        assert evaluate(mul(X, Y), env) == 30
        assert evaluate(udiv(X, Y), env) == 3
        assert evaluate(urem(X, Y), env) == 1

    def test_wrapping(self):
        env = {"x": 0xFFFFFFFF, "y": 1}
        assert evaluate(add(X, Y), env) == 0
        assert evaluate(sub(bv(0), Y), env) == 0xFFFFFFFF

    def test_division_by_zero_smt_semantics(self):
        env = {"x": 10, "y": 0}
        assert evaluate(udiv(X, Y), env) == mask(32)
        assert evaluate(urem(X, Y), env) == 10
        assert evaluate(sdiv(X, Y), env) == mask(32)
        assert evaluate(srem(X, Y), env) == 10

    def test_comparisons(self):
        env = {"x": 5, "y": 0xFFFFFFFF}
        assert evaluate(ult(X, Y), env) is True
        assert evaluate(slt(Y, X), env) is True  # -1 <s 5
        assert evaluate(eq(X, bv(5)), env) is True
        assert evaluate(ne(X, bv(5)), env) is False

    def test_ite(self):
        e = ite(ult(X, bv(10)), bv(1), bv(2))
        assert evaluate(e, {"x": 3}) == 1
        assert evaluate(e, {"x": 30}) == 2

    def test_extract_concat_extend(self):
        b = var("b", 8)
        assert evaluate(zext(b, 32), {"b": 0xFF}) == 0xFF
        assert evaluate(sext(b, 32), {"b": 0xFF}) == 0xFFFFFFFF
        assert evaluate(concat(b, var("c", 8)), {"b": 0xAB, "c": 0xCD}) == 0xABCD
        assert evaluate(extract(X, 8, 8), {"x": 0xABCD}) == 0xAB

    def test_deep_chain_no_recursion_error(self):
        expr = X
        for _ in range(5000):
            expr = bvxor(add(expr, bv(1)), bv(3))
        assert isinstance(evaluate(expr, {"x": 1}), int)


# ---------------------------------------------------------------------------
# Property: builders are semantics-preserving.
# ---------------------------------------------------------------------------

_val8 = st.integers(min_value=0, max_value=255)
_val32 = st.integers(min_value=0, max_value=mask(32))

_BINARY_FNS = [add, sub, mul, udiv, urem, sdiv, srem, bvand, bvor, bvxor]
_SHIFT_FNS = [shl, lshr, ashr]
_CMP_FNS = [eq, ne, ult, ule, slt, sle]


def _reference_binary(fn, a, b, w):
    """Direct Python reference semantics for each operator."""
    m = mask(w)
    if fn is add:
        return (a + b) & m
    if fn is sub:
        return (a - b) & m
    if fn is mul:
        return (a * b) & m
    if fn is udiv:
        return m if b == 0 else a // b
    if fn is urem:
        return a if b == 0 else a % b
    if fn is sdiv:
        sa, sb = to_signed(a, w), to_signed(b, w)
        if sb == 0:
            return m
        q = abs(sa) // abs(sb)
        return (-q if (sa < 0) != (sb < 0) else q) & m
    if fn is srem:
        sa, sb = to_signed(a, w), to_signed(b, w)
        if sb == 0:
            return a
        r = abs(sa) % abs(sb)
        return (-r if sa < 0 else r) & m
    if fn is bvand:
        return a & b
    if fn is bvor:
        return a | b
    if fn is bvxor:
        return a ^ b
    raise AssertionError(fn)


class TestBuilderSoundness:
    @settings(max_examples=300)
    @given(
        st.sampled_from(_BINARY_FNS),
        _val32,
        _val32,
        st.booleans(),
        st.booleans(),
    )
    def test_binary_ops_match_reference(self, fn, a, b, sym_a, sym_b):
        # Build with a mix of symbolic/concrete operands so both the folding
        # and non-folding constructor paths are exercised.
        ea = X if sym_a else bv(a)
        eb = Y if sym_b else bv(b)
        result = evaluate(fn(ea, eb), {"x": a, "y": b})
        assert result == _reference_binary(fn, a, b, 32)

    @settings(max_examples=200)
    @given(
        st.sampled_from(_SHIFT_FNS),
        _val32,
        st.integers(min_value=0, max_value=40),
        st.booleans(),
    )
    def test_shifts_match_reference(self, fn, a, amount, sym_a):
        ea = X if sym_a else bv(a)
        result = evaluate(fn(ea, bv(amount)), {"x": a})
        if fn is shl:
            expected = 0 if amount >= 32 else (a << amount) & mask(32)
        elif fn is lshr:
            expected = 0 if amount >= 32 else a >> amount
        else:
            expected = (to_signed(a, 32) >> min(amount, 31)) & mask(32)
        assert result == expected

    @settings(max_examples=300)
    @given(st.sampled_from(_CMP_FNS), _val32, _val32, st.booleans())
    def test_comparisons_match_reference(self, fn, a, b, sym_a):
        ea = X if sym_a else bv(a)
        result = evaluate(fn(ea, bv(b)), {"x": a})
        sa, sb = to_signed(a, 32), to_signed(b, 32)
        expected = {
            eq: a == b,
            ne: a != b,
            ult: a < b,
            ule: a <= b,
            slt: sa < sb,
            sle: sa <= sb,
        }[fn]
        assert result == expected

    @settings(max_examples=200)
    @given(_val8)
    def test_extend_roundtrip(self, value):
        b = var("b", 8)
        env = {"b": value}
        assert evaluate(extract(zext(b, 32), 0, 8), env) == value
        widened = evaluate(sext(b, 32), env)
        assert to_signed(widened, 32) == to_signed(value, 8)

    @settings(max_examples=200)
    @given(_val32)
    def test_unary_ops(self, value):
        env = {"x": value}
        assert evaluate(neg(X), env) == (-value) & mask(32)
        assert evaluate(bvnot(X), env) == (~value) & mask(32)

    @settings(max_examples=100)
    @given(_val8, _val8)
    def test_concat_extract_inverse(self, hi, lo):
        h, l = var("h", 8), var("l", 8)
        joined = concat(h, l)
        env = {"h": hi, "l": lo}
        assert evaluate(extract(joined, 8, 8), env) == hi
        assert evaluate(extract(joined, 0, 8), env) == lo
