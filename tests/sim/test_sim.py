"""Discrete-event primitives: queue determinism and clock monotonicity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import EventQueue, VirtualClock


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(30, "c")
        queue.push(10, "a")
        queue.push(20, "b")
        out = [queue.pop() for _ in range(3)]
        assert out == [(10, "a"), (20, "b"), (30, "c")]

    def test_fifo_on_equal_times(self):
        queue = EventQueue()
        for item in "abcde":
            queue.push(5, item)
        out = [queue.pop()[1] for _ in range(5)]
        assert out == list("abcde")

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_lazy_invalidation(self):
        queue = EventQueue()
        queue.push(1, "stale")
        queue.push(2, "live")
        result = queue.pop(lambda t, item: item != "stale")
        assert result == (2, "live")

    def test_all_invalid_returns_none(self):
        queue = EventQueue()
        queue.push(1, "x")
        assert queue.pop(lambda t, i: False) is None
        assert len(queue) == 0

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(7, "x")
        assert queue.peek_time() == 7
        assert len(queue) == 1

    def test_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(1, "x")
        assert queue

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=50))
    def test_pops_sorted(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(t, t)
        out = []
        while queue:
            out.append(queue.pop()[0])
        assert out == sorted(times)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock(1000).now == 0

    def test_advance(self):
        clock = VirtualClock(1000)
        clock.advance_to(500)
        assert clock.now == 500

    def test_no_time_travel(self):
        clock = VirtualClock(1000)
        clock.advance_to(500)
        with pytest.raises(ValueError):
            clock.advance_to(400)

    def test_advance_to_same_time_ok(self):
        clock = VirtualClock(1000)
        clock.advance_to(500)
        clock.advance_to(500)

    def test_horizon(self):
        clock = VirtualClock(1000)
        assert not clock.expired(1000)
        assert clock.expired(1001)

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            VirtualClock(0)
