"""Persistent benchmark recording (the ``BENCH_<pr>.json`` artifact).

When ``SDE_BENCH_JSON`` names a file, benches call :func:`record_bench`
with their headline numbers; values are merged into that JSON file
(atomic replace, sorted keys) so the CI jobs can upload one
machine-readable artifact per run and the perf trajectory stays
comparable across PRs.  Without the env var the call is a no-op, so
local ``pytest benchmarks/`` runs stay side-effect free.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["record_bench", "bench_json_path"]


def bench_json_path() -> str:
    """The artifact path, or '' when recording is disabled."""
    return os.environ.get("SDE_BENCH_JSON", "")


def record_bench(**values) -> None:
    """Merge ``values`` into the ``SDE_BENCH_JSON`` file, if configured."""
    path = bench_json_path()
    if not path:
        return
    merged = {}
    try:
        with open(path) as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        pass
    merged.update(values)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(merged, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
