"""The trace emitter: event shape, serialization, and the disabled path."""

import json
import os
import tracemalloc

import pytest

import repro.obs
from repro import Scenario, Topology, build_engine
from repro.obs import EVENT_SCHEMA, TraceEmitter, load_trace, validate_trace

PING = """
func on_boot() {
    if (node_id() == 0) { timer_set(0, 50); }
}
func on_timer(tid) {
    var buf[1];
    buf[0] = 7;
    uc_send(1, buf, 1);
}
"""


def _ping_scenario():
    return Scenario(
        name="ping", program=PING, topology=Topology.line(2), horizon_ms=200
    )


class TestTraceEmitter:
    def test_emit_stamps_type_seq_and_worker(self):
        trace = TraceEmitter(worker=3)
        trace.emit("packet.send", src=0, dest=1, t=10, bcast=False, pid=1)
        trace.emit("packet.deliver", node=1, src=0, t=11, pid=1, sid=2)
        assert [e["ev"] for e in trace.events] == [
            "packet.send",
            "packet.deliver",
        ]
        assert [e["seq"] for e in trace.events] == [0, 1]
        assert all(e["worker"] == 3 for e in trace.events)

    def test_len_and_truthiness(self):
        trace = TraceEmitter()
        assert len(trace) == 0
        assert trace  # an empty emitter is still "on"
        trace.emit("run.start", algorithm="sds", nodes=2)
        assert len(trace) == 1

    def test_extend_keeps_foreign_events_verbatim(self):
        trace = TraceEmitter()
        foreign = [{"ev": "state.reboot", "node": 1, "t": 5, "sid": 9, "seq": 0}]
        trace.extend(foreign)
        assert trace.events[-1]["node"] == 1

    def test_dump_and_load_round_trip(self, tmp_path):
        trace = TraceEmitter()
        trace.emit("run.start", algorithm="sds", nodes=2)
        trace.emit("state.fork", node=0, t=3, reason="local", parent=1, child=2)
        path = tmp_path / "events.jsonl"
        trace.dump(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["ev"] == "run.start"
        assert load_trace(path) == trace.events

    def test_schema_covers_engine_emissions(self):
        trace = TraceEmitter()
        engine = build_engine(_ping_scenario(), "sds", trace=trace)
        engine.run()
        assert len(trace) > 0
        assert validate_trace(trace.events) == []
        seen = {event["ev"] for event in trace.events}
        assert {"run.start", "run.end", "packet.send", "packet.deliver"} <= seen
        assert seen <= set(EVENT_SCHEMA)


class TestDisabledTracing:
    def test_engine_defaults_to_no_trace(self):
        engine = build_engine(_ping_scenario(), "sds")
        assert engine.trace is None
        assert engine.medium.trace is None
        assert engine.solver.trace is None
        assert engine.mapper.trace is None

    def test_disabled_tracing_never_calls_the_emitter(self, monkeypatch):
        def boom(self, ev, **fields):  # pragma: no cover - must not run
            raise AssertionError(f"emit({ev!r}) called with tracing disabled")

        monkeypatch.setattr(TraceEmitter, "emit", boom)
        report = build_engine(_ping_scenario(), "sds").run()
        assert report.total_states > 0

    def test_disabled_tracing_allocates_nothing(self):
        # The zero-allocation claim: with trace=None the hot path never
        # enters the emitter module, so tracemalloc can attribute no
        # allocation to it.  (repro.obs.metrics is exempt: the solver's
        # query histogram is always-on by design and counts plain ints.)
        engine = build_engine(_ping_scenario(), "sds")
        events_file = os.path.join(
            os.path.dirname(repro.obs.__file__), "events.py"
        )
        tracemalloc.start()
        try:
            engine.run()
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        offenders = [
            stat
            for stat in snapshot.statistics("lineno")
            if stat.traceback[0].filename == events_file
        ]
        assert offenders == [], offenders


class TestValidation:
    def test_unknown_event_type_reported(self):
        problems = validate_trace([{"ev": "bogus.event", "seq": 0}])
        assert any("unknown type" in p for p in problems)

    def test_missing_required_field_reported(self):
        problems = validate_trace([{"ev": "packet.send", "seq": 0, "src": 1}])
        assert any("missing fields" in p for p in problems)

    def test_missing_seq_reported(self):
        problems = validate_trace(
            [{"ev": "net.broadcast", "src": 0, "targets": 3}]
        )
        assert problems == ["event 0 (net.broadcast): missing seq"]


@pytest.mark.parametrize("algorithm", ["cob", "cow", "sds"])
def test_all_mappers_emit_valid_traces(algorithm):
    from repro.workloads import grid_scenario

    trace = TraceEmitter()
    build_engine(grid_scenario(3, sim_seconds=4), algorithm, trace=trace).run()
    assert validate_trace(trace.events) == []
    assert any(e["ev"] == "mapper.copy" for e in trace.events) or algorithm == "cob"
