"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``      — run one scenario under one algorithm, print the report
- ``compare``  — run a scenario under all three algorithms (Table-I style)
- ``table1``   — regenerate Table I (delegates to repro.bench.table1)
- ``figure10`` — regenerate Figure 10 (delegates to repro.bench.figure10)
- ``compile``  — compile an NSL source file and print the disassembly
- ``testcases``— run a scenario and emit distributed test cases
- ``trace``    — summarize, diff or schema-check run artifacts
  (``trace summary``, ``trace diff``, ``trace check-metrics``)

Scenario selectors for run/compare/testcases: ``grid:<side>``,
``line:<k>``, ``flood:<k>``, ``election:<k>``, ``quorum:<k>``
(e.g. ``grid:5`` is the paper's 25-node grid).  ``run`` accepts
``--trace-out events.jsonl`` and ``--metrics-out metrics.json`` to capture
the structured observability artifacts, ``--no-fuse`` (or ``SDE_NO_FUSE=1``)
to run on the unfused base ISA, and the network-medium flags
(``--medium``, ``--link-loss``, ``--link-jitter-ms``, ``--link-bandwidth``,
``--link-queue``, ``--net-seed``; docs/NETWORK.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .bench.report import render_table1
from .bench.runner import BenchRow, run_one
from .core.scenario import ALGORITHMS, Scenario, build_engine
from .core.testcase import generate_incrementally
from .obs import TraceEmitter, save_metrics
from .workloads import (
    election_scenario,
    flood_scenario,
    grid_scenario,
    line_scenario,
    quorum_scenario,
)

__all__ = ["main"]


def _parse_scenario(spec: str, sim_seconds: int) -> Scenario:
    kind, _, size_text = spec.partition(":")
    if not size_text:
        raise SystemExit(
            f"bad scenario {spec!r}: use grid:<side>, line:<k>, flood:<k>,"
            " election:<k> or quorum:<k>"
        )
    size = int(size_text)
    if kind == "grid":
        return grid_scenario(size, sim_seconds=sim_seconds)
    if kind == "line":
        return line_scenario(size, sim_seconds=sim_seconds)
    if kind == "flood":
        return flood_scenario(size, rounds=max(1, sim_seconds))
    if kind == "election":
        return election_scenario(size)
    if kind == "quorum":
        return quorum_scenario(size)
    raise SystemExit(f"unknown scenario kind {kind!r}")


#: ``--link-*`` flag dest -> RealisticMedium constructor parameter.
_LINK_FLAGS = {
    "link_loss": "loss",
    "link_jitter_ms": "jitter_ms",
    "link_bandwidth": "bandwidth_cells_per_ms",
    "link_queue": "queue_capacity",
    "net_seed": "seed",
}


def _medium_overrides(args) -> dict:
    """Engine overrides for ``--medium`` and the ``--link-*`` flags.

    Link parameters without an explicit ``--medium`` imply ``realistic``
    (the ideal medium has no links to configure — asking for both is a
    contradiction and fails loudly).  Returns ``{}`` when no medium flag
    was given, so scenario defaults (e.g. quorum's routed medium) stand.
    """
    medium = getattr(args, "medium", None)
    params = {
        param: value
        for dest, param in _LINK_FLAGS.items()
        if (value := getattr(args, dest, None)) is not None
    }
    if medium is None and not params:
        return {}
    if params and medium == "ideal":
        raise SystemExit(
            "--link-* flags configure the realistic medium; they cannot be"
            " combined with --medium ideal"
        )
    return {"medium": medium or "realistic", "medium_params": params}


def _checkpoint_overrides(args) -> dict:
    """Engine overrides for ``--checkpoint-out`` / ``--checkpoint-every``."""
    checkpoint_out = getattr(args, "checkpoint_out", None)
    if not checkpoint_out:
        return {}
    return dict(
        checkpoint_path=checkpoint_out,
        checkpoint_every_events=getattr(args, "checkpoint_every", None) or 500,
        checkpoint_every_seconds=getattr(
            args, "checkpoint_every_seconds", None
        ),
    )


def _emit_artifacts(report, trace, args):
    """Write the trace/metrics artifacts a run was asked for (atomic)."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace is not None:
        trace.dump(trace_out)
        print(f"trace written to {trace_out} ({len(trace)} events)")
    if metrics_out is not None:
        save_metrics(report.metrics, metrics_out)
        print(f"metrics written to {metrics_out}")


def _fusion_disabled(args) -> bool:
    """``--no-fuse`` or ``SDE_NO_FUSE=<anything but 0/empty>``."""
    if getattr(args, "no_fuse", False):
        return True
    return os.environ.get("SDE_NO_FUSE", "") not in ("", "0")


def _run_report(scenario, algorithm, args, **caps):
    """One run — distributed/parallel per the worker flags, else sequential."""
    trace = TraceEmitter() if getattr(args, "trace_out", None) else None
    caps.update(_checkpoint_overrides(args))
    caps.update(_medium_overrides(args))
    if _fusion_disabled(args):
        caps["fuse_ops"] = False
    if getattr(args, "symmetry", False):
        caps["symmetry"] = True
    if getattr(args, "por", False):
        caps["por"] = True
    if getattr(args, "distributed", False):
        from .core.distributed import DistributedRunner

        report = DistributedRunner(
            scenario,
            algorithm,
            workers=args.workers if args.workers is not None else 4,
            partition_depth=getattr(args, "partition_depth", None),
            steal=getattr(args, "steal", True),
            trace=trace,
            max_retries=getattr(args, "max_retries", None),
            allow_partial=getattr(args, "allow_partial", None),
            task_timeout_seconds=getattr(args, "task_timeout", None),
            **caps,
        ).run()
    elif args.workers is not None:
        from .core.parallel import ParallelRunner

        report = ParallelRunner(
            scenario,
            algorithm,
            workers=args.workers,
            split_ms=args.split_ms,
            trace=trace,
            max_retries=getattr(args, "max_retries", None),
            allow_partial=getattr(args, "allow_partial", None),
            task_timeout_seconds=getattr(args, "task_timeout", None),
            **caps,
        ).run()
    else:
        engine = build_engine(scenario, algorithm, trace=trace, **caps)
        report = engine.run()
    _emit_artifacts(report, trace, args)
    return report


def _resume_report(args):
    """Continue an aborted or killed run from a ``--checkpoint-out`` file."""
    from .core.resilience import CheckpointError, resume_engine

    trace = TraceEmitter() if getattr(args, "trace_out", None) else None
    try:
        engine = resume_engine(
            args.resume, trace=trace, **_checkpoint_overrides(args)
        )
    except CheckpointError as exc:
        raise SystemExit(f"cannot resume: {exc}") from exc
    print(
        f"resumed from {args.resume}"
        f" ({engine.events_executed} events already executed)"
    )
    report = engine.run()
    _emit_artifacts(report, trace, args)
    return report


def _cmd_run(args) -> int:
    if args.resume:
        report = _resume_report(args)
        name = f"resume({args.resume})"
    else:
        if args.scenario is None:
            raise SystemExit("a scenario is required unless --resume is given")
        scenario = _parse_scenario(args.scenario, args.sim_seconds)
        report = _run_report(
            scenario,
            args.algorithm,
            args,
            max_states=args.max_states,
            max_wall_seconds=args.max_wall_seconds,
        )
        name = scenario.name
    row = BenchRow(name, report)
    print(render_table1([row], f"{name} under {report.algorithm}"))
    print(f"\nevents={row.events} instructions={row.instructions}"
          f" error-states={row.error_states}")
    if hasattr(report, "partition_count"):
        print(
            f"workers={report.workers} partitions={report.partition_count}"
            f" prefix-events={report.prefix_events}"
            f" projected-speedup=x{report.projected:.2f}"
        )
        if report.retries:
            print(f"worker-retries={report.retries}")
    if hasattr(report, "partition_depth"):
        print(
            f"distributed: depth={report.partition_depth}"
            f" jobs={report.jobs_dispatched}"
            f" steals={report.steals_granted}/{report.steals_requested}"
            f" ({report.transport_name})"
        )
    if getattr(report, "partial", False):
        print(
            f"PARTIAL: {len(report.failed_partitions)} partition(s) failed"
            " after retries"
        )
        for failure in report.failed_partitions:
            print(f"  - {failure.describe()}")
    if getattr(report, "checkpoints_written", 0) and args.checkpoint_out:
        print(
            f"checkpoints written: {report.checkpoints_written}"
            f" (latest: {args.checkpoint_out})"
        )
    if row.aborted:
        print(f"ABORTED: {row.abort_reason}")
    if args.json:
        from .core.reporting import save_report

        save_report(report, args.json)
        print(f"report written to {args.json}")
    return 0


def _cmd_compare(args) -> int:
    rows: List[BenchRow] = []
    for algorithm in ALGORITHMS:
        scenario = _parse_scenario(args.scenario, args.sim_seconds)
        caps = {}
        if algorithm == "cob":
            caps = dict(
                max_states=args.max_states or 500_000,
                max_wall_seconds=args.max_wall_seconds or 120.0,
            )
        if args.workers is not None:
            report = _run_report(scenario, algorithm, args, **caps)
            rows.append(BenchRow(scenario.name, report))
        else:
            rows.append(run_one(scenario, algorithm, **caps))
    suffix = f" ({args.workers} workers)" if args.workers is not None else ""
    print(render_table1(rows, f"{args.scenario} — algorithm comparison{suffix}"))
    return 0


def _cmd_compile(args) -> int:
    from .lang import compile_source, disassemble

    with open(args.file) as handle:
        source = handle.read()
    program = compile_source(source)
    print(
        f"; {len(program.functions)} functions, {len(program.code)}"
        f" instructions, {program.memory_size} memory cells"
    )
    print(disassemble(program))
    return 0


def _cmd_testcases(args) -> int:
    scenario = _parse_scenario(args.scenario, args.sim_seconds)
    engine = build_engine(scenario, args.algorithm)
    report = engine.run()
    print(
        f"# {scenario.name}: {report.total_states} states,"
        f" {report.group_count} groups, {len(report.error_states)} defects"
    )
    emitted = 0
    for testcase in generate_incrementally(
        engine.mapper, engine.solver, limit=args.limit
    ):
        emitted += 1
        status = "ok" if not testcase.errors() else "DEFECT"
        if not testcase.feasible:
            status = "infeasible"
        inputs = " ".join(
            f"{name}={value}"
            for name, value in sorted(testcase.assignments.items())
        )
        print(f"testcase {emitted:4d} [{status}] {inputs}")
    return 0


def _cmd_trace(args) -> int:
    from .obs import diff_traces, load_trace, validate_metrics, validate_trace
    from .obs.tracetool import render_summary, summarize_trace

    if args.trace_command == "summary":
        events = load_trace(args.trace)
        print(render_summary(summarize_trace(events)))
        problems = validate_trace(events)
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1 if problems else 0
    if args.trace_command == "diff":
        diff = diff_traces(load_trace(args.a), load_trace(args.b))
        print(diff.render())
        return 0 if diff.equal else 1
    if args.trace_command == "check-metrics":
        import json

        with open(args.metrics) as handle:
            data = json.load(handle)
        errors = validate_metrics(data)
        for error in errors:
            print(f"INVALID: {error}", file=sys.stderr)
        if not errors:
            counters = data["counters"]
            print(
                f"metrics OK: {len(counters)} counters,"
                f" {len(data['gauges'])} gauges,"
                f" {len(data['histograms'])} histograms"
                f" ({counters['run.events_executed']} events,"
                f" {counters['states.total']} states)"
            )
        return 1 if errors else 0
    raise SystemExit(f"unknown trace command {args.trace_command!r}")


def _cmd_serve(args) -> int:
    from .service import ServiceLimits, serve_main

    limits = ServiceLimits(
        max_queue=args.max_queue,
        max_active=args.max_active,
        per_client=args.per_client,
        job_timeout_seconds=args.job_timeout,
        max_retries=args.job_retries,
        checkpoint_every_events=args.checkpoint_every or 25,
    )
    serve_main(args.data_dir, host=args.host, port=args.port, limits=limits)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro`` argument parser.

    Exposed separately from :func:`main` so tooling can introspect the
    real flag surface — ``tools/docs_lint.py`` walks this parser to keep
    README/docs flag mentions honest.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SDE: scalable symbolic execution of distributed systems",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one scenario")
    run_parser.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="grid:<side> | line:<k> | flood:<k> (omit with --resume)",
    )
    run_parser.add_argument("--algorithm", choices=ALGORITHMS, default="sds")
    run_parser.add_argument("--sim-seconds", type=int, default=10)
    run_parser.add_argument("--max-states", type=int, default=None)
    run_parser.add_argument("--max-wall-seconds", type=float, default=None)
    run_parser.add_argument(
        "--json", default=None, help="write the full report as JSON"
    )
    run_parser.add_argument(
        "--trace-out",
        default=None,
        help="write the structured event trace as JSONL",
    )
    run_parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the metrics snapshot as JSON",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run independent dstate partitions on N worker processes",
    )
    run_parser.add_argument(
        "--split-ms",
        type=int,
        default=None,
        help="virtual-time split point for --workers (default: 30%% of horizon)",
    )
    run_parser.add_argument(
        "--distributed",
        action="store_true",
        default=False,
        help="split one exploration tree by test depth across a worker pool"
        " (work-stealing coordinator; --workers sets the pool size,"
        " default 4)",
    )
    run_parser.add_argument(
        "--partition-depth",
        type=int,
        default=None,
        help="explicit frontier cut for --distributed, in executed events"
        " (default: adaptive — deepen until the sharing graph fractures)",
    )
    run_parser.add_argument(
        "--steal",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="work-stealing for --distributed (--no-steal disables)",
    )
    run_parser.add_argument(
        "--checkpoint-out",
        default=None,
        help="write engine checkpoints to this path during the run",
    )
    run_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="checkpoint every N executed events (default 500 with"
        " --checkpoint-out)",
    )
    run_parser.add_argument(
        "--checkpoint-every-seconds",
        type=float,
        default=None,
        help="also checkpoint every T wall-clock seconds",
    )
    run_parser.add_argument(
        "--resume",
        default=None,
        help="continue an aborted/killed run from a checkpoint file",
    )
    run_parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retries per failed worker partition (default 2)",
    )
    run_parser.add_argument(
        "--allow-partial",
        action="store_true",
        default=None,
        help="report partitions that exhaust retries instead of aborting",
    )
    run_parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-partition wall-clock budget in seconds (workers only)",
    )
    run_parser.add_argument(
        "--no-fuse",
        action="store_true",
        default=False,
        help="disable opcode fusion (superinstructions); also honoured as"
        " the SDE_NO_FUSE environment variable",
    )
    run_parser.add_argument(
        "--symmetry",
        action="store_true",
        default=False,
        help="symmetry reduction: park states whose canonical form under"
        " the topology's node automorphisms is already explored"
        " (docs/REDUCTION.md)",
    )
    run_parser.add_argument(
        "--por",
        action="store_true",
        default=False,
        help="partial-order reduction: sleep mapper twins whose exchange"
        " with an independent delivery commutes (docs/REDUCTION.md)",
    )
    from .net.medium import available_media

    run_parser.add_argument(
        "--medium",
        choices=available_media(),
        default=None,
        help="network medium (default: the scenario's choice, usually"
        " 'ideal'; docs/NETWORK.md)",
    )
    run_parser.add_argument(
        "--link-loss",
        type=float,
        default=None,
        help="per-hop packet loss probability in [0,1) (implies"
        " --medium realistic)",
    )
    run_parser.add_argument(
        "--link-jitter-ms",
        type=int,
        default=None,
        help="per-hop uniform jitter bound in ms (implies --medium realistic)",
    )
    run_parser.add_argument(
        "--link-bandwidth",
        type=int,
        default=None,
        help="link bandwidth in payload cells per ms; 0 = infinite"
        " (implies --medium realistic)",
    )
    run_parser.add_argument(
        "--link-queue",
        type=int,
        default=None,
        help="per-link egress queue capacity in packets; beyond it the"
        " tail is dropped (implies --medium realistic)",
    )
    run_parser.add_argument(
        "--net-seed",
        type=int,
        default=None,
        help="seed for the medium's loss/jitter draws (reports quote it;"
        " replays are bit-identical under the same seed)",
    )
    run_parser.set_defaults(handler=_cmd_run)

    compare_parser = sub.add_parser(
        "compare", help="run all three algorithms on one scenario"
    )
    compare_parser.add_argument("scenario")
    compare_parser.add_argument("--sim-seconds", type=int, default=10)
    compare_parser.add_argument("--max-states", type=int, default=None)
    compare_parser.add_argument("--max-wall-seconds", type=float, default=None)
    compare_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run independent dstate partitions on N worker processes",
    )
    compare_parser.add_argument(
        "--split-ms",
        type=int,
        default=None,
        help="virtual-time split point for --workers (default: 30%% of horizon)",
    )
    compare_parser.set_defaults(handler=_cmd_compare)

    table1_parser = sub.add_parser("table1", help="regenerate Table I")
    table1_parser.add_argument("nodes", nargs="?", type=int, default=100)
    table1_parser.set_defaults(
        handler=lambda args: __import__(
            "repro.bench.table1", fromlist=["main"]
        ).main([str(args.nodes)])
    )

    figure10_parser = sub.add_parser("figure10", help="regenerate Figure 10")
    figure10_parser.add_argument("nodes", nargs="*", type=int)
    figure10_parser.set_defaults(
        handler=lambda args: __import__(
            "repro.bench.figure10", fromlist=["main"]
        ).main([str(n) for n in args.nodes])
    )

    compile_parser = sub.add_parser("compile", help="compile + disassemble NSL")
    compile_parser.add_argument("file")
    compile_parser.set_defaults(handler=_cmd_compile)

    testcases_parser = sub.add_parser(
        "testcases", help="emit distributed test cases for a scenario"
    )
    testcases_parser.add_argument("scenario")
    testcases_parser.add_argument("--algorithm", choices=ALGORITHMS, default="sds")
    testcases_parser.add_argument("--sim-seconds", type=int, default=5)
    testcases_parser.add_argument("--limit", type=int, default=50)
    testcases_parser.set_defaults(handler=_cmd_testcases)

    serve_parser = sub.add_parser(
        "serve", help="run the SDE job service (HTTP API, docs/SERVICE.md)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listen port (0 picks an ephemeral port)",
    )
    serve_parser.add_argument(
        "--data-dir",
        default="sde-service-data",
        help="run store root; parked jobs in it resume on boot",
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="queued submissions held before returning HTTP 429",
    )
    serve_parser.add_argument(
        "--max-active",
        type=int,
        default=2,
        help="jobs executing concurrently (one worker subprocess each)",
    )
    serve_parser.add_argument(
        "--per-client",
        type=int,
        default=8,
        help="live (queued+running) jobs allowed per X-Client-Id",
    )
    serve_parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="per-job wall budget in seconds across all attempts"
        " (exceeding it is terminal, not retried)",
    )
    serve_parser.add_argument(
        "--job-retries",
        type=int,
        default=2,
        help="retries after a crashed/raising attempt (resumes from the"
        " job's checkpoint)",
    )
    serve_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=25,
        help="worker checkpoint cadence in executed events (what drain"
        " and retry resume from)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    trace_parser = sub.add_parser(
        "trace", help="inspect trace/metrics artifacts"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    summary_parser = trace_sub.add_parser(
        "summary", help="summarize + schema-check one trace"
    )
    summary_parser.add_argument("trace", help="JSONL trace from --trace-out")
    diff_parser = trace_sub.add_parser(
        "diff", help="compare two traces by canonical event multiset"
    )
    diff_parser.add_argument("a")
    diff_parser.add_argument("b")
    check_parser = trace_sub.add_parser(
        "check-metrics", help="schema-check a metrics snapshot"
    )
    check_parser.add_argument("metrics", help="JSON file from --metrics-out")
    trace_parser.set_defaults(handler=_cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
