"""Supplemental scaling study: state growth vs. network size.

Not a single paper figure, but the quantitative backbone of its Section IV-B
claim — "with growing network size, the performance gain of SDS grows as
the number of bystanders increases".  Sweeps grid sides 3..6 and records
states per algorithm; asserts the COW/SDS factor is monotone-ish in k.
"""


from repro.bench.runner import run_one
from repro.workloads import grid_scenario


def test_cow_over_sds_factor_grows_with_network_size(once, benchmark):
    sides = [3, 4, 5, 6]

    def sweep():
        factors = {}
        for side in sides:
            states = {}
            for algorithm in ("cow", "sds"):
                row = run_one(
                    grid_scenario(side, sim_seconds=6), algorithm
                )
                assert not row.aborted
                states[algorithm] = row.states
            factors[side * side] = states["cow"] / states["sds"]
        return factors

    factors = once(sweep)
    sizes = sorted(factors)
    assert factors[sizes[-1]] > factors[sizes[0]], factors
    for nodes, factor in factors.items():
        benchmark.extra_info[f"factor_{nodes}_nodes"] = round(factor, 2)


def test_sds_growth_is_subexponential_in_size(once, benchmark):
    """SDS state counts grow polynomially-ish with node count on the grid
    workload (the whole point of eliminating bystander duplication)."""

    def sweep():
        counts = {}
        for side in (3, 4, 5, 6):
            row = run_one(grid_scenario(side, sim_seconds=6), "sds")
            counts[side * side] = row.states
        return counts

    counts = once(sweep)
    sizes = sorted(counts)
    # Doubling the node count must not square the state count.
    small, large = counts[sizes[0]], counts[sizes[-1]]
    ratio_nodes = sizes[-1] / sizes[0]
    assert large / small < ratio_nodes ** 3
    for nodes, states in counts.items():
        benchmark.extra_info[f"sds_states_{nodes}_nodes"] = states
