"""Unsigned interval abstract domain for bitvector expressions.

The solver (:mod:`repro.solver`) narrows variable domains with interval
reasoning before falling back to search.  An :class:`Interval` is a closed
range ``[lo, hi]`` of *unsigned* values of a fixed width; the empty interval
signals infeasibility.

Forward evaluation (:func:`interval_eval`) computes a sound over-approximation
of an expression's value set from variable intervals.  Backward narrowing
(implemented in the solver's propagator) inverts these transfer functions to
shrink operand intervals given a bound on the result.

All transfer functions are *sound*: the concrete result of the operation on
any values drawn from the operand intervals is contained in the returned
interval.  They are not always precise (wrapping arithmetic collapses to
top), which only costs search time, never correctness.
"""

from __future__ import annotations

from typing import Dict, Optional

from .ast import (
    BVBinary,
    BVConcat,
    BVConst,
    BVExpr,
    BVExtend,
    BVExtract,
    BVIte,
    BVUnary,
    BVVar,
    BoolAnd,
    BoolConst,
    BoolNot,
    BoolOr,
    Cmp,
    mask,
    to_signed,
)

__all__ = [
    "Interval",
    "interval_eval",
    "full",
    "singleton",
    "cmp_verdict",
    "cond_verdict",
    "signed_extrema",
]


class Interval:
    """A closed unsigned range ``[lo, hi]``; ``lo > hi`` encodes empty."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty() -> "Interval":
        return Interval(1, 0)

    @staticmethod
    def top(width: int) -> "Interval":
        return Interval(0, mask(width))

    @staticmethod
    def of(value: int) -> "Interval":
        return Interval(value, value)

    # -- predicates --------------------------------------------------------

    def is_empty(self) -> bool:
        return self.lo > self.hi

    def is_singleton(self) -> bool:
        return self.lo == self.hi

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def size(self) -> int:
        return 0 if self.is_empty() else self.hi - self.lo + 1

    # -- lattice operations ------------------------------------------------

    def meet(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def join(self, other: "Interval") -> "Interval":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        if self.is_empty() and other.is_empty():
            return True
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        if self.is_empty():
            return hash(("interval", "empty"))
        return hash(("interval", self.lo, self.hi))

    def __repr__(self) -> str:
        if self.is_empty():
            return "[empty]"
        return f"[{self.lo}, {self.hi}]"


def full(width: int) -> Interval:
    return Interval.top(width)


def singleton(value: int) -> Interval:
    return Interval(value, value)


# ---------------------------------------------------------------------------
# Forward transfer functions
# ---------------------------------------------------------------------------


def _add(a: Interval, b: Interval, w: int) -> Interval:
    lo, hi = a.lo + b.lo, a.hi + b.hi
    if hi <= mask(w):
        return Interval(lo, hi)
    if lo > mask(w):  # both wrap exactly once
        return Interval(lo - (mask(w) + 1), hi - (mask(w) + 1))
    return Interval.top(w)


def _sub(a: Interval, b: Interval, w: int) -> Interval:
    lo, hi = a.lo - b.hi, a.hi - b.lo
    if lo >= 0:
        return Interval(lo, hi)
    if hi < 0:  # both wrap exactly once
        return Interval(lo + mask(w) + 1, hi + mask(w) + 1)
    return Interval.top(w)


def _mul(a: Interval, b: Interval, w: int) -> Interval:
    hi = a.hi * b.hi
    if hi <= mask(w):
        return Interval(a.lo * b.lo, hi)
    return Interval.top(w)


def _udiv(a: Interval, b: Interval, w: int) -> Interval:
    if b.lo == 0:
        # The divisor range includes 0, whose SMT semantics is all-ones.
        return Interval.top(w)
    return Interval(a.lo // b.hi, a.hi // b.lo)


def _urem(a: Interval, b: Interval, w: int) -> Interval:
    if b.lo == 0:
        return Interval(0, max(a.hi, b.hi))
    if a.hi < b.lo:  # remainder is a no-op
        return a
    return Interval(0, min(a.hi, b.hi - 1))


def _signed_range(a: Interval, w: int):
    """Return (smin, smax) if the unsigned interval maps to one contiguous
    signed range, else None (it straddles the sign wrap)."""
    half = 1 << (w - 1)
    if a.hi < half or a.lo >= half:
        return to_signed(a.lo, w), to_signed(a.hi, w)
    return None


def _shl(a: Interval, b: Interval, w: int) -> Interval:
    if b.hi >= w:
        return Interval.top(w)
    hi = a.hi << b.hi
    if hi <= mask(w):
        return Interval(a.lo << b.lo, hi)
    return Interval.top(w)


def _lshr(a: Interval, b: Interval, w: int) -> Interval:
    hi_shift = min(b.hi, w)
    return Interval(a.lo >> hi_shift, a.hi >> b.lo if b.lo < w else 0)


def _bit_hi(a: Interval, b: Interval) -> int:
    """Smallest all-ones bound covering both interval maxima."""
    combined = a.hi | b.hi
    out = 1
    while out <= combined:
        out <<= 1
    return out - 1


def interval_eval(
    expr: BVExpr,
    domains: Dict[BVVar, Interval],
    cache: Optional[Dict[int, Interval]] = None,
) -> Interval:
    """Sound unsigned interval for ``expr`` given variable ``domains``.

    Variables missing from ``domains`` get their full-width top interval.
    ``cache`` (keyed by node identity) may be shared across calls within one
    propagation round.
    """
    if cache is None:
        cache = {}
    stack = [(expr, False)]
    while stack:
        node, ready = stack.pop()
        if id(node) in cache:
            continue
        if not ready:
            stack.append((node, True))
            for child in node.children():
                if not child.is_bool and id(child) not in cache:
                    stack.append((child, False))
            continue
        cache[id(node)] = _forward(node, domains, cache)
    return cache[id(expr)]


def _forward(node: BVExpr, domains: Dict[BVVar, Interval], cache) -> Interval:
    w = node.width
    if isinstance(node, BVConst):
        return Interval.of(node.value)
    if isinstance(node, BVVar):
        dom = domains.get(node)
        return dom if dom is not None else Interval.top(w)
    if isinstance(node, BVBinary):
        a, b = cache[id(node.left)], cache[id(node.right)]
        if a.is_empty() or b.is_empty():
            return Interval.empty()
        op = node.op
        if op == "add":
            return _add(a, b, w)
        if op == "sub":
            return _sub(a, b, w)
        if op == "mul":
            return _mul(a, b, w)
        if op == "udiv":
            return _udiv(a, b, w)
        if op == "urem":
            return _urem(a, b, w)
        if op in ("sdiv", "srem"):
            return Interval.top(w)
        if op in ("bvand",):
            return Interval(0, min(a.hi, b.hi))
        if op in ("bvor", "bvxor"):
            return Interval(a.lo if op == "bvor" else 0, _bit_hi(a, b))
        if op == "shl":
            return _shl(a, b, w)
        if op == "lshr":
            return _lshr(a, b, w)
        if op == "ashr":
            sa = _signed_range(a, w)
            if sa is not None and sa[0] >= 0 and b.hi < w:
                return Interval(a.lo >> b.hi, a.hi >> b.lo)
            return Interval.top(w)
        raise TypeError(f"unknown binary op {op}")
    if isinstance(node, BVUnary):
        a = cache[id(node.operand)]
        if a.is_empty():
            return Interval.empty()
        if node.op == "neg":
            return _sub(Interval.of(0), a, w)
        # bvnot x == mask - x
        return Interval(mask(w) - a.hi, mask(w) - a.lo)
    if isinstance(node, BVIte):
        # If the intervals decide the condition, only one branch is live —
        # crucial for expressions like abs(x) = ite(x <s 0, -x, x), whose
        # naive join is always top.
        verdict = cond_verdict(node.cond, domains, cache)
        if verdict is True:
            return cache[id(node.then)]
        if verdict is False:
            return cache[id(node.orelse)]
        return cache[id(node.then)].join(cache[id(node.orelse)])
    if isinstance(node, BVExtract):
        a = cache[id(node.operand)]
        if a.is_empty():
            return Interval.empty()
        if node.low == 0 and a.hi <= mask(node.width):
            return a
        return Interval.top(node.width)
    if isinstance(node, BVExtend):
        a = cache[id(node.operand)]
        if a.is_empty():
            return Interval.empty()
        if node.signed:
            src = _signed_range(a, node.operand.width)
            if src is not None and src[0] >= 0:
                return a
            return Interval.top(node.width)
        return a
    if isinstance(node, BVConcat):
        high, low = cache[id(node.high)], cache[id(node.low_part)]
        if high.is_empty() or low.is_empty():
            return Interval.empty()
        lw = node.low_part.width
        return Interval((high.lo << lw) + low.lo, (high.hi << lw) + low.hi)
    raise TypeError(f"unknown expression node {type(node).__name__}")


# ---------------------------------------------------------------------------
# Boolean verdicts from intervals
# ---------------------------------------------------------------------------


def signed_extrema(interval: Interval, width: int):
    """Signed (min, max) attained over an unsigned interval.

    Unlike a naive reinterpretation this is defined for *straddling*
    intervals too: an interval crossing the sign wrap attains the full
    signed extremes of the values it covers.
    """
    half = 1 << (width - 1)
    if interval.hi < half or interval.lo >= half:
        return to_signed(interval.lo, width), to_signed(interval.hi, width)
    # Straddles the wrap: both `half` (the most negative value) and
    # `half - 1` (the most positive) are covered.
    return -half, half - 1


def cmp_verdict(op: str, left: Interval, right: Interval, width: int):
    """Decide a comparison from operand intervals: True/False/None."""
    if left.is_empty() or right.is_empty():
        return None
    if op == "eq":
        if left.is_singleton() and right.is_singleton() and left.lo == right.lo:
            return True
        if left.meet(right).is_empty():
            return False
        return None
    if op == "ne":
        verdict = cmp_verdict("eq", left, right, width)
        return None if verdict is None else not verdict
    if op == "ult":
        if left.hi < right.lo:
            return True
        if left.lo >= right.hi:
            return False
        return None
    if op == "ule":
        if left.hi <= right.lo:
            return True
        if left.lo > right.hi:
            return False
        return None
    if op in ("slt", "sle"):
        lmin, lmax = signed_extrema(left, width)
        rmin, rmax = signed_extrema(right, width)
        if op == "slt":
            if lmax < rmin:
                return True
            if lmin >= rmax:
                return False
        else:
            if lmax <= rmin:
                return True
            if lmin > rmax:
                return False
        return None
    raise TypeError(f"unknown cmp op {op}")


def cond_verdict(cond, domains: Dict[BVVar, Interval], cache=None):
    """Decide a boolean expression from variable intervals (or None)."""
    if isinstance(cond, BoolConst):
        return cond.value
    if isinstance(cond, BoolNot):
        sub = cond_verdict(cond.operand, domains, cache)
        return None if sub is None else not sub
    if isinstance(cond, BoolAnd):
        verdict = True
        for operand in cond.operands:
            sub = cond_verdict(operand, domains, cache)
            if sub is False:
                return False
            if sub is None:
                verdict = None
        return verdict
    if isinstance(cond, BoolOr):
        verdict = False
        for operand in cond.operands:
            sub = cond_verdict(operand, domains, cache)
            if sub is True:
                return True
            if sub is None:
                verdict = None
        return verdict
    if isinstance(cond, Cmp):
        left = interval_eval(cond.left, domains, cache)
        right = interval_eval(cond.right, domains, cache)
        return cmp_verdict(cond.op, left, right, cond.left.width)
    return None
