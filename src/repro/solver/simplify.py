"""Canonicalization of constraint conjunctions (the "simplify" pass).

KLEE attributes a large share of its solver throughput to rewriting
queries *before* STP sees them: constant folding, implied-value
concretization, and dropping conjuncts the rest of the set already
implies.  This module is that pass for the SDE solver.  It operates on a
tuple of boolean conjuncts (the flattened path condition) and returns an
*equivalent* — not merely equisatisfiable — tuple, or ``None`` when the
conjunction is provably unsatisfiable:

- **constant folding / commutative ordering** — delegated to the smart
  constructors in :mod:`repro.expr.builder`, which every rewritten node
  is rebuilt through;
- **implied-equality substitution** — a conjunct ``x == 5`` rewrites
  every *other* conjunct's uses of ``x`` to ``5`` (the defining equality
  is kept, so models are preserved in both directions);
- **subsumption elimination** — among single-variable bound conjuncts
  (``x < 10``, ``x < 50``) only the tightest per direction survives, and
  ``x != c`` disappears when the bounds already exclude ``c``;
- **interval contradiction** — an empty per-variable bound interval (or
  a pair of complementary conjuncts) proves the whole set UNSAT without
  a search.

Equivalence (any model of the output satisfies the input and vice versa)
is the property :class:`~repro.solver.constraints.ConstraintSet` relies
on to reuse one canonical form for every query against the same path
condition; ``tests/solver/test_simplify.py`` checks it property-based
against the brute-force oracle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..expr.ast import (
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolNot,
    BoolOr,
    BVBinary,
    BVConcat,
    BVConst,
    BVExtend,
    BVExtract,
    BVIte,
    BVUnary,
    BVVar,
    Cmp,
    Expr,
    to_signed,
)
from ..expr import builder as _b

__all__ = ["simplify_conjuncts", "substitute"]

# Builder re-application tables for `substitute`: rebuilding through the
# smart constructors is what performs the constant folding.
_BINARY_BUILDERS = {
    "add": _b.add,
    "sub": _b.sub,
    "mul": _b.mul,
    "udiv": _b.udiv,
    "urem": _b.urem,
    "sdiv": _b.sdiv,
    "srem": _b.srem,
    "bvand": _b.bvand,
    "bvor": _b.bvor,
    "bvxor": _b.bvxor,
    "shl": _b.shl,
    "lshr": _b.lshr,
    "ashr": _b.ashr,
}
_UNARY_BUILDERS = {"neg": _b.neg, "bvnot": _b.bvnot}
_CMP_BUILDERS = {
    "eq": _b.eq,
    "ne": _b.ne,
    "ult": _b.ult,
    "ule": _b.ule,
    "slt": _b.slt,
    "sle": _b.sle,
}


def substitute(expr: Expr, env: Dict[Expr, Expr], memo=None) -> Expr:
    """Rewrite ``expr`` replacing each variable in ``env`` by its value.

    ``env`` maps :class:`BVVar` nodes to replacement expressions (in
    practice :class:`BVConst`).  The result is rebuilt bottom-up through
    the builder smart constructors, so any rewrite that exposes a
    constant subterm folds immediately.  Nodes are interned, hence the
    memo is keyed by node identity and shared across the conjuncts of
    one simplification run.
    """
    if memo is None:
        memo = {}
    return _subst(expr, env, memo)


def _subst(expr: Expr, env: Dict[Expr, Expr], memo: dict) -> Expr:
    found = memo.get(expr)
    if found is not None:
        return found
    kind = type(expr)
    if kind is BVConst or kind is BoolConst:
        result = expr
    elif expr in env:  # BVVar (interned: identity lookup)
        result = env[expr]
    elif kind is BVUnary:
        result = _UNARY_BUILDERS[expr.op](_subst(expr.operand, env, memo))
    elif kind is BVBinary:
        result = _BINARY_BUILDERS[expr.op](
            _subst(expr.left, env, memo), _subst(expr.right, env, memo)
        )
    elif kind is BVIte:
        result = _b.ite(
            _subst(expr.cond, env, memo),
            _subst(expr.then, env, memo),
            _subst(expr.orelse, env, memo),
        )
    elif kind is BVExtract:
        result = _b.extract(
            _subst(expr.operand, env, memo), expr.low, expr.width
        )
    elif kind is BVExtend:
        rebuild = _b.sext if expr.signed else _b.zext
        result = rebuild(_subst(expr.operand, env, memo), expr.width)
    elif kind is BVConcat:
        result = _b.concat(
            _subst(expr.high, env, memo), _subst(expr.low_part, env, memo)
        )
    elif kind is Cmp:
        result = _CMP_BUILDERS[expr.op](
            _subst(expr.left, env, memo), _subst(expr.right, env, memo)
        )
    elif kind is BoolNot:
        result = _b.not_(_subst(expr.operand, env, memo))
    elif kind is BoolAnd:
        result = _b.and_(*[_subst(op, env, memo) for op in expr.operands])
    elif kind is BoolOr:
        result = _b.or_(*[_subst(op, env, memo) for op in expr.operands])
    else:  # BVVar not in env, or future node kinds: leave untouched
        result = expr
    memo[expr] = result
    return result


def _var_eq_const(conjunct: BoolExpr):
    """``x == c`` (builder canonicalization puts the constant right)."""
    if (
        type(conjunct) is Cmp
        and conjunct.op == "eq"
        and type(conjunct.right) is BVConst
        and type(conjunct.left) is BVVar
    ):
        return conjunct.left, conjunct.right
    return None


class _Bounds:
    """Per-variable bound interval in one signedness domain."""

    __slots__ = ("lo", "hi", "lo_expr", "hi_expr")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        self.lo_expr: Optional[BoolExpr] = None
        self.hi_expr: Optional[BoolExpr] = None

    def tighten_hi(self, value: int, expr: BoolExpr) -> bool:
        if value < self.hi:
            self.hi = value
            self.hi_expr = expr
            return True
        return False

    def tighten_lo(self, value: int, expr: BoolExpr) -> bool:
        if value > self.lo:
            self.lo = value
            self.lo_expr = expr
            return True
        return False

    @property
    def empty(self) -> bool:
        return self.lo > self.hi


def _classify_bound(conjunct: BoolExpr):
    """``(var, domain, side, inclusive_value)`` for var-vs-const orderings.

    ``domain`` is ``"u"``/``"s"``, ``side`` is ``"hi"``/``"lo"``; returns
    ``None`` for anything that is not a single-variable bound.
    """
    if type(conjunct) is not Cmp or conjunct.op not in (
        "ult",
        "ule",
        "slt",
        "sle",
    ):
        return None
    signed = conjunct.op[0] == "s"
    strict = conjunct.op.endswith("lt")
    left, right = conjunct.left, conjunct.right
    if type(left) is BVVar and type(right) is BVConst:
        value = to_signed(right.value, right.width) if signed else right.value
        return left, ("s" if signed else "u"), "hi", value - 1 if strict else value
    if type(left) is BVConst and type(right) is BVVar:
        value = to_signed(left.value, left.width) if signed else left.value
        return right, ("s" if signed else "u"), "lo", value + 1 if strict else value
    return None


def _subsume_bounds(
    conjuncts: Tuple[BoolExpr, ...],
) -> Optional[Tuple[BoolExpr, ...]]:
    """Drop bound conjuncts implied by a tighter one; detect empty intervals.

    Keeps input order for the survivors.  Unsigned and signed domains are
    tracked independently — each alone proves UNSAT when its interval is
    empty, and the two are never cross-combined (wrap-around makes that
    unsound without a case split).
    """
    bounds: Dict[Tuple[object, str], _Bounds] = {}
    equalities: Dict[object, BVConst] = {}
    disequalities: List[Tuple[object, BVConst, BoolExpr]] = []

    for conjunct in conjuncts:
        pair = _var_eq_const(conjunct)
        if pair is not None:
            variable, const = pair
            previous = equalities.get(variable)
            if previous is not None and previous is not const:
                return None  # x == c1 and x == c2 with c1 != c2
            equalities[variable] = const
            continue
        if (
            type(conjunct) is Cmp
            and conjunct.op == "ne"
            and type(conjunct.right) is BVConst
            and type(conjunct.left) is BVVar
        ):
            disequalities.append((conjunct.left, conjunct.right, conjunct))
            continue
        classified = _classify_bound(conjunct)
        if classified is None:
            continue
        variable, domain, side, value = classified
        if domain == "u":
            default = _Bounds(0, (1 << variable.width) - 1)
        else:
            half = 1 << (variable.width - 1)
            default = _Bounds(-half, half - 1)
        window = bounds.setdefault((variable, domain), default)
        if side == "hi":
            window.tighten_hi(value, conjunct)
        else:
            window.tighten_lo(value, conjunct)

    keep_bound_exprs = set()
    for (variable, domain), window in bounds.items():
        if window.empty:
            return None
        equal = equalities.get(variable)
        if equal is not None:
            value = (
                to_signed(equal.value, equal.width)
                if domain == "s"
                else equal.value
            )
            if not (window.lo <= value <= window.hi):
                return None  # equality outside the surviving interval
            continue  # the equality implies every bound on this variable
        if window.lo_expr is not None:
            keep_bound_exprs.add(window.lo_expr)
        if window.hi_expr is not None:
            keep_bound_exprs.add(window.hi_expr)

    drop_disequalities = set()
    for variable, const, conjunct in disequalities:
        window = bounds.get((variable, "u"))
        if window is not None and not (window.lo <= const.value <= window.hi):
            drop_disequalities.add(conjunct)
        elif (
            window is not None
            and window.lo == window.hi == const.value
        ):
            return None  # interval pins x to c while x != c

    out: List[BoolExpr] = []
    for conjunct in conjuncts:
        if _classify_bound(conjunct) is not None:
            if conjunct in keep_bound_exprs:
                out.append(conjunct)
            continue
        if conjunct in drop_disequalities:
            continue
        out.append(conjunct)
    return tuple(out)


_MAX_ROUNDS = 8


def simplify_conjuncts(
    conjuncts: Iterable[BoolExpr],
) -> Optional[Tuple[BoolExpr, ...]]:
    """Canonicalize a conjunction; ``None`` means provably UNSAT.

    The output is logically *equivalent* to the input (same models over
    the input's variables, with absent variables unconstrained), so
    callers may solve or cache against the canonical form and reuse its
    models against the raw one.
    """
    combined = _b.and_(*list(conjuncts))
    if isinstance(combined, BoolConst):
        return () if combined.value else None
    work: Tuple[BoolExpr, ...] = (
        combined.operands if isinstance(combined, BoolAnd) else (combined,)
    )

    for _ in range(_MAX_ROUNDS):
        env: Dict[Expr, Expr] = {}
        for conjunct in work:
            pair = _var_eq_const(conjunct)
            if pair is not None:
                variable, const = pair
                previous = env.get(variable)
                if previous is not None and previous is not const:
                    return None  # conflicting equalities
                env[variable] = const
        if not env:
            break
        memo: dict = {}
        changed = False
        rewritten: List[BoolExpr] = []
        for conjunct in work:
            if _var_eq_const(conjunct) is not None:
                rewritten.append(conjunct)  # keep the defining equality
                continue
            replaced = _subst(conjunct, env, memo)
            if replaced is not conjunct:
                changed = True
            rewritten.append(replaced)
        combined = _b.and_(*rewritten)
        if isinstance(combined, BoolConst):
            return () if combined.value else None
        work = (
            combined.operands if isinstance(combined, BoolAnd) else (combined,)
        )
        if not changed:
            break

    return _subsume_bounds(work)
