"""Persistent link-failure model tests."""

from repro import Scenario, Topology, build_engine
from repro.core import dscenario_fingerprints
from repro.net import SymbolicLinkFailure

PERIODIC = """
var got;
func on_boot() {
    if (node_id() == 1) { timer_set(0, 100); }
}
func on_timer(tid) {
    var buf[1];
    buf[0] = got;
    uc_send(0, buf, 1);
    timer_set(0, 100);
}
func on_recv(src, len) { got += 1; }
"""


def scenario(horizon_ms=550):
    return Scenario(
        name="linky",
        program=PERIODIC,
        topology=Topology.line(2),
        horizon_ms=horizon_ms,
        failure_factory=lambda: [SymbolicLinkFailure([(1, 0)])],
    )


class TestLinkFailure:
    def test_forks_exactly_once(self):
        engine = build_engine(scenario(), "sds", check_invariants=True)
        report = engine.run()
        # 5 transmissions, but only ONE fork: the link decision is taken at
        # the first packet and remembered.
        node0_states = engine.states_of_node(0)
        assert len(node0_states) == 2

    def test_dead_branch_receives_nothing_ever(self):
        engine = build_engine(scenario(), "sds")
        engine.run()
        address = engine.program.global_address("got")
        counts = sorted(
            s.memory[address] for s in engine.states_of_node(0)
        )
        # Alive world counted all 5 packets; dead world none.
        assert counts == [0, 5]

    def test_histories_stay_consistent(self):
        # Dead-link states still record radio-level receptions? No: the
        # mapping delivered the packet (rx recorded), the link model ate it
        # above the radio, like drops.  Invariants must hold throughout.
        engine = build_engine(scenario(), "sds", check_invariants=True)
        engine.run()

    def test_decision_variable_named_per_link(self):
        engine = build_engine(scenario(), "sds")
        engine.run()
        names = {
            name
            for s in engine.states_of_node(0)
            for name, _ in s.symbolics
        }
        assert names == {"n0.linkdown_1"}

    def test_equivalence_across_algorithms(self):
        fingerprints = {}
        for algorithm in ("cob", "cow", "sds"):
            engine = build_engine(
                scenario(horizon_ms=350), algorithm, check_invariants=True
            )
            engine.run()
            fingerprints[algorithm] = dscenario_fingerprints(
                engine.mapper, engine.packets
            )
        assert (
            fingerprints["cob"]
            == fingerprints["cow"]
            == fingerprints["sds"]
        )

    def test_unconfigured_link_unaffected(self):
        plain = Scenario(
            name="other-link",
            program=PERIODIC,
            topology=Topology.line(2),
            horizon_ms=550,
            failure_factory=lambda: [SymbolicLinkFailure([(0, 1)])],
        )
        engine = build_engine(plain, "sds")
        engine.run()
        # Traffic flows 1 -> 0 but only link (0, 1) may fail: no forks.
        assert len(engine.states_of_node(0)) == 1
