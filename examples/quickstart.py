#!/usr/bin/env python3
"""Quickstart: symbolic execution of one node, then of a small network.

Part 1 reproduces the paper's Figure 1 — a single program with one symbolic
input explores four execution paths, each with a generated concrete test
case.

Part 2 runs the smallest interesting *distributed* scenario: two nodes, one
packet, a symbolic packet drop — and shows what the three state-mapping
algorithms keep in memory for it.

Run: ``python examples/quickstart.py``
"""

from repro.api import Scenario, Solver, Topology, run_scenario
from repro.expr import pretty
from repro.lang import compile_source
from repro.net import SymbolicPacketDrop
from repro.vm import Executor, Status

FIGURE1_PROGRAM = """
var path;

func main() {
    var x = symbolic("x");
    if (x == 0) { path = 1; }
    else {
        if (x < 50) {
            if (x > 10) { path = 2; } else { path = 3; }
        } else { path = 4; }
    }
}
"""

TWO_NODE_PROGRAM = """
var got;

func on_boot() {
    if (node_id() == 1) { timer_set(0, 100); }
}

func on_timer(tid) {
    var buf[1];
    buf[0] = 42;
    uc_send(0, buf, 1);
}

func on_recv(src, len) {
    got = recv_byte(0);
}
"""


def part1_figure1() -> None:
    print("=" * 64)
    print("Part 1 — regular symbolic execution (the paper's Figure 1)")
    print("=" * 64)
    program = compile_source(FIGURE1_PROGRAM)
    executor = Executor(program, Solver())
    state = executor.make_initial_state(node=0)
    finals = executor.run_event(state, "main")
    paths = [s for s in finals if s.status == Status.IDLE]
    print(f"explored {len(paths)} execution paths:\n")
    path_address = program.global_address("path")
    for final in sorted(paths, key=lambda s: s.sid):
        constraint_text = (
            " && ".join(pretty(c) for c in final.constraints) or "true"
        )
        model = executor.solver.get_model(final.constraints)
        x = model.get("n0.x", 0)
        signed_x = x if x < 2**31 else x - 2**32
        print(f"  path {final.memory[path_address]}: {constraint_text}")
        print(f"    testcase: x = {signed_x}")
    print()


def part2_distributed() -> None:
    print("=" * 64)
    print("Part 2 — symbolic *distributed* execution (2 nodes, 1 drop)")
    print("=" * 64)
    print(
        "Node 1 sends one packet to node 0; node 0 may symbolically drop\n"
        "it.  Identical exploration, three different state representations:\n"
    )
    for algorithm in ("cob", "cow", "sds"):
        scenario = Scenario(
            name="quickstart",
            program=TWO_NODE_PROGRAM,
            topology=Topology.line(2),
            horizon_ms=1000,
            failure_factory=lambda: [SymbolicPacketDrop([0])],
        )
        report = run_scenario(scenario, algorithm)
        label = {
            "cob": "Copy On Branch",
            "cow": "Copy On Write",
            "sds": "Super DStates",
        }[algorithm]
        print(
            f"  {label:<15} ({algorithm}): {report.total_states} states,"
            f" {report.group_count} dscenarios/dstates"
        )
    print(
        "\nCOB duplicated node 1's state when node 0 branched on the drop\n"
        "decision; COW and SDS kept both outcomes inside one dstate."
    )


if __name__ == "__main__":
    part1_figure1()
    part2_distributed()
