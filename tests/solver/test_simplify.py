"""Canonicalization (`repro.solver.simplify`) must be semantics-preserving.

The hypothesis property is the load-bearing one: over every assignment
of the 4-bit variables, the simplified conjunction holds exactly when
the original does — both directions, so simplification can neither drop
models nor invent them, and ``None`` is returned only for genuinely
unsatisfiable input.  The solver caches and reuses models against
canonical forms, so any violation here silently corrupts verdicts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import (
    add,
    bv,
    bvand,
    bvxor,
    eq,
    evaluate,
    mul,
    ne,
    not_,
    or_,
    sle,
    slt,
    sub,
    ule,
    ult,
    var,
)
from repro.solver import simplify_conjuncts, substitute

A4 = var("a4", 4)
B4 = var("b4", 4)

_atom_builders = [
    lambda c: eq(A4, bv(c, 4)),
    lambda c: ne(B4, bv(c, 4)),
    lambda c: ult(A4, bv(c, 4)),
    lambda c: ule(bv(c, 4), B4),
    lambda c: slt(A4, bv(c, 4)),
    lambda c: sle(B4, bv(c, 4)),
    lambda c: eq(add(A4, B4), bv(c, 4)),
    lambda c: ult(sub(A4, B4), bv(c, 4)),
    lambda c: eq(bvand(A4, bv(0b101, 4)), bv(c % 6, 4)),
    lambda c: ne(bvxor(A4, B4), bv(c, 4)),
    lambda c: ult(mul(A4, bv(3, 4)), bv(c, 4)),
]


@st.composite
def _random_conjuncts(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    atoms = []
    for _ in range(n):
        builder = draw(st.sampled_from(_atom_builders))
        c = draw(st.integers(min_value=0, max_value=15))
        atom = builder(c)
        if draw(st.booleans()):
            atom = not_(atom)
        atoms.append(atom)
    if draw(st.booleans()) and len(atoms) >= 2:
        atoms = [or_(atoms[0], atoms[1])] + atoms[2:]
    return atoms


class TestSimplifyProperty:
    @settings(max_examples=250, deadline=None)
    @given(_random_conjuncts())
    def test_equivalent_over_every_assignment(self, conjuncts):
        simplified = simplify_conjuncts(conjuncts)
        for a in range(16):
            for b in range(16):
                env = {"a4": a, "b4": b}
                original = all(evaluate(c, env) for c in conjuncts)
                if simplified is None:
                    assert not original, (conjuncts, env)
                else:
                    reduced = all(evaluate(c, env) for c in simplified)
                    assert original == reduced, (conjuncts, simplified, env)


class TestSimplifyEdges:
    def test_contradiction_is_none(self):
        assert simplify_conjuncts([eq(A4, bv(1, 4)), eq(A4, bv(2, 4))]) is None

    def test_tautology_folds_to_empty(self):
        assert simplify_conjuncts([eq(bv(3, 4), bv(3, 4))]) == ()

    def test_duplicate_bounds_subsume(self):
        out = simplify_conjuncts(
            [ult(A4, bv(9, 4)), ult(A4, bv(9, 4)), ult(A4, bv(12, 4))]
        )
        assert out == (ult(A4, bv(9, 4)),)

    def test_equality_substitutes_into_siblings(self):
        out = simplify_conjuncts([eq(A4, bv(3, 4)), ult(A4, bv(9, 4))])
        # a4 == 3 makes the bound vacuous; only the equality remains.
        assert out == (eq(A4, bv(3, 4)),)

    def test_substitute_rewrites_under_env(self):
        rewritten = substitute(add(A4, B4), {A4: bv(3, 4)})
        assert evaluate(rewritten, {"b4": 2}) == 5
