"""Model enumeration via blocking clauses."""

from repro.expr import and_, bv, eq, ne, or_, ule, ult, var
from repro.solver import Solver

X = var("x")
D1 = var("d1", 1)
D2 = var("d2", 1)


class TestIterModels:
    def test_enumerates_finite_space(self):
        solver = Solver()
        models = list(solver.iter_models([ult(X, bv(4))]))
        values = sorted(m["x"] for m in models)
        assert values == [0, 1, 2, 3]

    def test_respects_limit(self):
        solver = Solver()
        models = list(solver.iter_models([ult(X, bv(100))], limit=5))
        assert len(models) == 5
        assert len({m["x"] for m in models}) == 5

    def test_unsat_yields_nothing(self):
        solver = Solver()
        assert list(solver.iter_models([eq(X, bv(1)), ne(X, bv(1))])) == []

    def test_ground_constraints_single_empty_model(self):
        from repro.expr import true

        solver = Solver()
        models = list(solver.iter_models([true()]))
        assert len(models) == 1
        assert len(models[0]) == 0

    def test_boolean_failure_patterns(self):
        """Enumerating drop-variable combinations — the report use case."""
        solver = Solver()
        at_least_one = or_(eq(D1, bv(1, 1)), eq(D2, bv(1, 1)))
        models = list(solver.iter_models([at_least_one]))
        patterns = sorted((m["d1"], m["d2"]) for m in models)
        assert patterns == [(0, 1), (1, 0), (1, 1)]

    def test_multi_variable_product_space(self):
        solver = Solver()
        y = var("y")
        constraints = [ult(X, bv(2)), ule(y, bv(2))]
        models = list(solver.iter_models(constraints))
        assert len(models) == 2 * 3

    def test_models_are_restricted_to_constrained_vars(self):
        solver = Solver()
        models = list(solver.iter_models([eq(X, bv(7))]))
        assert len(models) == 1
        assert models[0].as_dict() == {"x": 7}

    def test_conjunction_structure_accepted(self):
        solver = Solver()
        conj = and_(ult(X, bv(3)), ne(X, bv(1)))
        values = sorted(m["x"] for m in solver.iter_models([conj]))
        assert values == [0, 2]
