"""CLI smoke tests (``python -m repro``)."""

import pytest

from repro.cli import main


class TestRun:
    def test_run_line(self, capsys):
        assert main(["run", "line:3", "--sim-seconds", "2"]) == 0
        out = capsys.readouterr().out
        assert "Super DStates" in out
        assert "line-3" in out

    def test_run_algorithm_choice(self, capsys):
        assert main(
            ["run", "line:3", "--algorithm", "cob", "--sim-seconds", "2"]
        ) == 0
        assert "Copy On Branch" in capsys.readouterr().out

    def test_run_flood(self, capsys):
        assert main(["run", "flood:3", "--sim-seconds", "1"]) == 0
        assert "flood-3" in capsys.readouterr().out

    def test_bad_scenario_spec(self):
        with pytest.raises(SystemExit):
            main(["run", "torus", "--sim-seconds", "1"])

    def test_unknown_scenario_kind(self):
        with pytest.raises(SystemExit):
            main(["run", "torus:3", "--sim-seconds", "1"])


class TestCompare:
    def test_compare_prints_all_algorithms(self, capsys):
        assert main(["compare", "line:3", "--sim-seconds", "2"]) == 0
        out = capsys.readouterr().out
        for label in ("Copy On Branch", "Copy On Write", "Super DStates"):
            assert label in out


class TestCompile:
    def test_compile_and_disassemble(self, tmp_path, capsys):
        source = tmp_path / "node.nsl"
        source.write_text("var x; func on_boot() { x = node_id(); }")
        assert main(["compile", str(source)]) == 0
        out = capsys.readouterr().out
        assert "func on_boot()" in out
        assert "SYS" in out


class TestTestcases:
    def test_emits_testcases(self, capsys):
        assert main(
            ["testcases", "line:3", "--sim-seconds", "2", "--limit", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "testcase" in out
        assert "drop" in out
