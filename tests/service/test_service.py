"""End-to-end service tests: HTTP API, dedup, backpressure, chaos, resume.

Each test boots a real :class:`repro.service.SDEService` on an ephemeral
port inside a background thread (its own asyncio loop) and talks to it
over actual HTTP — the same path ``tools/loadgen.py`` and CI exercise.

Slow-job scenarios use ``flood:9`` (~2-3s of engine work), which leaves
a comfortable window to observe ``running``, coalesce duplicates, cancel
mid-flight, or drain with a checkpoint on disk.
"""

import http.client
import json
import threading
import time

import asyncio

import pytest

from repro.api import make_workload, report_to_dict, run_scenario
from repro.service import SDEService, ServiceLimits

FAST_SPEC = {"workload": "flood", "size": 3, "algorithm": "sds", "seed": 7}
SLOW_SPEC = {"workload": "flood", "size": 9, "algorithm": "sds", "seed": 7}

#: deterministic report fields pinned across resume/retry (wall-clock and
#: harness bookkeeping excluded)
PINNED_FIELDS = (
    "total_states",
    "events_executed",
    "group_count",
    "instructions",
    "errors",
    "virtual_ms",
    "aborted",
)

TERMINAL = {"done", "failed", "timeout", "cancelled"}


class ServiceThread:
    """A live service on an ephemeral port, driven from the test thread."""

    def __init__(self, data_dir, limits=None):
        self.service = None
        self.loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(data_dir, limits), daemon=True
        )
        self._thread.start()
        assert self._ready.wait(timeout=15), "service failed to boot"

    def _run(self, data_dir, limits):
        async def main():
            self.loop = asyncio.get_event_loop()
            self.service = SDEService(data_dir, port=0, limits=limits)
            await self.service.start()
            self._ready.set()
            await self.service.serve_forever()

        asyncio.run(main())

    def stop(self):
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop
        )
        future.result(timeout=30)
        self._thread.join(timeout=30)

    # -- HTTP helpers --------------------------------------------------------

    def request(self, method, path, body=None, client_id="test"):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.service.port, timeout=30
        )
        try:
            conn.request(
                method,
                path,
                body=None if body is None else json.dumps(body),
                headers={"X-Client-Id": client_id},
            )
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        try:
            return response.status, json.loads(raw)
        except ValueError:
            return response.status, raw.decode("utf-8", "replace")

    def submit(self, spec, client_id="test"):
        return self.request("POST", "/v1/runs", spec, client_id)

    def wait_state(self, job_id, predicate, timeout=60):
        deadline = time.time() + timeout
        while time.time() < deadline:
            status, record = self.request("GET", f"/v1/runs/{job_id}")
            assert status == 200
            if predicate(record):
                return record
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never matched: {record}")

    def wait_terminal(self, job_id, timeout=60):
        return self.wait_state(
            job_id, lambda r: r["state"] in TERMINAL, timeout
        )


@pytest.fixture
def service(tmp_path):
    thread = ServiceThread(tmp_path / "data")
    yield thread
    thread.stop()


@pytest.fixture(scope="module")
def fast_reference():
    spec = FAST_SPEC
    report = run_scenario(
        make_workload(spec["workload"], spec["size"]), spec["algorithm"]
    )
    return report_to_dict(report)


class TestHappyPath:
    def test_submit_poll_report_trace(self, service, fast_reference):
        status, out = service.submit(FAST_SPEC)
        assert status == 202
        assert out["state"] == "queued"
        assert out["disposition"] == "fresh"
        assert not out["deduplicated"]
        job_id = out["id"]

        record = service.wait_terminal(job_id)
        assert record["state"] == "done"
        assert record["result"]["ok"] is True

        status, report = service.request("GET", f"/v1/runs/{job_id}/report")
        assert status == 200
        for field in PINNED_FIELDS:
            assert report[field] == fast_reference[field], field

        status, raw = service.request(
            "GET", f"/v1/runs/{job_id}/trace?follow=0"
        )
        assert status == 200
        lines = [line for line in raw.splitlines() if line.strip()]
        assert len(lines) > 10
        events = [json.loads(line) for line in lines]
        assert events[0]["ev"] == "run.start"
        assert events[-1]["ev"] == "run.end"

        status, health = service.request("GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        status, stats = service.request("GET", "/v1/stats")
        assert status == 200
        assert stats["jobs"]["done"] == 1
        assert stats["counters"]["service.submitted"] == 1

    def test_duplicate_submission_served_from_cache(self, service):
        status, first = service.submit(FAST_SPEC)
        assert status == 202
        service.wait_terminal(first["id"])

        status, second = service.submit(FAST_SPEC)
        assert status == 200
        assert second["deduplicated"] is True
        assert second["disposition"] == "cached"
        assert second["id"] == first["id"]

        _, stats = service.request("GET", "/v1/stats")
        assert stats["counters"]["service.dedup.cached"] == 1
        # only one job was ever executed
        assert stats["jobs"]["done"] == 1

    def test_inflight_duplicate_coalesces(self, service):
        status, first = service.submit(SLOW_SPEC)
        assert status == 202
        status, second = service.submit(SLOW_SPEC, client_id="other")
        assert status == 200
        assert second["deduplicated"] is True
        assert second["disposition"] == "coalesced"
        assert second["id"] == first["id"]
        _, stats = service.request("GET", "/v1/stats")
        assert stats["counters"]["service.dedup.coalesced"] == 1
        # the shared job is one job: cancel it and both callers see it end
        service.request("DELETE", f"/v1/runs/{first['id']}")
        record = service.wait_terminal(first["id"])
        assert record["state"] == "cancelled"


class TestRejections:
    def test_validation_errors_are_400(self, service):
        assert service.submit({"workload": "nope", "size": 3})[0] == 400
        assert service.submit({"workload": "flood"})[0] == 400
        assert (
            service.submit(
                {
                    "workload": "flood",
                    "size": 3,
                    "config": {"checkpoint_path": "/tmp/x"},
                }
            )[0]
            == 400
        )
        status, out = service.request("POST", "/v1/runs", body=None)
        assert status == 400
        assert "JSON" in out["error"] or "object" in out["error"]

    def test_unknown_routes_and_methods(self, service):
        assert service.request("GET", "/v1/runs/zzzz")[0] == 404
        assert service.request("GET", "/nope")[0] == 404
        assert service.request("GET", "/v1/runs")[0] == 405
        status, _ = service.request("GET", "/v1/runs/zzzz/report")
        assert status == 404

    def test_report_of_unfinished_job_is_409(self, service):
        _, out = service.submit(SLOW_SPEC)
        status, detail = service.request(
            "GET", f"/v1/runs/{out['id']}/report"
        )
        assert status == 409
        assert detail["state"] in ("queued", "running")
        service.request("DELETE", f"/v1/runs/{out['id']}")
        service.wait_terminal(out["id"])


class TestBackpressure:
    def test_queue_full_and_client_cap_are_429(self, tmp_path):
        limits = ServiceLimits(max_queue=3, max_active=1, per_client=1)
        service = ServiceThread(tmp_path / "data", limits=limits)
        try:
            # occupy the single active slot with a slow run
            _, running = service.submit(SLOW_SPEC, client_id="a")
            service.wait_state(
                running["id"], lambda r: r["state"] == "running"
            )
            # queue two distinct specs from distinct clients (room remains)
            _, q1 = service.submit(dict(FAST_SPEC, seed=1), client_id="b")
            _, q2 = service.submit(dict(FAST_SPEC, seed=2), client_id="c")

            # client b already holds a live job: capped before queue limits
            status, out = service.submit(
                dict(FAST_SPEC, seed=4), client_id="b"
            )
            assert status == 429
            assert out["error"] == "client_cap"

            # a fresh client tops the queue off, the next one overflows it
            _, q3 = service.submit(dict(FAST_SPEC, seed=3), client_id="d")
            status, out = service.submit(
                dict(FAST_SPEC, seed=5), client_id="e"
            )
            assert status == 429
            assert out["error"] == "queue_full"
            assert out["retry_after_seconds"] > 0

            _, stats = service.request("GET", "/v1/stats")
            assert stats["counters"]["service.rejected.queue_full"] == 1
            assert stats["counters"]["service.rejected.client_cap"] == 1

            for record in (running, q1, q2, q3):
                service.request("DELETE", f"/v1/runs/{record['id']}")
            for record in (running, q1, q2, q3):
                service.wait_terminal(record["id"])
        finally:
            service.stop()


class TestCancellation:
    def test_cancel_queued_job(self, tmp_path):
        limits = ServiceLimits(max_active=1)
        service = ServiceThread(tmp_path / "data", limits=limits)
        try:
            _, running = service.submit(SLOW_SPEC)
            _, queued = service.submit(dict(FAST_SPEC, seed=9))
            status, out = service.request(
                "DELETE", f"/v1/runs/{queued['id']}"
            )
            assert status == 200
            record = service.wait_terminal(queued["id"])
            assert record["state"] == "cancelled"
            service.request("DELETE", f"/v1/runs/{running['id']}")
            service.wait_terminal(running["id"])
        finally:
            service.stop()

    def test_cancel_running_job(self, service):
        _, out = service.submit(SLOW_SPEC)
        service.wait_state(out["id"], lambda r: r["state"] == "running")
        status, _ = service.request("DELETE", f"/v1/runs/{out['id']}")
        assert status == 200
        record = service.wait_terminal(out["id"])
        assert record["state"] == "cancelled"
        # cancelling a terminal job is a no-op, not an error
        status, again = service.request("DELETE", f"/v1/runs/{out['id']}")
        assert status == 200
        assert again["state"] == "cancelled"

    def test_cancelled_jobs_never_enter_the_dedup_cache(self, service):
        _, out = service.submit(SLOW_SPEC)
        service.request("DELETE", f"/v1/runs/{out['id']}")
        service.wait_terminal(out["id"])
        status, fresh = service.submit(SLOW_SPEC)
        assert status == 202
        assert fresh["disposition"] == "fresh"
        assert fresh["id"] != out["id"]
        service.request("DELETE", f"/v1/runs/{fresh['id']}")
        service.wait_terminal(fresh["id"])


class TestChaos:
    def test_killed_worker_retries_to_equal_report(
        self, tmp_path, monkeypatch, fast_reference
    ):
        monkeypatch.setenv("SDE_CHAOS_KILL_WORKER", "1")
        service = ServiceThread(tmp_path / "data")
        try:
            _, out = service.submit(FAST_SPEC)
            record = service.wait_terminal(out["id"])
            assert record["state"] == "done"
            assert record["attempts"] >= 2
            assert record["retries"] >= 1
            status, report = service.request(
                "GET", f"/v1/runs/{out['id']}/report"
            )
            assert status == 200
            for field in PINNED_FIELDS:
                assert report[field] == fast_reference[field], field
            _, stats = service.request("GET", "/v1/stats")
            assert stats["counters"]["service.chaos.kills_planned"] >= 1
            assert stats["counters"]["service.retries"] >= 1
        finally:
            service.stop()
