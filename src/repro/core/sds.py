"""Super DStates (paper Section III-C) — the paper's contribution.

SDS removes COW's bystander duplication with one level of indirection:
*virtual states*.  Every execution state owns at least one virtual state;
each virtual state belongs to exactly one dstate; the set of dstates a
state's virtuals span is its *super-dstate*.  Conceptually, SDS is COW run
on the virtual layer — but forking a bystander only forks its virtual state
(a pointer), never the execution state itself.  Only **targets** are ever
forked for real, and each at most once per mapping (either it receives the
packet or it does not).

The four phases of Section III-C:

1. *Finding targets* — all execution states behind the virtual states of
   the destination node in any dstate containing a sending virtual state.
2. *Finding rivals* — direct rivals share a dstate with a sending virtual
   state; super-rivals share a dstate with a target but not with the sender.
3. *Forking condition* — a target is forked iff its super-dstate contains
   any rival (direct or super); a target with no rivals anywhere receives
   without forking.
4. *Virtual forking* — per dstate D of the sender: with direct rivals, D is
   COW-forked on the virtual layer (the sender's virtual moves to a fresh
   dstate with fresh virtuals for targets — attached to the receiving
   state — and bystanders — attached to the *same* state); the displaced
   target virtuals move to the non-receiving twin.  Super-rival dstates
   only reassign their target virtuals to the twin ("cutting the
   connection", Figure 7).

The non-duplication property (Section III-D) is checked as a test: SDS
never creates two states with identical configurations.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Sequence, Set

from ..vm.state import ExecutionState
from .cob import _ensure_counter_above
from .mapping import MappingError, StateMapper

__all__ = ["SDSMapper", "VirtualState", "VDState"]


class VirtualState:
    """A reference to an execution state, member of exactly one dstate."""

    __slots__ = ("vid", "actual", "dstate")

    _ids = itertools.count(1)

    def __init__(self, actual: ExecutionState, dstate: "VDState") -> None:
        self.vid = next(VirtualState._ids)
        self.actual = actual
        self.dstate = dstate

    def __repr__(self) -> str:
        return f"V#{self.vid}->s{self.actual.sid}@D{self.dstate.id}"


class VDState:
    """A dstate over virtual states (node id -> non-empty virtual list)."""

    __slots__ = ("id", "members")

    _ids = itertools.count(1)

    def __init__(self, members: Dict[int, List[VirtualState]]) -> None:
        self.id = next(VDState._ids)
        self.members = members

    def virtuals(self) -> List[VirtualState]:
        return [
            virtual
            for node in sorted(self.members)
            for virtual in self.members[node]
        ]

    def __repr__(self) -> str:
        shape = ",".join(str(len(self.members[node])) for node in sorted(self.members))
        return f"VDState#{self.id}[{shape}]"


class SDSMapper(StateMapper):
    """Super-dstate mapping: COW on the virtual layer."""

    name = "sds"

    def __init__(self) -> None:
        super().__init__()
        self._dstates: List[VDState] = []
        self._virtuals: Dict[int, List[VirtualState]] = {}  # sid -> virtuals

    # -- interface -----------------------------------------------------------

    def register_initial(self, states: Sequence[ExecutionState]) -> None:
        if self._dstates:
            raise MappingError("initial states registered twice")
        members: Dict[int, List[VirtualState]] = {}
        dstate = VDState(members)
        for state in states:
            if state.node in members:
                raise MappingError("initial states must be one per node")
            virtual = VirtualState(state, dstate)
            members[state.node] = [virtual]
            self._virtuals[state.sid] = [virtual]
        self._dstates.append(dstate)

    def on_local_fork(
        self, parent: ExecutionState, children: List[ExecutionState]
    ) -> None:
        """A branched state joins every dstate its predecessor is in.

        COW adds the child to the parent's (single) dstate; on the virtual
        layer the child mirrors each of the parent's virtual states.
        """
        parent_virtuals = list(self._virtuals[parent.sid])
        for child in children:
            child_virtuals = []
            for parent_virtual in parent_virtuals:
                dstate = parent_virtual.dstate
                virtual = VirtualState(child, dstate)
                dstate.members[parent.node].append(virtual)
                child_virtuals.append(virtual)
                self.stats.virtual_forks += 1
                if self.trace is not None:
                    self.trace.emit(
                        "mapper.copy",
                        node=parent.node,
                        t=parent.clock,
                        kind="virtual",
                        role="local",
                        vid=virtual.vid,
                    )
            self._virtuals[child.sid] = child_virtuals

    def map_transmission(
        self, sender: ExecutionState, dest_node: int
    ) -> List[ExecutionState]:
        self.stats.transmissions += 1
        sender_virtuals = list(self._virtuals[sender.sid])
        sender_dstate_ids: Set[int] = {vs.dstate.id for vs in sender_virtuals}

        # Phase 1: find targets.
        targets: List[ExecutionState] = []
        seen_targets: Set[int] = set()
        for vs in sender_virtuals:
            virtual_targets = vs.dstate.members.get(dest_node)
            if not virtual_targets:
                raise MappingError(
                    f"dstate {vs.dstate.id} has no virtuals for node {dest_node}"
                )
            for vt in virtual_targets:
                if vt.actual.sid not in seen_targets:
                    seen_targets.add(vt.actual.sid)
                    targets.append(vt.actual)

        # Phases 2+3: the forking condition.  A target needs no fork only if
        # every one of its virtuals sits in a dstate of the sender in which
        # the sender has no direct rivals.
        twins: Dict[int, ExecutionState] = {}  # target sid -> non-receiving twin
        for target in targets:
            needs_fork = False
            for vt in self._virtuals[target.sid]:
                dstate = vt.dstate
                if dstate.id not in sender_dstate_ids:
                    needs_fork = True  # super-rivals live there
                    break
                if len(dstate.members[sender.node]) > 1:
                    needs_fork = True  # direct rivals
                    break
            if needs_fork:
                twin = target.fork()
                twins[target.sid] = twin
                self.spawn(twin)
                self.stats.mapping_forks += 1
                if self.trace is not None:
                    self.trace.emit(
                        "mapper.copy",
                        node=target.node,
                        t=sender.clock,
                        kind="real",
                        role="target",
                        sid=twin.sid,
                    )

        # Phase 4a: per sender dstate, resolve direct-rival conflicts by
        # COW-forking the *virtual* layer.
        delivery_dstate_ids: Set[int] = set(sender_dstate_ids)
        for vs in sender_virtuals:
            dstate = vs.dstate
            direct_rivals = [v for v in dstate.members[sender.node] if v is not vs]
            if not direct_rivals:
                continue  # virtual packet delivered in place in this dstate
            dstate.members[sender.node] = direct_rivals
            new_members: Dict[int, List[VirtualState]] = {sender.node: [vs]}
            new_dstate = VDState(new_members)
            vs.dstate = new_dstate
            for node in sorted(dstate.members):
                if node == sender.node:
                    continue
                fresh_list: List[VirtualState] = []
                for old in dstate.members[node]:
                    if node == dest_node:
                        # Fresh virtual stays with the receiving target; the
                        # displaced one moves to the non-receiving twin.
                        receiver = old.actual
                        twin = twins[receiver.sid]
                        fresh = VirtualState(receiver, new_dstate)
                        self._virtuals[receiver.sid].remove(old)
                        old.actual = twin
                        self._virtuals.setdefault(twin.sid, []).append(old)
                        self._virtuals[receiver.sid].append(fresh)
                    else:
                        # Bystander: only its virtual state forks.
                        fresh = VirtualState(old.actual, new_dstate)
                        self._virtuals[old.actual.sid].append(fresh)
                    fresh_list.append(fresh)
                    self.stats.virtual_forks += 1
                    if self.trace is not None:
                        self.trace.emit(
                            "mapper.copy",
                            node=node,
                            t=sender.clock,
                            kind="virtual",
                            role="target" if node == dest_node else "bystander",
                            vid=fresh.vid,
                        )
                new_members[node] = fresh_list
            self._dstates.append(new_dstate)
            delivery_dstate_ids.add(new_dstate.id)

        # Phase 4b: super-rival dstates — move the target's remaining
        # virtuals outside all delivery contexts to the twin (Figure 7).
        for target in targets:
            twin = twins.get(target.sid)
            if twin is None:
                continue
            for vt in list(self._virtuals[target.sid]):
                if vt.dstate.id not in delivery_dstate_ids:
                    self._virtuals[target.sid].remove(vt)
                    vt.actual = twin
                    self._virtuals.setdefault(twin.sid, []).append(vt)

        return targets

    # -- snapshot / restore --------------------------------------------------------

    def snapshot_groups(self, group_indices):
        """Selected dstates plus each member state's *ordered* virtual list.

        The order of ``self._virtuals[sid]`` drives map_transmission's
        iteration, so it must survive the round-trip verbatim — it cannot be
        rebuilt from dstate membership.  Because partitions are closed under
        state sharing, every virtual of every state appearing in the
        selected dstates lies inside the selection, so the payload is
        self-contained (pickle's memo keeps the VirtualState objects shared
        between the two halves).
        """
        dstates = [self._dstates[index] for index in group_indices]
        ordered_sids: List[int] = []
        seen: Set[int] = set()
        for dstate in dstates:
            for virtual in dstate.virtuals():
                sid = virtual.actual.sid
                if sid not in seen:
                    seen.add(sid)
                    ordered_sids.append(sid)
        virtuals = [(sid, list(self._virtuals[sid])) for sid in ordered_sids]
        return (dstates, virtuals)

    def restore_groups(self, payload) -> None:
        if self._dstates:
            raise MappingError("restore_groups on a non-empty mapper")
        dstates, virtuals = payload
        max_did = 0
        max_vid = 0
        max_sid = 0
        for dstate in dstates:
            self._dstates.append(dstate)
            max_did = max(max_did, dstate.id)
        for sid, virtual_list in virtuals:
            self._virtuals[sid] = list(virtual_list)
            max_sid = max(max_sid, sid)
            for virtual in virtual_list:
                max_vid = max(max_vid, virtual.vid)
        _ensure_counter_above(VDState, max_did)
        _ensure_counter_above(VirtualState, max_vid)
        from ..vm.state import ensure_state_ids_above

        ensure_state_ids_above(max_sid)

    # -- introspection -------------------------------------------------------------

    def classify_roles(self, sender: ExecutionState, dest_node: int):
        """Figure 5/8 taxonomy on the virtual layer.

        Returns ``(targets, direct_rivals, super_rivals, bystanders)``:
        targets and bystanders as *execution states*, rivals as *virtual
        states* (the distinction between direct and super-rivals only
        exists virtually).  Read-only.
        """
        sender_virtuals = self._virtuals[sender.sid]
        sender_dstate_ids = {vs.dstate.id for vs in sender_virtuals}
        targets = []
        seen = set()
        involved_dstates = []
        for vs in sender_virtuals:
            involved_dstates.append(vs.dstate)
            for vt in vs.dstate.members.get(dest_node, ()):
                if vt.actual.sid not in seen:
                    seen.add(vt.actual.sid)
                    targets.append(vt.actual)
        direct_rivals = [
            v
            for vs in sender_virtuals
            for v in vs.dstate.members[sender.node]
            if v.actual is not sender
        ]
        super_rivals = []
        super_dstate_ids = set()
        for target in targets:
            for vt in self._virtuals[target.sid]:
                dstate = vt.dstate
                if (
                    dstate.id not in sender_dstate_ids
                    and dstate.id not in super_dstate_ids
                ):
                    super_dstate_ids.add(dstate.id)
                    involved_dstates.append(dstate)
                    super_rivals.extend(dstate.members[sender.node])
        bystander_sids = set()
        bystanders = []
        target_sids = {t.sid for t in targets}
        for dstate in involved_dstates:
            for node, virtuals in dstate.members.items():
                if node in (sender.node, dest_node):
                    continue
                for virtual in virtuals:
                    sid = virtual.actual.sid
                    if sid not in bystander_sids and sid not in target_sids:
                        bystander_sids.add(sid)
                        bystanders.append(virtual.actual)
        return targets, direct_rivals, super_rivals, bystanders

    def group_count(self) -> int:
        return len(self._dstates)

    def groups(self) -> Iterable[Dict[int, List[ExecutionState]]]:
        for dstate in self._dstates:
            yield {
                node: [virtual.actual for virtual in virtuals]
                for node, virtuals in dstate.members.items()
            }

    def dstates(self) -> List[VDState]:
        return list(self._dstates)

    def virtuals_of(self, state: ExecutionState) -> List[VirtualState]:
        return list(self._virtuals.get(state.sid, ()))

    def virtual_count(self) -> int:
        return sum(len(virtuals) for virtuals in self._virtuals.values())

    def check_invariants(self) -> None:
        from .history import in_direct_conflict

        node_sets = None
        for dstate in self._dstates:
            if node_sets is None:
                node_sets = set(dstate.members)
            elif set(dstate.members) != node_sets:
                raise MappingError(f"dstate {dstate.id} covers a different node set")
            for node, virtuals in dstate.members.items():
                if not virtuals:
                    raise MappingError(f"dstate {dstate.id} empty for node {node}")
                actual_sids = set()
                for virtual in virtuals:
                    if virtual.dstate is not dstate:
                        raise MappingError(f"virtual {virtual.vid} backpointer wrong")
                    if virtual.actual.node != node:
                        raise MappingError(
                            f"virtual {virtual.vid} filed under wrong node"
                        )
                    if virtual.actual.sid in actual_sids:
                        raise MappingError(
                            f"dstate {dstate.id} holds two virtuals of state"
                            f" {virtual.actual.sid}"
                        )
                    actual_sids.add(virtual.actual.sid)
                    if virtual not in self._virtuals.get(virtual.actual.sid, ()):
                        raise MappingError(f"virtual {virtual.vid} missing from index")
            # Conflict-freedom over the actuals in this dstate.
            actuals = [v.actual for v in dstate.virtuals()]
            for i, a in enumerate(actuals):
                for b in actuals[i + 1 :]:
                    if in_direct_conflict(a, b):
                        raise MappingError(
                            f"dstate {dstate.id} holds conflicting states"
                            f" {a.sid} and {b.sid}"
                        )
        for sid, virtuals in self._virtuals.items():
            if not virtuals:
                raise MappingError(f"state {sid} has no virtual states")
