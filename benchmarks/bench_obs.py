"""Overhead budget of the observability layer.

The event trace is wired into the engine's hottest paths (dispatch,
transmission mapping, solver queries), so it must be cheap enough to
leave on for any diagnostic run.  The acceptance bar: a fully traced run
stays within **1.15x** of the untraced wall-clock.  Both sides take the
best of three runs so a scheduler hiccup on either side cannot decide
the verdict.

The zero-cost claim for *disabled* tracing (no allocations on the hot
path at all) is asserted separately, in
``tests/obs/test_events.py::test_disabled_tracing_allocates_nothing``.
"""

import time

from repro.api import build_engine
from repro.obs import TraceEmitter
from repro.workloads import grid_scenario

REPEATS = 3


def _scenario():
    return grid_scenario(4, sim_seconds=6)


def _best_run_seconds(trace_factory):
    best = None
    events = 0
    for _ in range(REPEATS):
        trace = trace_factory()
        engine = build_engine(_scenario(), "sds", trace=trace)
        t0 = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
        if trace is not None:
            events = len(trace)
    return best, events


def test_tracing_overhead_within_budget(once, benchmark):
    def measure():
        untraced_s, _ = _best_run_seconds(lambda: None)
        traced_s, events = _best_run_seconds(TraceEmitter)
        return untraced_s, traced_s, events

    untraced_s, traced_s, events = once(measure)
    ratio = traced_s / max(untraced_s, 1e-9)
    benchmark.extra_info["untraced_s"] = round(untraced_s, 4)
    benchmark.extra_info["traced_s"] = round(traced_s, 4)
    benchmark.extra_info["events"] = events
    benchmark.extra_info["overhead_ratio"] = round(ratio, 3)
    assert events > 0, "traced run produced no events"
    assert ratio <= 1.15, (
        f"tracing overhead {ratio:.2f}x exceeds the 1.15x budget"
        f" ({untraced_s:.3f}s untraced vs {traced_s:.3f}s traced,"
        f" {events} events)"
    )
