"""Trickle-like dissemination: protocol behaviour + SDE properties."""


from repro import build_engine
from repro.core import dscenario_fingerprints
from repro.net import Topology
from repro.workloads import dissemination_scenario, first_gossip_packet
from repro.net.packet import Packet


class TestProtocolBehaviour:
    def _versions(self, engine):
        address = engine.program.global_address("version")
        return {
            node: sorted(
                s.memory[address] for s in engine.states_of_node(node)
            )
            for node in engine.topology.nodes()
        }

    def test_dissemination_completes_without_failures(self):
        topology = Topology.line(4)
        scenario = dissemination_scenario(topology, rounds=4, drop_nodes=())
        engine = build_engine(scenario, "sds")
        engine.run()
        versions = self._versions(engine)
        assert all(values == [1] for values in versions.values())

    def test_update_propagates_hop_by_hop(self):
        topology = Topology.line(3)
        scenario = dissemination_scenario(topology, rounds=3, drop_nodes=())
        engine = build_engine(scenario, "sds")
        engine.run()
        adopted = engine.program.global_address("adopted_at")
        t1 = engine.states_of_node(1)[0].memory[adopted]
        t2 = engine.states_of_node(2)[0].memory[adopted]
        assert 0 < t1 < t2  # farther node adopts later

    def test_suppression_reduces_traffic(self):
        """With k-suppression, steady-state rounds send fewer broadcasts
        than rounds x nodes."""
        topology = Topology.full_mesh(3)
        scenario = dissemination_scenario(topology, rounds=4, drop_nodes=())
        engine = build_engine(scenario, "sds")
        engine.run()
        broadcasts = engine.medium.broadcasts_sent
        assert broadcasts < 4 * 3  # suppression kicked in

    def test_drop_delays_but_does_not_prevent_dissemination(self):
        """The world where node 1 drops the first update still converges
        via a later gossip round (Trickle's robustness)."""
        topology = Topology.line(3)
        scenario = dissemination_scenario(topology, rounds=4)
        engine = build_engine(scenario, "sds", check_invariants=True)
        engine.run()
        address = engine.program.global_address("version")
        final_versions = {
            s.memory[address] for s in engine.states_of_node(2)
        }
        assert 1 in final_versions  # at least one world fully converged
        # ... and in *every* explored world the farthest node converged
        # eventually (recovery through re-gossip):
        assert final_versions == {1}


class TestSDEProperties:
    def test_equivalence_across_algorithms(self):
        fingerprints = {}
        for algorithm in ("cob", "cow", "sds"):
            scenario = dissemination_scenario(
                Topology.line(3), rounds=2
            )
            engine = build_engine(scenario, algorithm, check_invariants=True)
            report = engine.run()
            assert not report.aborted
            fingerprints[algorithm] = dscenario_fingerprints(
                engine.mapper, engine.packets
            )
        assert (
            fingerprints["cob"]
            == fingerprints["cow"]
            == fingerprints["sds"]
        )

    def test_gossip_is_flooding_like(self):
        """Dissemination is one of the paper's hard cases: the SDS/COB
        ratio is worse (closer to 1) than in the routed collect workload."""
        from repro.workloads import grid_scenario

        def ratio(factory):
            states = {}
            for algorithm in ("cob", "sds"):
                engine = build_engine(factory(), algorithm)
                states[algorithm] = engine.run().total_states
            return states["sds"] / states["cob"]

        gossip = ratio(
            lambda: dissemination_scenario(Topology.full_mesh(3), rounds=2)
        )
        collect = ratio(lambda: grid_scenario(3, sim_seconds=3))
        assert gossip > collect


class TestPacketFilter:
    def test_matches_version_one_gossip(self):
        assert first_gossip_packet(Packet(0, 1, (1, 0), 0))

    def test_rejects_version_zero(self):
        assert not first_gossip_packet(Packet(0, 1, (0, 0), 0))

    def test_rejects_wrong_shape(self):
        assert not first_gossip_packet(Packet(0, 1, (1, 0, 0), 0))
