"""Complete backtracking search over finite variable domains.

The decision procedure: interval propagation narrows domains; when
propagation reaches a fixpoint without deciding the query, the search splits
the smallest unresolved domain (enumerating it when small, bisecting
otherwise) and recurses.  Because propagation is sound and splitting strictly
shrinks domains, the procedure is complete: it returns a model iff the
conjunction is satisfiable.

Branching order is deterministic and biased toward small values, so
generated test cases come out minimal-ish and stable across runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..expr import BoolExpr, BVVar, Interval, evaluate
from .model import Model
from .propagate import Infeasible, propagate

__all__ = ["search", "SearchBudgetExceeded", "ENUMERATION_LIMIT"]

#: Domains at most this large are enumerated exhaustively instead of bisected.
ENUMERATION_LIMIT = 32

#: When the *product* of all remaining domain sizes is at most this, the
#: search switches to direct concrete evaluation of every assignment.  This
#: is the fast path for bit-level constraints (checksums, flag masks) where
#: interval propagation has no grip: evaluating the expression DAG a few
#: hundred times beats interval-bisecting it.
BRUTE_FORCE_LIMIT = 2048


class SearchBudgetExceeded(Exception):
    """The search exceeded its node budget without deciding the query."""


def search(
    constraints: Sequence[BoolExpr],
    variables: frozenset,
    max_nodes: int = 200_000,
) -> Optional[Model]:
    """Find a model of ``constraints`` over ``variables`` or prove None exists.

    ``variables`` must cover every variable occurring in ``constraints``.
    Raises :class:`SearchBudgetExceeded` if ``max_nodes`` split nodes were
    expanded without an answer (never observed in the SDE workloads; the
    budget is a safety net against adversarial guest programs).
    """
    domains: Dict[BVVar, Interval] = {
        v: Interval.top(v.width) for v in variables
    }
    budget = [max_nodes]
    try:
        propagate(constraints, domains)
    except Infeasible:
        return None
    return _solve(list(constraints), domains, budget)


def _solve(
    constraints: List[BoolExpr],
    domains: Dict[BVVar, Interval],
    budget: List[int],
) -> Optional[Model]:
    budget[0] -= 1
    if budget[0] < 0:
        raise SearchBudgetExceeded()

    unresolved = [v for v, d in domains.items() if not d.is_singleton()]
    if not unresolved:
        env = {v.name: d.lo for v, d in domains.items()}
        for constraint in constraints:
            if not evaluate(constraint, env):
                return None
        return Model(env)

    space = 1
    for variable in unresolved:
        space *= domains[variable].size()
        if space > BRUTE_FORCE_LIMIT:
            break
    if space <= BRUTE_FORCE_LIMIT:
        return _brute_force(constraints, domains, unresolved, budget)

    # Split the variable with the smallest domain; ties broken by name for
    # determinism.
    variable = min(unresolved, key=lambda v: (domains[v].size(), v.name))
    domain = domains[variable]

    if domain.size() <= ENUMERATION_LIMIT:
        candidates = [
            Interval.of(value) for value in range(domain.lo, domain.hi + 1)
        ]
    else:
        mid = (domain.lo + domain.hi) // 2
        candidates = [
            Interval(domain.lo, mid),
            Interval(mid + 1, domain.hi),
        ]

    for candidate in candidates:
        child = dict(domains)
        child[variable] = candidate
        try:
            propagate(constraints, child)
        except Infeasible:
            continue
        result = _solve(constraints, child, budget)
        if result is not None:
            return result
    return None


def _brute_force(
    constraints: List[BoolExpr],
    domains: Dict[BVVar, Interval],
    unresolved: List[BVVar],
    budget: List[int],
) -> Optional[Model]:
    """Concretely evaluate every assignment of a small residual space.

    Deterministic order (variables by name, values ascending) keeps models
    stable across runs.  The budget is charged per assignment so adversarial
    queries still terminate with SearchBudgetExceeded.
    """
    unresolved = sorted(unresolved, key=lambda v: v.name)
    env = {v.name: d.lo for v, d in domains.items() if d.is_singleton()}

    def assign(index: int) -> Optional[Model]:
        if index == len(unresolved):
            budget[0] -= 1
            if budget[0] < 0:
                raise SearchBudgetExceeded()
            for constraint in constraints:
                if not evaluate(constraint, env):
                    return None
            return Model(env)
        variable = unresolved[index]
        domain = domains[variable]
        for value in range(domain.lo, domain.hi + 1):
            env[variable.name] = value
            result = assign(index + 1)
            if result is not None:
                return result
        del env[variable.name]
        return None

    return assign(0)
