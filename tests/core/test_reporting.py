"""JSON report export tests."""

import json

import pytest

from repro import build_engine
from repro.core import load_report_dict, report_to_dict, save_report
from repro.core.reporting import SCHEMA_VERSION
from repro.workloads import line_scenario


@pytest.fixture(scope="module")
def report():
    engine = build_engine(line_scenario(3, sim_seconds=3), "sds")
    return engine.run()


class TestReportToDict:
    def test_core_fields(self, report):
        data = report_to_dict(report)
        assert data["schema"] == SCHEMA_VERSION
        assert data["algorithm"] == "sds"
        assert data["total_states"] == report.total_states
        assert data["group_count"] == report.group_count
        assert not data["aborted"]

    def test_series_included_by_default(self, report):
        data = report_to_dict(report)
        assert data["series"]
        first = data["series"][0]
        assert set(first) == {
            "wall_seconds",
            "virtual_ms",
            "events",
            "states",
            "accounted_bytes",
            "rss_bytes",
            "groups",
        }

    def test_series_can_be_omitted(self, report):
        data = report_to_dict(report, include_series=False)
        assert "series" not in data

    def test_json_serializable(self, report):
        json.dumps(report_to_dict(report))

    def test_error_entries(self):
        from repro import Scenario, Topology

        scenario = Scenario(
            name="boom",
            program="func on_boot() { fail(3); }",
            topology=Topology.line(1),
            horizon_ms=10,
        )
        engine = build_engine(scenario, "sds")
        data = report_to_dict(engine.run())
        assert len(data["errors"]) == 1
        assert data["errors"][0]["code"] == 3
        assert data["errors"][0]["node"] == 0


class TestRoundTrip:
    def test_save_and_load(self, report, tmp_path):
        path = tmp_path / "report.json"
        save_report(report, path)
        loaded = load_report_dict(path)
        assert loaded["total_states"] == report.total_states

    def test_schema_mismatch_rejected(self, report, tmp_path):
        path = tmp_path / "report.json"
        save_report(report, path)
        data = json.loads(path.read_text())
        data["schema"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema"):
            load_report_dict(path)
