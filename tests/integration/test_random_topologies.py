"""Equivalence and invariants on irregular topologies.

The paper evaluates grids; the algorithms themselves are topology-agnostic.
These tests run the collect protocol over random connected graphs and star
networks and hold COW/SDS to the COB oracle there too.
"""

import pytest

from repro import Scenario, build_engine
from repro.core import dscenario_fingerprints
from repro.net import Topology
from repro.net.failures import standard_failure_suite
from repro.workloads import collect_program, first_collect_packet


def collect_scenario(topology, source, sink, sends=2, sim_seconds=4):
    drop_nodes = [n for n in topology.nodes() if n != source]
    return Scenario(
        name=f"collect-{topology.name}",
        program=collect_program(),
        topology=topology,
        horizon_ms=sim_seconds * 1000,
        failure_factory=lambda: standard_failure_suite(
            drop_nodes, packet_filter=first_collect_packet
        ),
        preset_globals={
            "rime_next_hop": topology.next_hop_table(sink),
            "rime_sink": sink,
            "rime_source": source,
            "send_period": 1000,
            "sends_left": {source: sends},
        },
    )


def run_equivalence(topology, source, sink):
    fingerprints = {}
    states = {}
    for algorithm in ("cob", "cow", "sds"):
        engine = build_engine(
            collect_scenario(topology, source, sink),
            algorithm,
            check_invariants=True,
        )
        report = engine.run()
        assert not report.aborted
        fingerprints[algorithm] = dscenario_fingerprints(
            engine.mapper, engine.packets
        )
        states[algorithm] = report.total_states
    assert fingerprints["cob"] == fingerprints["cow"] == fingerprints["sds"]
    assert states["cob"] >= states["cow"] >= states["sds"]
    return states


class TestIrregularTopologies:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_regular_graph(self, seed):
        topology = Topology.random_connected(6, degree=3, seed=seed)
        run_equivalence(topology, source=5, sink=0)

    def test_star_topology(self):
        # Hub-and-spoke: the hub overhears everything.
        run_equivalence(Topology.star(5), source=4, sink=1)

    def test_rectangular_grid(self):
        run_equivalence(Topology.grid(4, 2), source=7, sink=0)

    def test_two_hop_star_savings(self):
        """Even on a star, SDS saves states vs COB when spokes bystand."""
        states = run_equivalence(Topology.star(6), source=5, sink=1)
        assert states["sds"] < states["cob"]
