"""Deterministic replay of distributed test cases.

The point of test-case generation (paper Section I: "concrete inputs and
deterministic schedules to analyze erroneous program paths") is that a
developer can re-run the exact failing scenario without any symbolic
machinery.  :func:`replay_testcase` does that: it re-runs a scenario with
every symbolic failure decision *forced* to the concrete value the solver
chose, so the engine never forks — one state per node, one deterministic
schedule, same defect.

Forcing works by replacing each failure model with a
:class:`ForcedFailureModel` that consults the test case's assignment for
the decision variable the original model *would* have created (the
variable naming is deterministic: ``n<node>.<tag><seq>``), and applies the
failure concretely instead of forking.
"""

from __future__ import annotations

from typing import List, Mapping, Tuple

from ..net.failures import DeliveryPlan, FailureModel
from ..net.packet import Packet
from ..vm.state import ExecutionState
from .engine import RunReport
from .scenario import Scenario, build_engine
from .testcase import DistributedTestCase

__all__ = ["ForcedFailureModel", "replay_testcase", "replay_assignments"]


class ForcedFailureModel(FailureModel):
    """Wraps a failure model, replaying concrete decisions instead of
    forking."""

    def __init__(self, original: FailureModel, assignments: Mapping[str, int]) -> None:
        super().__init__(original.nodes, original.budget, original.packet_filter)
        self.tag = original.tag
        self._failed_plan_of = original._failed_plan
        self._assignments = assignments

    def apply(
        self, plans: List[DeliveryPlan], packet: Packet
    ) -> Tuple[List[DeliveryPlan], List[Tuple[ExecutionState, ExecutionState]]]:
        out: List[DeliveryPlan] = []
        for state, deliveries, reboot in plans:
            if reboot or deliveries == 0 or not self.applies(state, packet):
                out.append((state, deliveries, reboot))
                continue
            # Consume the decision exactly like the symbolic run did, so
            # later decisions get the same variable names.
            name = state.fresh_symbol_name(self.tag)
            decision = self._assignments.get(name, 0)
            if decision:
                out.append(self._failed_plan_of(state, deliveries))
            else:
                out.append((state, deliveries, reboot))
        return out, []  # never forks


def replay_assignments(
    scenario: Scenario,
    assignments: Mapping[str, int],
    algorithm: str = "sds",
) -> RunReport:
    """Re-run ``scenario`` with all failure decisions pinned concretely."""
    original_factory = scenario.failure_factory

    def forced_factory():
        return [ForcedFailureModel(model, assignments) for model in original_factory()]

    engine = build_engine(scenario, algorithm, failure_models=list(forced_factory()))
    return engine.run()


def replay_testcase(
    scenario: Scenario,
    testcase: DistributedTestCase,
    algorithm: str = "sds",
) -> RunReport:
    """Replay one distributed test case; returns the concrete run's report.

    The replayed run is deterministic: if the guest program itself contains
    no ``symbolic()`` inputs, it never forks (one state per node), and any
    defect in the test case's dscenario reappears at the same node and
    virtual time.
    """
    if not testcase.feasible:
        raise ValueError("cannot replay an infeasible test case")
    return replay_assignments(scenario, testcase.assignments, algorithm)
