"""Submissions: what a client asks the service to run, content-addressed.

A :class:`SubmissionSpec` is the service's unit of work — a registered
workload plus its arguments, a state-mapping algorithm, an
:class:`~repro.core.config.EngineConfig` override subset, and a seed.
Everything in it is plain JSON data, never live objects: the spec crosses
the HTTP boundary, lands in the run store, and is rebuilt into a real
:class:`~repro.core.scenario.Scenario` only inside the job worker.

**Content addressing.**  :meth:`SubmissionSpec.digest` is a SHA-256 over
the canonical JSON form (sorted keys, normalized values).  Two
submissions with the same digest describe byte-identical runs — SDE runs
are deterministic, so the run store can serve the cached report for a
repeat submission without re-executing (the same content-addressed-key
idea the PR 8 symmetry seen-set uses for canonical state forms, applied
one level up at the whole-run granularity).

The config override subset is deliberately restricted: checkpoint
placement and cadence belong to the *service* (it owns the data dir and
the drain/resume protocol), so a submission naming them is rejected at
admission rather than silently overridden.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..core.config import ENGINE_CONFIG_FIELDS

__all__ = [
    "CONFIG_FIELD_ALLOWLIST",
    "SpecError",
    "SubmissionSpec",
]


#: EngineConfig fields a submission may override.  Everything the service
#: must own (checkpointing) or that cannot cross the JSON boundary
#: (failure models, preset mappings with non-string keys) is excluded.
CONFIG_FIELD_ALLOWLIST = frozenset(
    {
        "horizon_ms",
        "latency_ms",
        "max_states",
        "max_accounted_bytes",
        "max_wall_seconds",
        "sample_every_events",
        "max_steps_per_event",
        "solver_cache",
        "solver_max_nodes",
        "solver_optimize",
        "fuse_ops",
        "loop_reuse",
        "symmetry",
        "por",
        "medium",
        "medium_params",
    }
)

# The allowlist must stay a subset of the real config surface, or a
# field rename would let stale submissions through unvalidated.
assert CONFIG_FIELD_ALLOWLIST <= ENGINE_CONFIG_FIELDS


class SpecError(ValueError):
    """A submission failed validation (the HTTP layer maps this to 400)."""


@dataclass(frozen=True)
class SubmissionSpec:
    """One validated run submission, ready to hash and store."""

    workload: str
    size: int
    algorithm: str = "sds"
    workload_args: Dict[str, object] = field(default_factory=dict)
    config: Dict[str, object] = field(default_factory=dict)
    seed: int = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dict(cls, data: object) -> "SubmissionSpec":
        """Validate a decoded JSON body into a spec; raises SpecError."""
        if not isinstance(data, dict):
            raise SpecError("submission body must be a JSON object")
        unknown = set(data) - {
            "workload",
            "size",
            "algorithm",
            "workload_args",
            "config",
            "seed",
        }
        if unknown:
            raise SpecError(f"unknown submission field(s) {sorted(unknown)}")

        workload = data.get("workload")
        if not isinstance(workload, str) or not workload:
            raise SpecError("'workload' must be a non-empty string")
        size = data.get("size")
        if not isinstance(size, int) or isinstance(size, bool) or size < 1:
            raise SpecError("'size' must be a positive integer")
        algorithm = data.get("algorithm", "sds")
        if not isinstance(algorithm, str) or not algorithm:
            raise SpecError("'algorithm' must be a non-empty string")
        seed = data.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise SpecError("'seed' must be an integer")

        workload_args = data.get("workload_args", {})
        if not isinstance(workload_args, dict):
            raise SpecError("'workload_args' must be an object")
        for key, value in workload_args.items():
            if not isinstance(key, str):
                raise SpecError("'workload_args' keys must be strings")
            if not _is_plain_json(value):
                raise SpecError(
                    f"workload_args[{key!r}] must be a JSON primitive,"
                    " list of primitives, or flat object"
                )

        config = data.get("config", {})
        if not isinstance(config, dict):
            raise SpecError("'config' must be an object")
        rejected = set(config) - CONFIG_FIELD_ALLOWLIST
        if rejected:
            raise SpecError(
                f"config field(s) {sorted(rejected)} are not submittable;"
                f" allowed: {sorted(CONFIG_FIELD_ALLOWLIST)}"
            )
        for key, value in config.items():
            if not _is_plain_json(value):
                raise SpecError(f"config[{key!r}] must be a JSON primitive")
        medium_params = config.get("medium_params")
        if medium_params is not None:
            if not isinstance(medium_params, dict):
                raise SpecError("config['medium_params'] must be an object")
            for key, value in medium_params.items():
                # Medium parameters are numeric knobs (loss, jitter, seed,
                # ...); a string here is a smuggled path/identifier the
                # worker would hand to a medium constructor unchecked.
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise SpecError(
                        f"medium_params[{key!r}] must be a number"
                        " (path- or string-typed values are not accepted)"
                    )
        medium = config.get("medium")
        if medium is not None and not isinstance(medium, str):
            raise SpecError("config['medium'] must be a string")

        return cls(
            workload=workload,
            size=size,
            algorithm=algorithm,
            workload_args=dict(workload_args),
            config=dict(config),
            seed=seed,
        )

    def validated_against_registries(self) -> "SubmissionSpec":
        """Check workload/algorithm names against the live registries.

        Separate from :meth:`from_dict` so the store can re-load old
        records even if a custom registry entry has gone away.
        """
        from ..core.scenario import available_algorithms
        from ..net.medium import available_media
        from ..workloads import available_workloads

        if self.workload not in available_workloads():
            raise SpecError(
                f"unknown workload {self.workload!r}; available:"
                f" {list(available_workloads())}"
            )
        if self.algorithm not in available_algorithms():
            raise SpecError(
                f"unknown algorithm {self.algorithm!r}; available:"
                f" {list(available_algorithms())}"
            )
        medium = self.config.get("medium", "ideal")
        if medium not in available_media():
            raise SpecError(
                f"unknown medium {medium!r}; available:"
                f" {list(available_media())}"
            )
        return self

    # -- canonical form ------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "size": self.size,
            "algorithm": self.algorithm,
            "workload_args": dict(self.workload_args),
            "config": dict(self.config),
            "seed": self.seed,
        }

    def canonical_json(self) -> str:
        """Deterministic serialization: sorted keys, no whitespace drift."""
        return json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """The content address: SHA-256 hex of the canonical form."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    # -- execution-side helpers ---------------------------------------------

    def build_scenario(self):
        """Materialize the scenario (worker-side; needs the registry)."""
        from ..workloads import make_workload

        return make_workload(self.workload, self.size, **self.workload_args)

    def engine_overrides(self) -> Dict[str, object]:
        """The EngineConfig override kwargs this spec carries."""
        return dict(self.config)


def _is_plain_json(value, _depth: int = 0) -> bool:
    """Primitive, list of primitives, or one level of string-keyed dict."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if _depth >= 1:
        return False
    if isinstance(value, list):
        return all(_is_plain_json(item, _depth + 1) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and _is_plain_json(item, _depth + 1)
            for key, item in value.items()
        )
    return False


# re-exported for callers that want tuple introspection without importing
# dataclasses machinery
SPEC_FIELDS: Tuple[str, ...] = (
    "workload",
    "size",
    "algorithm",
    "workload_args",
    "config",
    "seed",
)
