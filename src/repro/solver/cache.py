"""Query caching for the solver.

Two layers, mirroring KLEE's caching stack:

1. **Exact cache** — the canonical frozenset of conjuncts maps to its
   result (a model, or None for unsat).  Symbolic execution re-issues nearly
   identical queries constantly (each branch adds one conjunct to an already
   solved prefix), and expressions are interned, so hashing a query is cheap.
2. **Model reuse (counterexample cache)** — before searching, recently
   produced models are evaluated against the new query; a hit proves
   satisfiability without any search.  This catches the common "the new
   conjunct was already true under the old model" case.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Iterable, Optional, Tuple

from ..expr import BoolExpr
from .model import Model

__all__ = ["SolverCache", "CacheStats"]


class CacheStats:
    """Counters exposed for the solver-ablation benchmark."""

    __slots__ = ("exact_hits", "model_reuse_hits", "misses", "stores")

    def __init__(self) -> None:
        self.exact_hits = 0
        self.model_reuse_hits = 0
        self.misses = 0
        self.stores = 0

    def as_dict(self) -> dict:
        return {
            "exact_hits": self.exact_hits,
            "model_reuse_hits": self.model_reuse_hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(exact={self.exact_hits},"
            f" reuse={self.model_reuse_hits}, misses={self.misses})"
        )


_MISS = object()


class SolverCache:
    """Bounded LRU cache of query results plus a model-reuse pool."""

    def __init__(self, max_entries: int = 65536, max_models: int = 256) -> None:
        self._exact: "OrderedDict[FrozenSet[BoolExpr], Optional[Model]]" = (
            OrderedDict()
        )
        self._models: "OrderedDict[Model, None]" = OrderedDict()
        self._max_entries = max_entries
        self._max_models = max_models
        self.stats = CacheStats()

    @staticmethod
    def key(constraints: Iterable[BoolExpr]) -> FrozenSet[BoolExpr]:
        return frozenset(constraints)

    def lookup(
        self, key: FrozenSet[BoolExpr]
    ) -> Tuple[bool, Optional[Model]]:
        """Return ``(hit, result)``; result is a Model or None (unsat)."""
        result = self._exact.get(key, _MISS)
        if result is not _MISS:
            self._exact.move_to_end(key)
            self.stats.exact_hits += 1
            return True, result  # type: ignore[return-value]
        # Model reuse: most recently stored models first.
        for model in reversed(self._models):
            if model.satisfies(key):
                self.stats.model_reuse_hits += 1
                return True, model
        self.stats.misses += 1
        return False, None

    def store(self, key: FrozenSet[BoolExpr], result: Optional[Model]) -> None:
        self.stats.stores += 1
        self._exact[key] = result
        self._exact.move_to_end(key)
        while len(self._exact) > self._max_entries:
            self._exact.popitem(last=False)
        if result is not None:
            self._models[result] = None
            self._models.move_to_end(result)
            while len(self._models) > self._max_models:
                self._models.popitem(last=False)

    def clear(self) -> None:
        self._exact.clear()
        self._models.clear()

    def __len__(self) -> int:
        return len(self._exact)
