"""Trace analysis: summaries, schema validation, and semantic diffing.

The tool behind ``repro trace``.  Its central definition is the
*canonical event multiset*: every semantic event (not ``worker.*`` /
``run.*``) reduced to its event type plus non-volatile fields
(:data:`repro.obs.events.VOLATILE_FIELDS` dropped), counted as a
multiset.  Two runs of the same scenario are *semantically identical*
iff their canonical multisets are equal — the property the parallel
runner guarantees for any ``--workers N``, and the property
``tests/obs/test_trace_determinism.py`` checks through this module.
"""

from __future__ import annotations

from collections import Counter as _Multiset
from typing import Dict, Iterable, List, Tuple

from .events import EVENT_SCHEMA, META_EVENT_PREFIXES, VOLATILE_FIELDS

__all__ = [
    "TraceDiff",
    "canonical_event",
    "canonical_multiset",
    "diff_traces",
    "summarize_trace",
    "validate_trace",
]

CanonicalEvent = Tuple


def canonical_event(event: dict) -> CanonicalEvent:
    """The identity of one event: type + sorted non-volatile fields."""
    return (
        event.get("ev"),
        tuple(
            sorted(
                (key, value)
                for key, value in event.items()
                if key != "ev" and key not in VOLATILE_FIELDS
            )
        ),
    )


def _is_meta(event: dict) -> bool:
    ev = event.get("ev", "")
    return ev.startswith(META_EVENT_PREFIXES)


def canonical_multiset(events: Iterable[dict]) -> "_Multiset[CanonicalEvent]":
    """Multiset of canonical semantic events (meta events excluded)."""
    return _Multiset(
        canonical_event(event) for event in events if not _is_meta(event)
    )


class TraceDiff:
    """Difference between two traces' canonical event multisets."""

    def __init__(self, only_a: _Multiset, only_b: _Multiset) -> None:
        self.only_a = only_a
        self.only_b = only_b

    @property
    def equal(self) -> bool:
        return not self.only_a and not self.only_b

    def render(self, limit: int = 20) -> str:
        if self.equal:
            return "traces are semantically identical"
        lines = [
            f"traces differ: {sum(self.only_a.values())} event(s) only in A,"
            f" {sum(self.only_b.values())} only in B"
        ]
        for label, side in (("A", self.only_a), ("B", self.only_b)):
            for key, count in sorted(side.items())[:limit]:
                ev, fields = key
                rendered = " ".join(f"{k}={v}" for k, v in fields)
                lines.append(f"  only in {label} x{count}: {ev} {rendered}")
        return "\n".join(lines)


def diff_traces(a: Iterable[dict], b: Iterable[dict]) -> TraceDiff:
    """Compare two traces modulo volatile fields and meta events."""
    multiset_a = canonical_multiset(a)
    multiset_b = canonical_multiset(b)
    return TraceDiff(multiset_a - multiset_b, multiset_b - multiset_a)


def validate_trace(events: Iterable[dict]) -> List[str]:
    """Schema-check a trace; returns a list of problems (empty = valid)."""
    errors: List[str] = []
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {index}: not an object")
            continue
        ev = event.get("ev")
        if ev not in EVENT_SCHEMA:
            errors.append(f"event {index}: unknown type {ev!r}")
            continue
        missing = EVENT_SCHEMA[ev] - set(event)
        if missing:
            errors.append(
                f"event {index} ({ev}): missing fields {sorted(missing)}"
            )
        if "seq" not in event:
            errors.append(f"event {index} ({ev}): missing seq")
    return errors


def summarize_trace(events: List[dict]) -> Dict:
    """Aggregate view of one trace: counts by type, nodes, time span."""
    by_type: Dict[str, int] = {}
    nodes = set()
    max_t = 0
    workers = set()
    for event in events:
        ev = event.get("ev", "?")
        by_type[ev] = by_type.get(ev, 0) + 1
        if "node" in event:
            nodes.add(event["node"])
        if "t" in event:
            max_t = max(max_t, event["t"])
        if "worker" in event:
            workers.add(event["worker"])
    return {
        "events": len(events),
        "by_type": {name: by_type[name] for name in sorted(by_type)},
        "nodes": len(nodes),
        "virtual_ms": max_t,
        "workers": sorted(workers),
    }


def render_summary(summary: Dict) -> str:
    """Human-readable form of :func:`summarize_trace`."""
    lines = [
        f"{summary['events']} events over {summary['nodes']} nodes,"
        f" {summary['virtual_ms']} virtual ms"
        + (
            f", workers {summary['workers']}"
            if summary["workers"]
            else ""
        )
    ]
    for name, count in summary["by_type"].items():
        lines.append(f"  {name:24s} {count}")
    return "\n".join(lines)
