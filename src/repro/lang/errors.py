"""Compilation diagnostics for the NSL guest language."""

from __future__ import annotations

__all__ = ["CompileError", "LexError", "ParseError", "SemanticError"]


class CompileError(Exception):
    """Base class for all guest-program compilation failures.

    Carries a source location so scenario authors get actionable messages
    (the guest programs in :mod:`repro.workloads` are plain strings).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")


class LexError(CompileError):
    """Invalid character or malformed literal."""


class ParseError(CompileError):
    """Token stream does not form a valid program."""


class SemanticError(CompileError):
    """Name resolution / arity / assignment-target errors."""
