"""SDE-as-a-service: an async, fault-tolerant job API over ``repro.api``.

The package splits along the failure domains:

- :mod:`repro.service.spec` — validated, content-addressed submissions;
- :mod:`repro.service.store` — the persistent run store (atomic records,
  artifacts, dedup index);
- :mod:`repro.service.worker` — the supervised subprocess that executes
  one attempt, streaming its trace and checkpointing;
- :mod:`repro.service.jobs` — admission control, retry, drain, recovery;
- :mod:`repro.service.http` — the stdlib asyncio HTTP front door.

See ``docs/SERVICE.md`` for the API contract and lifecycle state machine.
"""

from .http import SDEService, serve_main
from .jobs import (
    AdmissionError,
    ClientCapExceeded,
    Draining,
    JobManager,
    QueueFull,
    ServiceLimits,
)
from .spec import CONFIG_FIELD_ALLOWLIST, SpecError, SubmissionSpec
from .store import JOB_STATES, TERMINAL_STATES, JobRecord, RunStore
from .worker import StreamingTraceEmitter, execute_job

__all__ = [
    "AdmissionError",
    "CONFIG_FIELD_ALLOWLIST",
    "ClientCapExceeded",
    "Draining",
    "JOB_STATES",
    "JobManager",
    "JobRecord",
    "QueueFull",
    "RunStore",
    "SDEService",
    "ServiceLimits",
    "SpecError",
    "StreamingTraceEmitter",
    "SubmissionSpec",
    "TERMINAL_STATES",
    "execute_job",
    "serve_main",
]
