"""Delayed Copy On Write (paper Section III-B).

COW relaxes dscenarios into *dstates*: a dstate may hold several states per
node, as long as states of the same node share their communication history
(conflict-free).  Node-local branches are free — the new state simply joins
its predecessor's dstate.  Only a transmission whose sender has *rivals*
(other same-node states in the dstate) forces a fork: the sender moves into
a fresh dstate together with copies of all targets and bystanders, and the
packet is delivered inside the new dstate (Figure 4).

The residual waste is the bystander copies: states uninvolved in the
transmission are still duplicated because each state belongs to exactly one
dstate.  SDS removes exactly that cost.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Sequence

from ..vm.state import ExecutionState
from .cob import _ensure_counter_above
from .mapping import MappingError, StateMapper

__all__ = ["COWMapper", "DState"]


class DState:
    """A set of pairwise conflict-free states, possibly several per node."""

    __slots__ = ("id", "members")

    _ids = itertools.count(1)

    def __init__(self, members: Dict[int, List[ExecutionState]]) -> None:
        self.id = next(DState._ids)
        self.members = members  # node id -> non-empty list of states

    def states(self) -> List[ExecutionState]:
        return [state for node in sorted(self.members) for state in self.members[node]]

    def size(self) -> int:
        return sum(len(states) for states in self.members.values())

    def __repr__(self) -> str:
        shape = ",".join(str(len(self.members[node])) for node in sorted(self.members))
        return f"DState#{self.id}[{shape}]"


class COWMapper(StateMapper):
    """Delayed Copy On Write."""

    name = "cow"

    def __init__(self) -> None:
        super().__init__()
        self._dstates: List[DState] = []
        self._owner: Dict[int, DState] = {}  # sid -> its unique dstate

    # -- interface ------------------------------------------------------------

    def register_initial(self, states: Sequence[ExecutionState]) -> None:
        if self._dstates:
            raise MappingError("initial states registered twice")
        members = {state.node: [state] for state in states}
        if len(members) != len(states):
            raise MappingError("initial states must be one per node")
        dstate = DState(members)
        self._dstates.append(dstate)
        for state in states:
            self._owner[state.sid] = dstate

    def on_local_fork(
        self, parent: ExecutionState, children: List[ExecutionState]
    ) -> None:
        """Children join the parent's dstate — no copying at all."""
        dstate = self._owner[parent.sid]
        for child in children:
            dstate.members[parent.node].append(child)
            self._owner[child.sid] = dstate

    def map_transmission(
        self, sender: ExecutionState, dest_node: int
    ) -> List[ExecutionState]:
        self.stats.transmissions += 1
        dstate = self._owner[sender.sid]
        targets = dstate.members.get(dest_node)
        if not targets:
            raise MappingError(f"dstate has no state for node {dest_node}")
        rivals = [state for state in dstate.members[sender.node] if state is not sender]
        if not rivals:
            # No conflict pending: deliver in place to every target.
            return list(targets)

        # Conflict: the sender secedes into a fresh dstate together with
        # forked copies of all targets and bystanders (Figure 4).  The old
        # dstate keeps the rivals and the original targets/bystanders.
        new_members: Dict[int, List[ExecutionState]] = {sender.node: [sender]}
        dstate.members[sender.node] = rivals
        receivers: List[ExecutionState] = []
        for node in sorted(dstate.members):
            if node == sender.node:
                continue
            copies = []
            for original in dstate.members[node]:
                copy = original.fork()
                copies.append(copy)
                self.spawn(copy)
                self.stats.mapping_forks += 1
                if node != dest_node:
                    self.stats.bystander_duplicates += 1
                if self.trace is not None:
                    self.trace.emit(
                        "mapper.copy",
                        node=node,
                        t=sender.clock,
                        kind="real",
                        role="target" if node == dest_node else "bystander",
                        sid=copy.sid,
                    )
            new_members[node] = copies
            if node == dest_node:
                receivers = copies
        new_dstate = DState(new_members)
        self._dstates.append(new_dstate)
        self._owner[sender.sid] = new_dstate
        for states in new_members.values():
            for state in states:
                self._owner[state.sid] = new_dstate
        return receivers

    # -- snapshot / restore -----------------------------------------------------------

    def snapshot_groups(self, group_indices):
        """The selected dstates themselves — they pickle as-is."""
        return [self._dstates[index] for index in group_indices]

    def restore_groups(self, payload) -> None:
        if self._dstates:
            raise MappingError("restore_groups on a non-empty mapper")
        max_id = 0
        max_sid = 0
        for dstate in payload:
            self._dstates.append(dstate)
            max_id = max(max_id, dstate.id)
            for states in dstate.members.values():
                for state in states:
                    self._owner[state.sid] = dstate
                    max_sid = max(max_sid, state.sid)
        _ensure_counter_above(DState, max_id)
        from ..vm.state import ensure_state_ids_above

        ensure_state_ids_above(max_sid)

    # -- introspection ----------------------------------------------------------------

    def classify_roles(self, sender: ExecutionState, dest_node: int):
        """The paper's Figure-5 taxonomy for a pending transmission.

        Returns ``(targets, rivals, bystanders)`` as the paper defines them
        for COW: all three drawn from the sender's dstate; bystanders are
        everything that is neither sender, target nor rival.  Read-only —
        no forking happens.
        """
        dstate = self._owner[sender.sid]
        targets = list(dstate.members.get(dest_node, ()))
        rivals = [state for state in dstate.members[sender.node] if state is not sender]
        bystanders = [
            state
            for node, states in dstate.members.items()
            if node not in (sender.node, dest_node)
            for state in states
        ]
        return targets, rivals, bystanders

    def group_count(self) -> int:
        return len(self._dstates)

    def groups(self) -> Iterable[Dict[int, List[ExecutionState]]]:
        for dstate in self._dstates:
            yield {node: list(states) for node, states in dstate.members.items()}

    def dstates(self) -> List[DState]:
        return list(self._dstates)

    def check_invariants(self) -> None:
        from .history import in_direct_conflict

        seen: Dict[int, int] = {}
        for dstate in self._dstates:
            for node, states in dstate.members.items():
                if not states:
                    raise MappingError(f"dstate {dstate.id} empty for node {node}")
                for state in states:
                    if state.node != node:
                        raise MappingError(f"state {state.sid} filed under wrong node")
                    if state.sid in seen:
                        raise MappingError(f"state {state.sid} appears in two dstates")
                    seen[state.sid] = dstate.id
                    if self._owner.get(state.sid) is not dstate:
                        raise MappingError(f"owner map inconsistent for {state.sid}")
            # Pairwise conflict-freedom inside the dstate.
            all_states = dstate.states()
            for i, a in enumerate(all_states):
                for b in all_states[i + 1 :]:
                    if in_direct_conflict(a, b):
                        raise MappingError(
                            f"dstate {dstate.id} holds conflicting states"
                            f" {a.sid} and {b.sid}"
                        )
