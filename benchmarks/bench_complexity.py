"""Section III-E: the analytic worst case measured on the real engine.

The branch-every-instruction adversary over k isolated nodes must drive COB
to exactly (2^k)^u dscenarios and k * (2^k)^u states, while COW and SDS
hold one dstate (no communication => no conflicts).  This validates both
the bound and its interpretation as an upper bound for all algorithms.
"""

import pytest

from repro.api import Scenario, Topology, build_engine
from repro.core.complexity import (
    dscenario_tree_size,
    instructions_to_reach,
    worst_case_states_at_level,
)
from repro.workloads import branch_storm_program


def storm(k, depth):
    return Scenario(
        name=f"storm-{k}x{depth}",
        program=branch_storm_program(depth),
        topology=Topology.full_mesh(k) if k > 1 else Topology.line(1),
        horizon_ms=10,
    )


@pytest.mark.parametrize("k,depth", [(2, 3), (3, 2), (4, 2)])
def test_cob_worst_case_matches_formula(once, benchmark, k, depth):
    engine = build_engine(storm(k, depth), "cob")
    report = once(engine.run)
    expected_groups = (2**k) ** depth
    assert report.group_count == expected_groups
    assert report.total_states == worst_case_states_at_level(k, depth)
    benchmark.extra_info.update(
        k=k,
        depth=depth,
        dscenarios=report.group_count,
        states=report.total_states,
        tree_size_D=dscenario_tree_size(k, depth),
        instructions_bound_I=instructions_to_reach(k, depth),
    )


@pytest.mark.parametrize("k,depth", [(3, 3)])
def test_compact_algorithms_escape_worst_case(once, benchmark, k, depth):
    results = {}

    def run_all():
        for algorithm in ("cob", "cow", "sds"):
            engine = build_engine(storm(k, depth), algorithm)
            results[algorithm] = engine.run()
        return results

    once(run_all)
    bound = worst_case_states_at_level(k, depth)
    assert results["cob"].total_states == bound
    # The bound is an upper bound for every algorithm...
    assert results["cow"].total_states <= bound
    assert results["sds"].total_states <= bound
    # ...and without communication the compact algorithms are exponentially
    # smaller: k * 2^depth instead of k * 2^(k*depth).
    assert results["cow"].total_states == k * 2**depth
    assert results["sds"].total_states == k * 2**depth
    benchmark.extra_info["cob_states"] = results["cob"].total_states
    benchmark.extra_info["sds_states"] = results["sds"].total_states
