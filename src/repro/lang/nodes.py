"""Abstract syntax tree for NSL.

Plain dataclass-style nodes; every node records its source line for
diagnostics.  The tree is produced by :mod:`repro.lang.parser` and consumed
by :mod:`repro.lang.compiler`.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = [
    "Node",
    "Program",
    "GlobalVar",
    "ConstDef",
    "FuncDef",
    "Block",
    "VarDecl",
    "If",
    "While",
    "For",
    "Break",
    "Continue",
    "Return",
    "ExprStmt",
    "Assign",
    "IntLit",
    "StrLit",
    "Name",
    "Index",
    "Unary",
    "Binary",
    "Logical",
    "Ternary",
    "Call",
]


class Node:
    __slots__ = ("line",)

    def __init__(self, line: int) -> None:
        self.line = line


# -- top level ---------------------------------------------------------------


class Program(Node):
    __slots__ = ("globals", "consts", "funcs")

    def __init__(
        self,
        globals_: List["GlobalVar"],
        consts: List["ConstDef"],
        funcs: List["FuncDef"],
    ) -> None:
        super().__init__(1)
        self.globals = globals_
        self.consts = consts
        self.funcs = funcs


class GlobalVar(Node):
    """``var name;`` / ``var name = expr;`` / ``var name[size];``"""

    __slots__ = ("name", "size", "init")

    def __init__(self, line: int, name: str, size: Optional[int], init) -> None:
        super().__init__(line)
        self.name = name
        self.size = size  # None for scalars, element count for arrays
        self.init = init  # expression or None (arrays: always None)


class ConstDef(Node):
    """``const NAME = <constant expression>;``"""

    __slots__ = ("name", "value_expr")

    def __init__(self, line: int, name: str, value_expr) -> None:
        super().__init__(line)
        self.name = name
        self.value_expr = value_expr


class FuncDef(Node):
    __slots__ = ("name", "params", "body")

    def __init__(self, line: int, name: str, params: List[str], body: "Block") -> None:
        super().__init__(line)
        self.name = name
        self.params = params
        self.body = body


# -- statements ---------------------------------------------------------------


class Block(Node):
    __slots__ = ("statements",)

    def __init__(self, line: int, statements: List[Node]) -> None:
        super().__init__(line)
        self.statements = statements


class VarDecl(Node):
    """Local declaration; same shape as :class:`GlobalVar`."""

    __slots__ = ("name", "size", "init")

    def __init__(self, line: int, name: str, size: Optional[int], init) -> None:
        super().__init__(line)
        self.name = name
        self.size = size
        self.init = init


class If(Node):
    __slots__ = ("cond", "then", "orelse")

    def __init__(self, line: int, cond, then: Block, orelse: Optional[Block]) -> None:
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.orelse = orelse


class While(Node):
    __slots__ = ("cond", "body")

    def __init__(self, line: int, cond, body: Block) -> None:
        super().__init__(line)
        self.cond = cond
        self.body = body


class For(Node):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, line: int, init, cond, step, body: Block) -> None:
        super().__init__(line)
        self.init = init  # statement or None
        self.cond = cond  # expression or None (None == forever)
        self.step = step  # statement or None
        self.body = body


class Break(Node):
    __slots__ = ()


class Continue(Node):
    __slots__ = ()


class Return(Node):
    __slots__ = ("value",)

    def __init__(self, line: int, value) -> None:
        super().__init__(line)
        self.value = value  # expression or None


class ExprStmt(Node):
    __slots__ = ("expr",)

    def __init__(self, line: int, expr) -> None:
        super().__init__(line)
        self.expr = expr


class Assign(Node):
    """``target = value`` or compound ``target op= value``.

    ``target`` is a :class:`Name` or :class:`Index`;
    ``op`` is None for plain assignment, else one of ``+ - * / % & | ^ << >>``.
    """

    __slots__ = ("target", "op", "value")

    def __init__(self, line: int, target, op: Optional[str], value) -> None:
        super().__init__(line)
        self.target = target
        self.op = op
        self.value = value


# -- expressions ---------------------------------------------------------------


class IntLit(Node):
    __slots__ = ("value",)

    def __init__(self, line: int, value: int) -> None:
        super().__init__(line)
        self.value = value


class StrLit(Node):
    """String literal; only valid as an intrinsic argument."""

    __slots__ = ("value",)

    def __init__(self, line: int, value: str) -> None:
        super().__init__(line)
        self.value = value


class Name(Node):
    __slots__ = ("ident",)

    def __init__(self, line: int, ident: str) -> None:
        super().__init__(line)
        self.ident = ident


class Index(Node):
    __slots__ = ("base", "index")

    def __init__(self, line: int, base: str, index) -> None:
        super().__init__(line)
        self.base = base  # array name (NSL arrays are named, not first-class)
        self.index = index


class Unary(Node):
    """``-x``, ``~x``, ``!x``"""

    __slots__ = ("op", "operand")

    def __init__(self, line: int, op: str, operand) -> None:
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Node):
    """Strict (non-short-circuit) binary operators."""

    __slots__ = ("op", "left", "right")

    def __init__(self, line: int, op: str, left, right) -> None:
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Logical(Node):
    """Short-circuit ``&&`` / ``||`` (compiled to branches)."""

    __slots__ = ("op", "left", "right")

    def __init__(self, line: int, op: str, left, right) -> None:
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Ternary(Node):
    __slots__ = ("cond", "then", "orelse")

    def __init__(self, line: int, cond, then, orelse) -> None:
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.orelse = orelse


class Call(Node):
    __slots__ = ("name", "args")

    def __init__(self, line: int, name: str, args: List[Node]) -> None:
        super().__init__(line)
        self.name = name
        self.args = args


def dump(node: Node, indent: int = 0) -> str:
    """Debug rendering of an AST subtree (stable across runs)."""
    pad = "  " * indent
    name = type(node).__name__
    parts = [f"{pad}{name}"]
    for slot in node.__slots__:
        value = getattr(node, slot)
        if isinstance(value, Node):
            parts.append(f"{pad}  {slot}:")
            parts.append(dump(value, indent + 2))
        elif isinstance(value, list) and value and isinstance(value[0], Node):
            parts.append(f"{pad}  {slot}:")
            for item in value:
                parts.append(dump(item, indent + 2))
        else:
            parts.append(f"{pad}  {slot}={value!r}")
    return "\n".join(parts)
