"""State-space reduction benchmarks (symmetry + POR, ``docs/REDUCTION.md``).

One A/B gate on the same 3-node symbolic flood that ``bench_engine`` and
``bench_solver`` use, so wall-clock numbers stay comparable across bench
files:

- reduction **off** (the default configuration every other bench runs);
- reduction **on** (``symmetry=True, por=True``).

The gate requires a >=2x drop in explored states (the PR target; the
measured factor is ~78x on this workload and the trend baseline pins the
real number), wall-clock no worse than the unreduced run, and — the
soundness half — identical canonical violation verdicts on vs. off.

Headline numbers are persisted to the ``SDE_BENCH_JSON`` artifact (see
``benchmarks/record.py``) and gated by ``benchmarks/check_trend.py``
against ``benchmarks/baselines/BENCH_reduce.json``.
"""

import time

from repro.api import Scenario, Topology, build_engine
from repro.core.reduce import analyze_recv_handler, canonical_violations
from repro.lang import compile_source

from benchmarks.bench_solver import SYMBOLIC_FLOOD
from benchmarks.record import record_bench


def _flood_scenario() -> Scenario:
    return Scenario(
        name="symbolic-flood-3",
        program=SYMBOLIC_FLOOD,
        topology=Topology.full_mesh(3),
        horizon_ms=300,
    )


def test_flood_handler_certifies():
    """The flood's ``on_recv`` must stay POR-certifiable: if a future
    edit makes it non-commuting, the reducer self-disables and the A/B
    gate below would silently measure nothing."""
    commutes, reason = analyze_recv_handler(compile_source(SYMBOLIC_FLOOD))
    assert commutes, f"flood on_recv no longer certifies: {reason}"


def test_reduction_state_drop_gate(once):
    """Symmetry+POR must cut explored states >=2x at no wall-clock cost,
    while reporting the identical canonical verdict set."""

    def run_pair():
        start = time.perf_counter()
        off = build_engine(_flood_scenario(), "sds").run()
        off_seconds = time.perf_counter() - start

        start = time.perf_counter()
        on = build_engine(_flood_scenario(), "sds", symmetry=True, por=True).run()
        on_seconds = time.perf_counter() - start
        return off, off_seconds, on, on_seconds

    off, off_seconds, on, on_seconds = once(run_pair)

    topology = Topology.full_mesh(3)
    assert canonical_violations(on, topology) == canonical_violations(
        off, topology
    ), "reduction changed the reported verdict set"

    drop = off.total_states / max(on.total_states, 1)
    counters = on.metrics["counters"]
    record_bench(
        reduce_states_off=off.total_states,
        reduce_states_on=on.total_states,
        reduce_state_drop_factor=round(drop, 1),
        reduce_wall_clock_off=round(off_seconds, 3),
        reduce_wall_clock_on=round(on_seconds, 3),
        reduce_pruned=counters.get("reduce.pruned", 0),
        reduce_slept_twins=counters.get("reduce.slept_twins", 0),
        reduce_slept_events=counters.get("reduce.slept_events", 0),
        reduce_woken=counters.get("reduce.woken", 0),
        reduce_orbits=counters.get("reduce.orbits", 0),
    )
    assert drop >= 2.0, (
        f"reduction dropped states only {drop:.1f}x "
        f"({off.total_states} -> {on.total_states})"
    )
    # "No worse" with the usual CI-jitter headroom; in practice the
    # reduced run is ~50x faster, so this bound is generous.
    assert on_seconds <= off_seconds * 1.25, (
        f"reduction made the run slower: {on_seconds:.2f}s vs "
        f"{off_seconds:.2f}s unreduced"
    )
