"""Partition analysis (future-work Section VI) and stats/memory accounting."""

from repro import build_engine
from repro.core import (
    COWMapper,
    estimate_state_bytes,
    partition_groups,
    speedup_bound,
)
from repro.core.stats import StatsRecorder, process_rss_bytes
from repro.vm.state import ExecutionState
from repro.workloads import grid_scenario

from .helpers import MapperHarness


class TestPartition:
    def test_single_dstate_single_partition(self):
        harness = MapperHarness(COWMapper(), node_count=3)
        partitions = partition_groups(harness.mapper)
        assert len(partitions) == 1
        assert partitions[0].state_count() == 3

    def test_cow_dstates_are_independent(self):
        harness = MapperHarness(COWMapper(), node_count=3)
        node1 = harness.initial[1]
        harness.branch(node1)
        harness.transmit(node1, 2)  # forks a second dstate
        partitions = partition_groups(harness.mapper)
        assert len(partitions) == 2
        # COW dstates share no states: ideal speedup is total/largest.
        assert speedup_bound(partitions) > 1.0

    def test_sds_shared_states_merge_partitions(self):
        from repro.core import SDSMapper

        harness = MapperHarness(SDSMapper(), node_count=3)
        node1 = harness.initial[1]
        harness.branch(node1)
        harness.transmit(node1, 2)
        # Bystander node 0 spans both dstates -> they cannot be separated.
        partitions = partition_groups(harness.mapper)
        assert len(partitions) == 1

    def test_engine_run_partitions(self):
        engine = build_engine(grid_scenario(3, sim_seconds=2), "cow")
        engine.run()
        partitions = partition_groups(engine.mapper)
        total = sum(p.state_count() for p in partitions)
        assert total == len(engine.states)
        assert speedup_bound(partitions) >= 1.0

    def test_empty_partitions_speedup(self):
        assert speedup_bound([]) == 1.0


class TestMemoryAccounting:
    def test_estimate_grows_with_content(self):
        small = ExecutionState(0, memory_size=4)
        big = ExecutionState(0, memory_size=400)
        assert estimate_state_bytes(big) > estimate_state_bytes(small)

    def test_estimate_counts_constraints_and_history(self):
        from repro.expr import bv, eq, var

        state = ExecutionState(0, memory_size=4)
        base = estimate_state_bytes(state)
        state.add_constraint(eq(var("x"), bv(1)))
        state.record_sent(1, dest=1)
        assert estimate_state_bytes(state) > base

    def test_recorder_samples(self):
        recorder = StatsRecorder(program_instructions=100, sample_every_events=2)
        states = [ExecutionState(0, 4), ExecutionState(1, 4)]
        assert recorder.should_sample(0)
        sample = recorder.record(states, virtual_ms=10, events_executed=0, groups=1)
        assert sample.total_states == 2
        assert sample.accounted_bytes > 0
        assert not recorder.should_sample(1)
        assert recorder.should_sample(2)

    def test_recorder_peaks(self):
        recorder = StatsRecorder(program_instructions=10)
        states = [ExecutionState(0, 4)]
        recorder.record(states, 0, 0, 1)
        recorder.record(states * 3, 1, 1, 1)
        assert recorder.peak_states() == 3

    def test_rss_readable_on_linux(self):
        assert process_rss_bytes() > 0

    def test_image_cost_shows_as_baseline(self):
        """Figure 10's memory plots start with the bytecode-load jump; the
        accounting model reproduces it via the program-image term."""
        big_program = StatsRecorder(program_instructions=10_000)
        small_program = StatsRecorder(program_instructions=10)
        state = [ExecutionState(0, 4)]
        big = big_program.record(state, 0, 0, 1).accounted_bytes
        small = small_program.record(state, 0, 0, 1).accounted_bytes
        assert big > small


class TestReportSamples:
    def test_run_report_carries_series(self):
        scenario = grid_scenario(3, sim_seconds=2)
        scenario.sample_every_events = 1
        engine = build_engine(scenario, "sds")
        report = engine.run()
        assert len(report.samples) > 2
        # Monotone non-decreasing state counts over the run.
        totals = [s.total_states for s in report.samples]
        assert totals == sorted(totals)
        assert report.peak_states() == totals[-1]
        assert report.peak_accounted_bytes() >= report.samples[0].accounted_bytes
