"""Code generator: NSL AST -> stack bytecode.

Responsibilities beyond plain codegen:

- **memory layout** — globals first, then one static frame per function
  (params followed by locals).  NSL has no runtime stack frames; recursion
  is rejected via a call-graph cycle check (sensornet C discipline).
- **name resolution** — lexical block scopes over the static layout;
  constants fold at compile time; bare array names decay to their base
  address (C-style), so buffers can be passed to ``uc_send``/``recv_copy``.
- **arity checking** against user functions and the builtin table.
- **short-circuit lowering** of ``&&``/``||``/``?:`` into branches, which is
  what makes them symbolic fork points, exactly like compiled C in KleeNet.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from . import nodes as N
from .builtins import check_arity, is_builtin
from .bytecode import CompiledProgram, FuncInfo, Instr, Op
from .errors import SemanticError
from .parser import parse

__all__ = ["compile_program", "compile_source"]

_MASK32 = 0xFFFFFFFF


def compile_source(source: str) -> CompiledProgram:
    """Compile NSL source text to bytecode (parse + codegen)."""
    return compile_program(parse(source), source)


def compile_program(program: N.Program, source: str = "") -> CompiledProgram:
    return _Compiler(program, source).compile()


def _fold(expr: N.Node, consts: Dict[str, int]) -> int:
    """Evaluate a compile-time constant expression (32-bit semantics)."""
    if isinstance(expr, N.IntLit):
        return expr.value & _MASK32
    if isinstance(expr, N.Name):
        if expr.ident in consts:
            return consts[expr.ident]
        raise SemanticError(
            f"{expr.ident!r} is not a constant", expr.line
        )
    if isinstance(expr, N.Unary):
        value = _fold(expr.operand, consts)
        if expr.op == "-":
            return (-value) & _MASK32
        if expr.op == "~":
            return (~value) & _MASK32
        return 1 if value == 0 else 0
    if isinstance(expr, N.Binary):
        left = _fold(expr.left, consts)
        right = _fold(expr.right, consts)
        return _fold_binary(expr.op, left, right, expr.line)
    raise SemanticError("expression is not a compile-time constant", expr.line)


def _signed(value: int) -> int:
    return value - (1 << 32) if value >= (1 << 31) else value


def _fold_binary(op: str, left: int, right: int, line: int) -> int:
    sl, sr = _signed(left), _signed(right)
    if op == "+":
        return (left + right) & _MASK32
    if op == "-":
        return (left - right) & _MASK32
    if op == "*":
        return (left * right) & _MASK32
    if op == "/":
        if right == 0:
            raise SemanticError("constant division by zero", line)
        quotient = abs(sl) // abs(sr)
        return (-quotient if (sl < 0) != (sr < 0) else quotient) & _MASK32
    if op == "%":
        if right == 0:
            raise SemanticError("constant modulo by zero", line)
        remainder = abs(sl) % abs(sr)
        return (-remainder if sl < 0 else remainder) & _MASK32
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return 0 if right >= 32 else (left << right) & _MASK32
    if op == ">>":
        return (sl >> min(right, 31)) & _MASK32
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if sl < sr else 0
    if op == "<=":
        return 1 if sl <= sr else 0
    if op == ">":
        return 1 if sl > sr else 0
    if op == ">=":
        return 1 if sl >= sr else 0
    raise SemanticError(f"operator {op!r} not allowed in constants", line)


class _Binding:
    """What a name resolves to in the current scope."""

    __slots__ = ("kind", "addr", "size", "value", "index")

    def __init__(self, kind, addr=0, size=0, value=0, index=0):
        self.kind = kind  # 'cell' | 'array' | 'const' | 'func'
        self.addr = addr
        self.size = size
        self.value = value
        self.index = index


_BIN_OPCODE = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "/": Op.SDIV,
    "%": Op.SREM,
    "&": Op.BAND,
    "|": Op.BOR,
    "^": Op.BXOR,
    "<<": Op.SHL,
    ">>": Op.ASHR,
    "==": Op.EQ,
    "!=": Op.NE,
    "<": Op.SLT,
    "<=": Op.SLE,
}
_SWAPPED = {">": Op.SLT, ">=": Op.SLE}


class _Compiler:
    def __init__(self, program: N.Program, source: str) -> None:
        self._program = program
        self._source = source
        self._code: List[Instr] = []
        self._consts: Dict[str, int] = {}
        self._globals: Dict[str, Tuple[int, int]] = {}
        self._global_arrays: set = set()
        self._initializers: List[Tuple[int, int]] = []
        self._strings: List[str] = []
        self._string_index: Dict[str, int] = {}
        self._func_bindings: Dict[str, _Binding] = {}
        self._func_defs: Dict[str, N.FuncDef] = {}
        self._call_edges: Dict[str, Set[str]] = {}
        self._next_addr = 0
        # per-function compile state
        self._scopes: List[Dict[str, _Binding]] = []
        self._current_func: str = ""
        self._frame_cursor = 0
        self._loop_stack: List[Tuple[List[int], List[int]]] = []

    # -- driver ---------------------------------------------------------------

    def compile(self) -> CompiledProgram:
        for const in self._program.consts:
            if const.name in self._consts:
                raise SemanticError(
                    f"duplicate const {const.name!r}", const.line
                )
            self._consts[const.name] = _fold(const.value_expr, self._consts)

        for decl in self._program.globals:
            self._declare_global(decl)

        functions: List[FuncInfo] = []
        for index, func in enumerate(self._program.funcs):
            if func.name in self._func_defs or func.name in self._globals:
                raise SemanticError(f"duplicate name {func.name!r}", func.line)
            if is_builtin(func.name):
                raise SemanticError(
                    f"{func.name!r} shadows a builtin", func.line
                )
            self._func_defs[func.name] = func
            self._func_bindings[func.name] = _Binding("func", index=index)
            self._call_edges[func.name] = set()

        for func in self._program.funcs:
            functions.append(self._compile_func(func))

        self._check_no_recursion()

        return CompiledProgram(
            code=self._code,
            functions=functions,
            memory_size=self._next_addr,
            globals_layout=dict(self._globals),
            initializers=list(self._initializers),
            source=self._source,
            strings=list(self._strings),
        )

    def _declare_global(self, decl: N.GlobalVar) -> None:
        if decl.name in self._globals or decl.name in self._consts:
            raise SemanticError(f"duplicate global {decl.name!r}", decl.line)
        size = decl.size if decl.size is not None else 1
        address = self._next_addr
        self._next_addr += size
        self._globals[decl.name] = (address, size)
        if decl.size is not None:
            self._global_arrays.add(decl.name)
        if decl.init is not None:
            value = _fold(decl.init, self._consts)
            self._initializers.append((address, value))

    # -- scope helpers -----------------------------------------------------------

    def _lookup(self, name: str, line: int) -> _Binding:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        if name in self._consts:
            return _Binding("const", value=self._consts[name])
        if name in self._globals:
            address, size = self._globals[name]
            if name in self._global_arrays:
                return _Binding("array", addr=address, size=size)
            return _Binding("cell", addr=address)
        if name in self._func_bindings:
            return self._func_bindings[name]
        raise SemanticError(f"undefined name {name!r}", line)

    def _declare_local(self, decl: N.VarDecl) -> _Binding:
        scope = self._scopes[-1]
        if decl.name in scope:
            raise SemanticError(
                f"duplicate local {decl.name!r} in scope", decl.line
            )
        size = decl.size if decl.size is not None else 1
        address = self._next_addr
        self._next_addr += size
        self._frame_cursor += size
        if decl.size is None:
            binding = _Binding("cell", addr=address)
        else:
            binding = _Binding("array", addr=address, size=size)
        scope[decl.name] = binding
        return binding

    # -- emission ------------------------------------------------------------------

    def _emit(self, op: Op, arg=None, line: int = 0) -> int:
        self._code.append(Instr(op, arg, line))
        return len(self._code) - 1

    def _patch(self, index: int, target: int) -> None:
        instr = self._code[index]
        self._code[index] = Instr(instr.op, target, instr.line)

    def _here(self) -> int:
        return len(self._code)

    def _intern_string(self, text: str) -> int:
        index = self._string_index.get(text)
        if index is None:
            index = len(self._strings)
            self._strings.append(text)
            self._string_index[text] = index
        return index

    # -- functions -----------------------------------------------------------------

    def _compile_func(self, func: N.FuncDef) -> FuncInfo:
        self._current_func = func.name
        entry = self._here()
        param_base = self._next_addr
        self._frame_cursor = 0
        scope: Dict[str, _Binding] = {}
        for param in func.params:
            if param in scope:
                raise SemanticError(
                    f"duplicate parameter {param!r}", func.line
                )
            scope[param] = _Binding("cell", addr=self._next_addr)
            self._next_addr += 1
            self._frame_cursor += 1
        self._scopes = [scope]
        self._compile_block(func.body)
        if self._needs_epilogue(entry):
            # Implicit `return 0;` for bodies that can fall off the end.
            self._emit(Op.PUSH, 0, func.line)
            self._emit(Op.RET, None, func.line)
        self._scopes = []
        index = self._func_bindings[func.name].index
        return FuncInfo(
            name=func.name,
            index=index,
            params=tuple(func.params),
            param_base=param_base,
            frame_size=self._frame_cursor,
            entry=entry,
            code_length=self._here() - entry,
        )

    def _needs_epilogue(self, entry: int) -> bool:
        """Can control fall off the end of the body compiled since ``entry``?

        Cheap conservative check: the body must end in RET and no jump in it
        may target the end position (e.g. the then-branch JMP of a trailing
        if/else).  Avoids emitting dead `PUSH 0; RET` epilogues that would
        show up as uncovered code in coverage reports.
        """
        end = self._here()
        if end == entry or self._code[-1].op != Op.RET:
            return True
        jumps = (Op.JMP, Op.JZ, Op.JNZ)
        for instr in self._code[entry:]:
            if instr.op in jumps and instr.arg == end:
                return True
        return False

    def _check_no_recursion(self) -> None:
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self._call_edges}

        def visit(name: str, trail: List[str]) -> None:
            color[name] = GRAY
            trail.append(name)
            for callee in sorted(self._call_edges[name]):
                if color[callee] == GRAY:
                    cycle = " -> ".join(trail + [callee])
                    raise SemanticError(
                        f"recursion is not supported (static frames): {cycle}",
                        self._func_defs[name].line,
                    )
                if color[callee] == WHITE:
                    visit(callee, trail)
            trail.pop()
            color[name] = BLACK

        for name in sorted(color):
            if color[name] == WHITE:
                visit(name, [])

    # -- statements -------------------------------------------------------------------

    def _compile_block(self, block: N.Block) -> None:
        self._scopes.append({})
        for statement in block.statements:
            self._compile_statement(statement)
        self._scopes.pop()

    def _compile_statement(self, stmt: N.Node) -> None:
        if isinstance(stmt, N.VarDecl):
            binding = self._declare_local(stmt)
            if stmt.init is not None:
                if binding.kind == "array":
                    raise SemanticError(
                        "array locals cannot have initializers", stmt.line
                    )
                self._compile_expr(stmt.init)
                self._emit(Op.STORE, binding.addr, stmt.line)
            return
        if isinstance(stmt, N.Assign):
            self._compile_assign(stmt)
            return
        if isinstance(stmt, N.If):
            self._compile_if(stmt)
            return
        if isinstance(stmt, N.While):
            self._compile_while(stmt)
            return
        if isinstance(stmt, N.For):
            self._compile_for(stmt)
            return
        if isinstance(stmt, N.Break):
            if not self._loop_stack:
                raise SemanticError("break outside loop", stmt.line)
            jump = self._emit(Op.JMP, None, stmt.line)
            self._loop_stack[-1][0].append(jump)
            return
        if isinstance(stmt, N.Continue):
            if not self._loop_stack:
                raise SemanticError("continue outside loop", stmt.line)
            jump = self._emit(Op.JMP, None, stmt.line)
            self._loop_stack[-1][1].append(jump)
            return
        if isinstance(stmt, N.Return):
            if stmt.value is not None:
                self._compile_expr(stmt.value)
            else:
                self._emit(Op.PUSH, 0, stmt.line)
            self._emit(Op.RET, None, stmt.line)
            return
        if isinstance(stmt, N.ExprStmt):
            self._compile_expr(stmt.expr)
            self._emit(Op.POP, None, stmt.line)
            return
        raise SemanticError(
            f"unsupported statement {type(stmt).__name__}", stmt.line
        )

    def _compile_assign(self, stmt: N.Assign) -> None:
        target = stmt.target
        if isinstance(target, N.Name):
            binding = self._lookup(target.ident, target.line)
            if binding.kind != "cell":
                raise SemanticError(
                    f"cannot assign to {binding.kind} {target.ident!r}",
                    target.line,
                )
            if stmt.op is not None:
                self._emit(Op.LOAD, binding.addr, stmt.line)
                self._compile_expr(stmt.value)
                self._emit(_BIN_OPCODE[stmt.op], None, stmt.line)
            else:
                self._compile_expr(stmt.value)
            self._emit(Op.STORE, binding.addr, stmt.line)
            return
        # Array element target.
        binding = self._lookup(target.base, target.line)
        if binding.kind != "array":
            raise SemanticError(
                f"{target.base!r} is not an array", target.line
            )
        extent = (binding.addr, binding.size)
        self._compile_expr(target.index)
        if stmt.op is not None:
            self._emit(Op.DUP, None, stmt.line)
            self._emit(Op.LOADI, extent, stmt.line)
            self._compile_expr(stmt.value)
            self._emit(_BIN_OPCODE[stmt.op], None, stmt.line)
        else:
            self._compile_expr(stmt.value)
        self._emit(Op.STOREI, extent, stmt.line)

    def _compile_if(self, stmt: N.If) -> None:
        self._compile_expr(stmt.cond)
        jz = self._emit(Op.JZ, None, stmt.line)
        self._compile_block(stmt.then)
        if stmt.orelse is not None:
            jmp = self._emit(Op.JMP, None, stmt.line)
            self._patch(jz, self._here())
            self._compile_block(stmt.orelse)
            self._patch(jmp, self._here())
        else:
            self._patch(jz, self._here())

    def _compile_while(self, stmt: N.While) -> None:
        top = self._here()
        self._compile_expr(stmt.cond)
        jz = self._emit(Op.JZ, None, stmt.line)
        self._loop_stack.append(([], []))
        self._compile_block(stmt.body)
        breaks, continues = self._loop_stack.pop()
        for jump in continues:
            self._patch(jump, top)
        self._emit(Op.JMP, top, stmt.line)
        end = self._here()
        self._patch(jz, end)
        for jump in breaks:
            self._patch(jump, end)

    def _compile_for(self, stmt: N.For) -> None:
        self._scopes.append({})
        if stmt.init is not None:
            self._compile_statement(stmt.init)
        top = self._here()
        jz = None
        if stmt.cond is not None:
            self._compile_expr(stmt.cond)
            jz = self._emit(Op.JZ, None, stmt.line)
        self._loop_stack.append(([], []))
        self._compile_block(stmt.body)
        breaks, continues = self._loop_stack.pop()
        step_at = self._here()
        for jump in continues:
            self._patch(jump, step_at)
        if stmt.step is not None:
            self._compile_statement(stmt.step)
        self._emit(Op.JMP, top, stmt.line)
        end = self._here()
        if jz is not None:
            self._patch(jz, end)
        for jump in breaks:
            self._patch(jump, end)
        self._scopes.pop()

    # -- expressions ----------------------------------------------------------------------

    def _compile_expr(self, expr: N.Node) -> None:
        if isinstance(expr, N.IntLit):
            self._emit(Op.PUSH, expr.value & _MASK32, expr.line)
            return
        if isinstance(expr, N.StrLit):
            self._emit(Op.PUSH, self._intern_string(expr.value), expr.line)
            return
        if isinstance(expr, N.Name):
            binding = self._lookup(expr.ident, expr.line)
            if binding.kind == "const":
                self._emit(Op.PUSH, binding.value, expr.line)
            elif binding.kind == "cell":
                self._emit(Op.LOAD, binding.addr, expr.line)
            elif binding.kind == "array":
                # C-style decay: an array name is its base address.
                self._emit(Op.PUSH, binding.addr, expr.line)
            else:
                raise SemanticError(
                    f"function {expr.ident!r} used as a value", expr.line
                )
            return
        if isinstance(expr, N.Index):
            binding = self._lookup(expr.base, expr.line)
            if binding.kind != "array":
                raise SemanticError(f"{expr.base!r} is not an array", expr.line)
            self._compile_expr(expr.index)
            self._emit(Op.LOADI, (binding.addr, binding.size), expr.line)
            return
        if isinstance(expr, N.Unary):
            self._compile_expr(expr.operand)
            opcode = {"-": Op.NEG, "~": Op.BNOT, "!": Op.LNOT}[expr.op]
            self._emit(opcode, None, expr.line)
            return
        if isinstance(expr, N.Binary):
            if expr.op in _SWAPPED:
                self._compile_expr(expr.right)
                self._compile_expr(expr.left)
                self._emit(_SWAPPED[expr.op], None, expr.line)
            else:
                self._compile_expr(expr.left)
                self._compile_expr(expr.right)
                self._emit(_BIN_OPCODE[expr.op], None, expr.line)
            return
        if isinstance(expr, N.Logical):
            self._compile_logical(expr)
            return
        if isinstance(expr, N.Ternary):
            self._compile_expr(expr.cond)
            jz = self._emit(Op.JZ, None, expr.line)
            self._compile_expr(expr.then)
            jmp = self._emit(Op.JMP, None, expr.line)
            self._patch(jz, self._here())
            self._compile_expr(expr.orelse)
            self._patch(jmp, self._here())
            return
        if isinstance(expr, N.Call):
            self._compile_call(expr)
            return
        raise SemanticError(
            f"unsupported expression {type(expr).__name__}", expr.line
        )

    def _compile_logical(self, expr: N.Logical) -> None:
        self._compile_expr(expr.left)
        if expr.op == "&&":
            short = self._emit(Op.JZ, None, expr.line)
            self._compile_expr(expr.right)
            self._emit(Op.BOOL, None, expr.line)
            done = self._emit(Op.JMP, None, expr.line)
            self._patch(short, self._here())
            self._emit(Op.PUSH, 0, expr.line)
            self._patch(done, self._here())
        else:
            short = self._emit(Op.JNZ, None, expr.line)
            self._compile_expr(expr.right)
            self._emit(Op.BOOL, None, expr.line)
            done = self._emit(Op.JMP, None, expr.line)
            self._patch(short, self._here())
            self._emit(Op.PUSH, 1, expr.line)
            self._patch(done, self._here())

    def _compile_call(self, expr: N.Call) -> None:
        name = expr.name
        nargs = len(expr.args)
        if is_builtin(name):
            if not check_arity(name, nargs):
                raise SemanticError(
                    f"builtin {name!r} called with {nargs} args", expr.line
                )
            for arg in expr.args:
                self._compile_expr(arg)
            self._emit(Op.SYS, (name, nargs), expr.line)
            return
        binding = self._func_bindings.get(name)
        if binding is None:
            raise SemanticError(f"undefined function {name!r}", expr.line)
        func = self._func_defs[name]
        if nargs != len(func.params):
            raise SemanticError(
                f"{name!r} expects {len(func.params)} args, got {nargs}",
                expr.line,
            )
        for arg in expr.args:
            self._compile_expr(arg)
        self._call_edges[self._current_func].add(name)
        self._emit(Op.CALL, (binding.index, nargs), expr.line)
