"""Sequential-vs-parallel equivalence and the parallel substrate.

The contract of :mod:`repro.core.parallel`: the merged report of a
parallel run is *identical* to the sequential run's — same state census,
same error states, same dscenario/dstate count — for any worker count.
These tests pin that down on the paper's 5x5 grid under COW and SDS,
plus the substrate pieces (pickling interned expressions, snapshotting
mappers, LPT assignment) in isolation.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.parallel import ParallelRunner, execute_task_bytes
from repro.core.partition import Partition, lpt_assign, schedule_makespan
from repro.core.scenario import Scenario, build_engine
from repro.net import Topology
from repro.workloads import grid_scenario

SPLIT_MS = 3000


def _error_signature(report):
    """Order-free identity of a report's error states (sids differ)."""
    signatures = [
        (s.node, s.error.kind, s.error.message, s.error.line, s.error.code, s.clock)
        for s in report.error_states
    ]
    return sorted(signatures)


@pytest.fixture(scope="module")
def sequential_baseline():
    cache = {}

    def get(algorithm, scenario_factory=lambda: grid_scenario(5, sim_seconds=10)):
        key = (algorithm, scenario_factory)
        if key not in cache:
            engine = build_engine(scenario_factory(), algorithm)
            report = engine.run()
            cache[key] = (report, engine.state_census())
        return cache[key]

    return get


class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("algorithm", ["cow", "sds"])
    def test_grid5_matches_sequential(
        self, sequential_baseline, algorithm, workers
    ):
        report, census = sequential_baseline(algorithm)
        parallel = ParallelRunner(
            grid_scenario(5, sim_seconds=10),
            algorithm,
            workers=workers,
            split_ms=SPLIT_MS,
        ).run()
        assert parallel.total_states == report.total_states
        assert parallel.group_count == report.group_count
        assert parallel.state_census() == census
        assert _error_signature(parallel) == _error_signature(report)
        assert parallel.events_executed == report.events_executed
        assert parallel.instructions == report.instructions
        assert parallel.mapping_stats == report.mapping_stats
        assert parallel.accounted_bytes == report.accounted_bytes
        assert not parallel.aborted

    def test_error_states_merge_exactly(self, sequential_baseline):
        # A 1->0 chain asserting on symbolic data under symbolic drops:
        # some partitions end in error states, and the merged report must
        # carry every one of them exactly once.
        def scenario():
            from repro.net.failures import SymbolicPacketDrop

            source = """
            var seen;
            func on_boot() {
                if (node_id() == 2) { timer_set(0, 50); }
            }
            func on_timer(tid) {
                var buf[1];
                buf[0] = symbolic("data", 8);
                uc_send(node_id() - 1, buf, 1);
            }
            func on_recv(src, len) {
                seen = recv_byte(0);
                assert(seen != 13, 99);
                if (node_id() > 0) {
                    var buf[1];
                    buf[0] = seen;
                    uc_send(node_id() - 1, buf, 1);
                }
            }
            """
            return Scenario(
                name="assert-chain",
                program=source,
                topology=Topology.line(3),
                horizon_ms=400,
                failure_factory=lambda: [SymbolicPacketDrop([0, 1])],
            )

        engine = build_engine(scenario(), "sds")
        report = engine.run()
        assert report.error_states, "scenario must produce error states"
        for workers in (1, 2):
            parallel = ParallelRunner(
                scenario(), "sds", workers=workers, split_events=20
            ).run()
            assert _error_signature(parallel) == _error_signature(report)
            assert parallel.total_states == report.total_states
            assert parallel.state_census() == engine.state_census()

    def test_cob_also_matches(self, sequential_baseline):
        # COB partitions are single dscenarios — the embarrassingly
        # parallel case; one worker count suffices as a smoke check.
        factory = lambda: grid_scenario(3, sim_seconds=10)  # noqa: E731
        engine = build_engine(factory(), "cob")
        report = engine.run()
        parallel = ParallelRunner(
            factory(), "cob", workers=2, split_ms=SPLIT_MS
        ).run()
        assert parallel.total_states == report.total_states
        assert parallel.group_count == report.group_count
        assert parallel.state_census() == engine.state_census()

    def test_run_finishing_before_split_degenerates_cleanly(self):
        parallel = ParallelRunner(
            grid_scenario(3, sim_seconds=2),
            "sds",
            workers=4,
            split_ms=10_000_000,
        ).run()
        engine = build_engine(grid_scenario(3, sim_seconds=2), "sds")
        report = engine.run()
        assert parallel.total_states == report.total_states
        assert parallel.group_count == report.group_count
        assert parallel.workers == 4
        assert parallel.partition_count == 0

    def test_report_to_dict_accepts_parallel_report(self):
        from repro.core.reporting import report_to_dict

        parallel = ParallelRunner(
            grid_scenario(3, sim_seconds=4), "cow", workers=2, split_ms=1000
        ).run()
        data = report_to_dict(parallel)
        assert data["total_states"] == parallel.total_states
        assert data["group_count"] == parallel.group_count
        assert data["series"][-1]["states"] == parallel.total_states
        assert data["metrics"]["counters"]["parallel.workers"] == 2
        assert "merge" in data["phases"]

    @pytest.mark.parametrize("algorithm", ["cow", "sds"])
    def test_grid5_trace_multiset_matches_sequential(self, algorithm):
        # The event-level form of the equivalence above: the canonical
        # multiset of traced semantic events is identical between the
        # sequential run and a 2-worker run (modulo volatile id fields).
        from repro.obs import TraceEmitter, diff_traces

        sequential = TraceEmitter()
        build_engine(
            grid_scenario(5, sim_seconds=10), algorithm, trace=sequential
        ).run()
        parallel = TraceEmitter()
        ParallelRunner(
            grid_scenario(5, sim_seconds=10),
            algorithm,
            workers=2,
            split_ms=SPLIT_MS,
            trace=parallel,
        ).run()
        diff = diff_traces(sequential.events, parallel.events)
        assert diff.equal, diff.render(limit=5)


class TestPickling:
    def test_interned_expressions_rebuild_through_constructors(self):
        from repro.expr import and_, bv, eq, ite, ne, not_, ult, var

        x = var("x")
        nodes = [
            bv(7, 8),
            x,
            and_(ult(x, bv(5)), ne(x, bv(0))),
            ite(eq(x, bv(1)), bv(2), x),
            not_(eq(x, bv(3))),
        ]
        for node in nodes:
            clone = pickle.loads(pickle.dumps(node))
            # Same process => same interning table => identical object.
            assert clone is node

    def test_execution_state_round_trips(self):
        from repro.expr import bv, eq, var
        from repro.vm.state import Event, ExecutionState

        state = ExecutionState(node=3, memory_size=8)
        state.memory[2] = var("n3.x")
        state.add_constraint(eq(var("n3.x"), bv(9)))
        state.push_event(10, Event.TIMER, 0)
        state.history = (("tx", 17, 1),)
        clone = pickle.loads(pickle.dumps(state))
        assert clone.sid == state.sid
        assert clone.config_key() == state.config_key()
        assert clone.memory[2] is state.memory[2]  # interning survives

    @pytest.mark.parametrize("algorithm", ["cob", "cow", "sds"])
    def test_mapper_snapshot_restores_structure(self, algorithm):
        from repro.core.scenario import make_mapper

        engine = build_engine(grid_scenario(3, sim_seconds=4), algorithm)
        engine.run_until(split_ms=2000)
        mapper = engine.mapper
        payload = pickle.loads(
            pickle.dumps(
                mapper.snapshot_groups(range(mapper.group_count()))
            )
        )
        restored = make_mapper(algorithm)
        restored.restore_groups(payload)
        restored.bind(lambda state: None)
        assert restored.group_count() == mapper.group_count()

        def shape(m):
            return [
                {node: sorted(s.sid for s in states) for node, states in group.items()}
                for group in m.groups()
            ]

        assert shape(restored) == shape(mapper)
        restored.check_invariants()

    def test_worker_task_round_trip_executes(self):
        # Build one real task, pickle it, and run it in-process: the exact
        # path a worker subprocess takes.
        runner = ParallelRunner(
            grid_scenario(3, sim_seconds=6), "cow", workers=2, split_ms=2000
        )
        engine = build_engine(runner.scenario, "cow")
        engine.run_until(split_ms=2000)
        tasks = runner._build_tasks(engine)
        assert tasks
        result = execute_task_bytes(pickle.dumps(tasks[0]))
        assert result.total_states > 0
        assert result.events_executed > 0


class TestLPTAssign:
    def _partitions(self, weights):
        return [
            Partition([i], set(range(100 * i, 100 * i + w)))
            for i, w in enumerate(weights)
        ]

    def test_assignment_covers_all_partitions_once(self):
        partitions = self._partitions([5, 3, 8, 1, 4])
        assignment = lpt_assign(partitions, 2)
        assert len(assignment) == 2
        flattened = [p for core in assignment for p in core]
        assert sorted(p.group_indices[0] for p in flattened) == [0, 1, 2, 3, 4]

    def test_heaviest_partitions_spread_first(self):
        partitions = self._partitions([8, 5, 4, 3, 1])
        assignment = lpt_assign(partitions, 2)
        loads = sorted(
            sum(p.state_count() for p in core) for core in assignment
        )
        assert loads == [10, 11]  # LPT: 8+3 vs 5+4+1 (or equivalent balance)

    def test_makespan_agrees_with_assignment(self):
        partitions = self._partitions([7, 7, 6, 5, 4, 4, 2])
        for cores in (1, 2, 3, 4):
            assignment = lpt_assign(partitions, cores)
            makespan = max(
                sum(p.state_count() for p in core) for core in assignment
            )
            assert makespan == schedule_makespan(partitions, cores)

    def test_more_cores_than_partitions_leaves_empty_cores(self):
        partitions = self._partitions([3, 2])
        assignment = lpt_assign(partitions, 4)
        assert sum(1 for core in assignment if core) == 2

    def test_deterministic(self):
        partitions = self._partitions([4, 4, 4, 2, 2])
        first = lpt_assign(partitions, 3)
        second = lpt_assign(partitions, 3)
        key = lambda a: [[p.group_indices for p in core] for core in a]  # noqa: E731
        assert key(first) == key(second)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            lpt_assign([], 0)


class TestParallelCLI:
    def _run_json(self, tmp_path, workers):
        from repro.cli import main

        path = tmp_path / f"report-w{workers}.json"
        code = main(
            [
                "run",
                "grid:3",
                "--algorithm",
                "cow",
                "--workers",
                str(workers),
                "--split-ms",
                "3000",
                "--json",
                str(path),
            ]
        )
        assert code == 0
        import json

        return json.loads(path.read_text())

    def test_cli_workers_merge_is_worker_count_independent(self, tmp_path, capsys):
        one = self._run_json(tmp_path, 1)
        two = self._run_json(tmp_path, 2)
        for key in (
            "total_states",
            "group_count",
            "events_executed",
            "instructions",
            "mapping_stats",
            "errors",
            "accounted_bytes",
        ):
            assert one[key] == two[key], key
        out = capsys.readouterr().out
        assert "projected-speedup" in out
