"""The HTTP front door: a stdlib-only asyncio server over the job manager.

API surface (all JSON; see docs/SERVICE.md for the full contract)::

    POST   /v1/runs            submit a spec     -> 202 fresh, 200 dedup,
                                                    429 backpressure,
                                                    503 draining, 400 bad
    GET    /v1/runs/{id}        job record        -> 200 / 404
    GET    /v1/runs/{id}/trace  stream JSONL      -> 200 (chunked, live)
    GET    /v1/runs/{id}/report final report      -> 200 / 409 not done
    DELETE /v1/runs/{id}        cancel            -> 200 / 404
    GET    /v1/stats            counters + queue  -> 200
    GET    /healthz             liveness/drain    -> 200 / 503

The server is deliberately minimal — request line + headers +
Content-Length body, one response, ``Connection: close`` — because the
interesting engineering lives behind it (admission control, supervision,
the run store).  Malformed requests get a 400, unknown paths a 404,
handler bugs a 500 with the error class name; the connection task never
leaks an exception into the event loop.

**Live traces.**  ``GET /v1/runs/{id}/trace`` streams the job's JSONL
trace file as it grows (the worker flushes per event) and closes when
the job reaches a terminal state; ``?follow=0`` returns just the current
contents.  If a retry restarts the trace file, the stream restarts from
the new beginning — the replayed prefix is identical up to the
checkpoint by the resume-equality guarantee.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
from typing import Optional, Tuple

from ..obs.events import TraceEmitter
from ..obs.metrics import MetricsRegistry
from .jobs import AdmissionError, JobManager, ServiceLimits
from .spec import SpecError, SubmissionSpec
from .store import RunStore

__all__ = ["SDEService", "serve_main"]

#: request-head size cap (request line + headers)
MAX_HEAD_BYTES = 16 * 1024
#: request-body size cap (submission specs are small)
MAX_BODY_BYTES = 256 * 1024
#: seconds allowed to read one request head/body
READ_TIMEOUT = 10.0

_RUN_PATH = re.compile(r"^/v1/runs/([A-Za-z0-9-]+)(/trace|/report)?$")

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class SDEService:
    """Store + job manager + HTTP server, wired for one data dir."""

    def __init__(
        self,
        data_dir,
        host: str = "127.0.0.1",
        port: int = 0,
        limits: Optional[ServiceLimits] = None,
        trace: Optional[TraceEmitter] = None,
    ) -> None:
        self.host = host
        self.port = port  # 0 = ephemeral; real port filled in by start()
        self.store = RunStore(data_dir)
        self.metrics = MetricsRegistry()
        self.trace = trace
        self.manager = JobManager(
            self.store, limits=limits, metrics=self.metrics, trace=trace
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Recover + schedule + listen.  Fills in ``self.port``."""
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._install_signal_handlers()

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes (signal or explicit)."""
        await self._stopped.wait()

    async def run(self) -> None:
        await self.start()
        await self.serve_forever()

    async def shutdown(self) -> None:
        """Graceful drain: stop admitting, park in-flight work, stop."""
        await self.manager.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._stopped.set()

    def _install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain.

        Only possible when the loop runs in the main thread (the
        ``repro serve`` path); embedded/test loops in worker threads
        fall back to calling :meth:`shutdown` directly.
        """
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.shutdown())
                )
            except (ValueError, NotImplementedError, RuntimeError):
                return

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                await _respond_json(
                    writer, 400, {"error": "malformed request"}
                )
                return
            method, path, headers, body = request
            await self._route(writer, method, path, headers, body)
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            pass  # client went away or dawdled; nothing to answer
        except Exception as exc:  # noqa: BLE001 - last-ditch 500
            try:
                await _respond_json(
                    writer,
                    500,
                    {"error": "internal error", "type": type(exc).__name__},
                )
            except Exception:  # noqa: BLE001
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001
                pass

    async def _read_request(
        self, reader
    ) -> Optional[Tuple[str, str, dict, bytes]]:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=READ_TIMEOUT
            )
        except asyncio.LimitOverrunError:
            return None
        if len(head) > MAX_HEAD_BYTES:
            return None
        try:
            text = head.decode("latin-1")
            request_line, _, header_block = text.partition("\r\n")
            method, path, _version = request_line.split(" ", 2)
        except ValueError:
            return None
        headers = {}
        for line in header_block.split("\r\n"):
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            return None
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=READ_TIMEOUT
            )
        return method.upper(), path, headers, body

    # -- routing ---------------------------------------------------------------

    async def _route(self, writer, method, path, headers, body) -> None:
        path, _, query = path.partition("?")
        if path == "/healthz":
            draining = self.manager.draining
            await _respond_json(
                writer,
                503 if draining else 200,
                {"status": "draining" if draining else "ok"},
            )
            return
        if path == "/v1/stats":
            await _respond_json(writer, 200, self._stats())
            return
        if path == "/v1/runs":
            if method != "POST":
                await _respond_json(
                    writer, 405, {"error": "POST /v1/runs to submit"}
                )
                return
            await self._submit(writer, headers, body)
            return
        match = _RUN_PATH.match(path)
        if match is None:
            await _respond_json(writer, 404, {"error": f"no route {path}"})
            return
        job_id, tail = match.group(1), match.group(2)
        record = self.store.load(job_id)
        if record is None:
            await _respond_json(
                writer, 404, {"error": f"unknown run {job_id}"}
            )
            return
        if tail is None:
            if method == "DELETE":
                cancelled = self.manager.cancel(job_id) or record
                await _respond_json(writer, 200, cancelled.as_dict())
            elif method == "GET":
                await _respond_json(writer, 200, record.as_dict())
            else:
                await _respond_json(writer, 405, {"error": "GET or DELETE"})
            return
        if method != "GET":
            await _respond_json(writer, 405, {"error": "GET only"})
            return
        if tail == "/report":
            await self._report(writer, job_id)
            return
        follow = "follow=0" not in query
        await self._stream_trace(writer, job_id, follow)

    async def _submit(self, writer, headers, body) -> None:
        try:
            data = json.loads(body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError):
            await _respond_json(writer, 400, {"error": "body is not JSON"})
            return
        client = headers.get("x-client-id", "anon")
        try:
            spec = SubmissionSpec.from_dict(data).validated_against_registries()
        except SpecError as exc:
            await _respond_json(writer, 400, {"error": str(exc)})
            return
        try:
            record, disposition = self.manager.submit(spec, client=client)
        except AdmissionError as exc:
            status = 503 if exc.reason == "draining" else 429
            await _respond_json(
                writer,
                status,
                {
                    "error": exc.reason,
                    "retry_after_seconds": exc.retry_after_seconds,
                },
                extra_headers={
                    "Retry-After": str(int(exc.retry_after_seconds) or 1)
                },
            )
            return
        payload = record.as_dict()
        payload["deduplicated"] = disposition != "fresh"
        payload["disposition"] = disposition
        await _respond_json(
            writer, 202 if disposition == "fresh" else 200, payload
        )

    async def _report(self, writer, job_id: str) -> None:
        record = self.store.load(job_id)
        if record.state == "done":
            report = self.store.load_report(job_id)
            if report is not None:
                await _respond_json(writer, 200, report)
                return
            await _respond_json(
                writer, 500, {"error": "report missing for done job"}
            )
            return
        # Explicitly-partial answer: terminal-but-not-done jobs expose
        # their typed failure; live jobs say "not yet".
        await _respond_json(
            writer,
            409,
            {
                "error": f"run is {record.state}",
                "state": record.state,
                "failure": record.failure,
            },
        )

    async def _stream_trace(self, writer, job_id: str, follow: bool) -> None:
        path = self.store.trace_path(job_id)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        offset = 0
        while True:
            offset = await self._stream_tail(writer, path, offset)
            record = self.store.load(job_id)
            if not follow or record is None or record.terminal:
                # flush whatever landed between the read and the check
                await self._stream_tail(writer, path, offset)
                return
            await asyncio.sleep(0.05)

    async def _stream_tail(self, writer, path: str, offset: int) -> int:
        try:
            size = os.path.getsize(path)
        except OSError:
            return offset
        if size < offset:
            offset = 0  # retry truncated the file; restart the stream
        if size == offset:
            return offset
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read(size - offset)
        writer.write(chunk)
        await writer.drain()
        return size

    # -- stats -----------------------------------------------------------------

    def _stats(self) -> dict:
        counters = {
            name: counter.value
            for name, counter in sorted(self.metrics._counters.items())
        }
        return {
            "service": self.manager.snapshot(),
            "jobs": self.store.stats(),
            "counters": counters,
        }


def serve_main(
    data_dir,
    host: str = "127.0.0.1",
    port: int = 8080,
    limits: Optional[ServiceLimits] = None,
    announce=print,
) -> None:
    """Blocking entry point for ``repro serve``: run until SIGTERM/SIGINT.

    On a signal the service drains — stops admitting, parks in-flight
    jobs with their checkpoints — and this function returns; a later
    boot on the same data dir resumes the parked work.
    """

    async def _main() -> None:
        service = SDEService(data_dir, host=host, port=port, limits=limits)
        await service.start()
        announce(
            f"sde service listening on http://{service.host}:{service.port}"
            f" (data dir {service.store.data_dir})"
        )
        await service.serve_forever()
        announce("sde service drained; parked jobs resume on next boot")

    asyncio.run(_main())


async def _respond_json(
    writer, status: int, payload: dict, extra_headers: Optional[dict] = None
) -> None:
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    reason = _REASONS.get(status, "Unknown")
    head_lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        head_lines.append(f"{name}: {value}")
    head = ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()
