"""Plain-text rendering of benchmark results.

The paper reports Table I (runtime / states / RAM per algorithm) and
Figure 10 (log-log growth curves).  Both render here as ASCII: the table
directly, the curves as downsampled log-scale series — adequate to read off
the orderings and crossovers the reproduction is judged on, with the raw
series available as CSV for external plotting.
"""

from __future__ import annotations

import math
from typing import List, Sequence, TextIO

from ..core.stats import Sample
from .runner import BenchRow

__all__ = ["render_table1", "render_series", "series_csv", "log_sparkline"]

_ALGO_LABELS = {
    "cob": "Copy On Branch (COB)",
    "cow": "Copy On Write (COW)",
    "sds": "Super DStates (SDS)",
}


def render_table1(rows: Sequence[BenchRow], title: str) -> str:
    """Render rows in the shape of the paper's Table I."""
    header = (
        f"{'State mapping algorithm':<26} {'Runtime':>12} {'States':>10}"
        f" {'RAM':>10}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row in rows:
        runtime = row.runtime_label()
        if row.aborted:
            runtime += " (aborted)"
        lines.append(
            f"{_ALGO_LABELS.get(row.algorithm, row.algorithm):<26}"
            f" {runtime:>12} {row.states:>10,} {row.memory_label():>10}"
        )
    lines.append("-" * len(header))
    return "\n".join(lines)


def _downsample(samples: Sequence[Sample], limit: int = 24) -> List[Sample]:
    if len(samples) <= limit:
        return list(samples)
    step = len(samples) / limit
    picked = [samples[int(i * step)] for i in range(limit)]
    if picked[-1] is not samples[-1]:
        picked.append(samples[-1])
    return picked


def log_sparkline(values: Sequence[int], width: int = 40) -> str:
    """A one-line log-scale sparkline for quick visual comparison."""
    blocks = " .:-=+*#%@"
    positives = [v for v in values if v > 0]
    if not positives:
        return " " * min(width, len(values))
    lo = math.log10(min(positives))
    hi = math.log10(max(positives))
    span = max(hi - lo, 1e-9)
    out = []
    for value in values[:width]:
        if value <= 0:
            out.append(" ")
            continue
        norm = (math.log10(value) - lo) / span
        out.append(blocks[min(int(norm * (len(blocks) - 1)), len(blocks) - 1)])
    return "".join(out)


def render_series(rows: Sequence[BenchRow], metric: str, title: str) -> str:
    """Figure-10-style text rendering of a growth series.

    ``metric`` is 'states' or 'memory'.  Each algorithm gets a downsampled
    (wall-time, value) listing plus a log sparkline.
    """
    lines = [title, "=" * len(title)]
    for row in rows:
        samples = _downsample(row.samples)
        if metric == "states":
            values = [s.total_states for s in samples]
            unit = "states"
        else:
            values = [s.accounted_bytes // 1024 for s in samples]
            unit = "KiB"
        suffix = " [ABORTED]" if row.aborted else ""
        lines.append(
            f"{row.algorithm.upper():>4}{suffix}  "
            f"final={values[-1] if values else 0:,} {unit}"
        )
        lines.append(f"      |{log_sparkline([max(v, 1) for v in values])}|")
        pairs = ", ".join(
            f"{s.wall_seconds:.2f}s:{v:,}" for s, v in zip(samples, values)
        )
        lines.append(f"      {pairs}")
    return "\n".join(lines)


def series_csv(rows: Sequence[BenchRow], stream: TextIO) -> None:
    """Write the full raw series (all algorithms) as CSV for replotting."""
    stream.write(
        "algorithm,wall_seconds,virtual_ms,events,states,accounted_bytes,"
        "rss_bytes,groups\n"
    )
    for row in rows:
        for sample in row.samples:
            stream.write(
                f"{row.algorithm},{sample.wall_seconds:.4f},"
                f"{sample.virtual_ms},{sample.events_executed},"
                f"{sample.total_states},{sample.accounted_bytes},"
                f"{sample.rss_bytes},{sample.groups}\n"
            )
