"""Engine/VM throughput micro-benchmarks.

Not a paper artifact — these keep an eye on the substrate itself: raw
bytecode dispatch rate, fork cost, solver query rate.  Regressions here
would silently stretch every Table-I/Figure-10 run.
"""

from repro.api import Solver, build_engine
from repro.lang import compile_source
from repro.vm import Executor
from repro.workloads import grid_scenario

HOT_LOOP = """
var acc;
func main(n) {
    var i = 0;
    while (i < n) {
        acc = (acc + i) ^ (i << 3);
        i += 1;
    }
}
"""


def test_concrete_dispatch_rate(benchmark):
    program = compile_source(HOT_LOOP)
    executor = Executor(program)

    def run_loop():
        state = executor.make_initial_state(0)
        before = executor.instructions_executed
        executor.run_event(state, "main", [20_000])
        # Per-round delta: the executor counter is cumulative across rounds.
        return executor.instructions_executed - before

    instructions = benchmark(run_loop)
    assert instructions > 0
    benchmark.extra_info["instructions_per_round"] = instructions


def test_state_fork_cost(benchmark):
    scenario = grid_scenario(5, sim_seconds=2)
    engine = build_engine(scenario, "sds")
    engine.setup()
    state = next(iter(engine.states.values()))

    def fork_many():
        return [state.fork() for _ in range(1000)]

    twins = benchmark(fork_many)
    assert len(twins) == 1000


def test_solver_query_rate(benchmark):
    from repro.expr import bv, ne, ult, var

    solver = Solver(use_cache=False)
    x = var("x")

    def query_batch():
        sat = 0
        for bound in range(2, 34):
            if solver.check([ult(x, bv(bound)), ne(x, bv(0))]):
                sat += 1
        return sat

    sat = benchmark(query_batch)
    assert sat == 32


def test_sds_end_to_end_rate(benchmark):
    def run():
        engine = build_engine(grid_scenario(5, sim_seconds=4), "sds")
        report = engine.run()
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    rate = report.instructions / max(report.runtime_seconds, 1e-9)
    benchmark.extra_info["instructions_per_second"] = int(rate)
    benchmark.extra_info["events"] = report.events_executed
    assert not report.aborted
