"""Solver query-optimization A/B: the acceptance gate for the pipeline.

Runs the same symbolic flood scenario twice — ``solver_optimize=False``
(the seed pipeline: flatten, partition, exact+model cache, search) and
``solver_optimize=True`` (incremental canonicalization, memoized models
and verdicts, counterexample tier) — and gates on two properties:

1. **Correctness**: every semantic field of the two reports is
   identical.  The optimizer may only change *how much work* the backend
   does, never a verdict, a state count or an executed event.
2. **Work reduction**: at least 30% fewer backend solve-group calls
   (``solver.backend.groups`` — each is one normalize+cache+search pass
   over an independent conjunct group), at wall-clock no worse than the
   seed pipeline (with slack for CI timer noise).

All numbers come from the run's metrics snapshot — the same JSON
contract ``repro run --metrics-out`` writes — not from solver internals.
Headline numbers are persisted to the ``SDE_BENCH_JSON`` artifact (see
``benchmarks/record.py``).

The flood workload in ``repro.workloads`` never queries the solver (its
drop failures are decided at the engine level), so the scenario here
floods *symbolic sensor readings*: every receive branches on symbolic
data three deep, which is what issues branch-feasibility queries.
"""

import time

from repro.api import Scenario, Topology, build_engine

from benchmarks.record import record_bench

SYMBOLIC_FLOOD = """
var seen;
func on_boot() { timer_set(0, 40 + node_id() * 7); }
func on_timer(tid) {
    var buf[1];
    buf[0] = symbolic("reading", 8);
    bc_send(buf, 1);
}
func on_recv(src, len) {
    var v = recv_byte(0);
    if (v > 128) { v -= 128; }
    if (v > 64) { v -= 64; }
    if (v > 32) { seen += 1; } else { seen += 2; }
}
"""

#: Semantic counters that must be bit-identical between the two runs.
SEMANTIC = (
    "states.total",
    "run.events_executed",
    "mapping.groups",
    "solver.queries",
    "solver.sat_results",
    "solver.unsat_results",
)


def _scenario():
    return Scenario(
        name="symbolic-flood-3",
        program=SYMBOLIC_FLOOD,
        topology=Topology.full_mesh(3),
        horizon_ms=300,
    )


def test_optimizer_reduces_backend_solves(once, benchmark):
    def run_with(optimize):
        engine = build_engine(_scenario(), "sds", solver_optimize=optimize)
        t0 = time.perf_counter()
        report = engine.run()
        return time.perf_counter() - t0, report

    def measure():
        seed_s, seed = run_with(False)
        opt_s, opt = run_with(True)
        return seed_s, seed, opt_s, opt

    seed_s, seed, opt_s, opt = once(measure)
    seed_c = seed.metrics["counters"]
    opt_c = opt.metrics["counters"]

    # 1. Same answers: the optimizer must be semantically invisible.
    for name in SEMANTIC:
        assert opt_c[name] == seed_c[name], (name, seed_c[name], opt_c[name])

    # 2. Less work: >=30% fewer backend solve-group passes.
    seed_groups = seed_c["solver.backend.groups"]
    opt_groups = opt_c["solver.backend.groups"]
    reduction = 1.0 - opt_groups / max(seed_groups, 1)
    assert reduction >= 0.30, (
        f"backend solve reduction {reduction:.1%} < 30%"
        f" ({seed_groups} -> {opt_groups} groups)"
    )

    # 3. No slower: the tiers must pay for themselves.  1.25x slack keeps
    # CI timer noise from flaking a run that is reliably faster locally.
    assert opt_s < seed_s * 1.25, (
        f"optimized run slower: {opt_s:.2f}s vs {seed_s:.2f}s seed"
    )

    record_bench(
        solver_backend_groups_seed=seed_groups,
        solver_backend_groups_optimized=opt_groups,
        solver_group_reduction_pct=round(reduction * 100, 1),
        solver_wall_clock_seed=round(seed_s, 3),
        solver_wall_clock_optimized=round(opt_s, 3),
    )
    benchmark.extra_info["seed_s"] = round(seed_s, 3)
    benchmark.extra_info["optimized_s"] = round(opt_s, 3)
    benchmark.extra_info["backend_groups_seed"] = seed_groups
    benchmark.extra_info["backend_groups_optimized"] = opt_groups
    benchmark.extra_info["reduction"] = round(reduction, 3)
    benchmark.extra_info["model_shortcuts"] = opt_c["solver.shortcuts.model"]
    benchmark.extra_info["verdict_shortcuts"] = opt_c[
        "solver.shortcuts.verdict"
    ]
    benchmark.extra_info["backend_searches"] = opt_c["solver.backend.searches"]
    benchmark.extra_info["cache_hits_exact"] = opt_c["solver.cache.hit.exact"]
    benchmark.extra_info["cache_hits_cex"] = opt_c["solver.cache.hit.cex"]
    benchmark.extra_info["cache_hits_model"] = opt_c["solver.cache.hit.model"]
