"""Canonical multisets, trace diffing, and summaries."""

from repro.obs import TraceDiff, canonical_multiset, diff_traces, summarize_trace
from repro.obs.tracetool import canonical_event, render_summary


def _send(src, dest, t, pid, seq, worker=None):
    event = {
        "ev": "packet.send",
        "src": src,
        "dest": dest,
        "t": t,
        "bcast": False,
        "pid": pid,
        "seq": seq,
    }
    if worker is not None:
        event["worker"] = worker
    return event


class TestCanonicalEvent:
    def test_volatile_fields_dropped(self):
        a = _send(0, 1, 10, pid=5, seq=0)
        b = _send(0, 1, 10, pid=99, seq=42, worker=3)
        assert canonical_event(a) == canonical_event(b)

    def test_semantic_fields_kept(self):
        a = _send(0, 1, 10, pid=5, seq=0)
        b = _send(0, 2, 10, pid=5, seq=0)  # different destination
        assert canonical_event(a) != canonical_event(b)

    def test_meta_events_excluded_from_multiset(self):
        events = [
            {"ev": "run.start", "algorithm": "sds", "seq": 0},
            {"ev": "worker.merge", "workers": 2, "seq": 1},
            _send(0, 1, 10, pid=1, seq=2),
        ]
        multiset = canonical_multiset(events)
        assert sum(multiset.values()) == 1


class TestDiffTraces:
    def test_equal_traces(self):
        a = [_send(0, 1, 10, pid=1, seq=0), _send(1, 0, 20, pid=2, seq=1)]
        b = [_send(1, 0, 20, pid=7, seq=0), _send(0, 1, 10, pid=8, seq=1)]
        diff = diff_traces(a, b)
        assert diff.equal
        assert diff.render() == "traces are semantically identical"

    def test_differing_traces_rendered_per_side(self):
        a = [_send(0, 1, 10, pid=1, seq=0)]
        b = [_send(0, 1, 30, pid=1, seq=0)]
        diff = diff_traces(a, b)
        assert not diff.equal
        rendered = diff.render()
        assert "only in A" in rendered and "only in B" in rendered

    def test_multiplicity_matters(self):
        one = [_send(0, 1, 10, pid=1, seq=0)]
        two = one + [_send(0, 1, 10, pid=2, seq=1)]
        diff = diff_traces(one, two)
        assert not diff.equal
        assert sum(diff.only_b.values()) == 1

    def test_trace_diff_direct_construction(self):
        assert TraceDiff(
            canonical_multiset([]), canonical_multiset([])
        ).equal


class TestSummarize:
    def test_summary_aggregates(self):
        events = [
            {"ev": "run.start", "algorithm": "sds", "nodes": 2, "seq": 0},
            _send(0, 1, 10, pid=1, seq=1),
            {
                "ev": "packet.deliver",
                "node": 1,
                "src": 0,
                "t": 11,
                "pid": 1,
                "sid": 4,
                "seq": 2,
                "worker": 0,
            },
        ]
        summary = summarize_trace(events)
        assert summary["events"] == 3
        assert summary["by_type"]["packet.send"] == 1
        assert summary["nodes"] == 1  # only packet.deliver carries "node"
        assert summary["virtual_ms"] == 11
        assert summary["workers"] == [0]

    def test_render_mentions_counts(self):
        summary = summarize_trace([_send(0, 1, 10, pid=1, seq=0)])
        rendered = render_summary(summary)
        assert "packet.send" in rendered
        assert "1 events" in rendered
