"""Syscall abort channel between hosts and the executor.

A :class:`SyscallHost` implementation signals a guest-level misuse (symbolic
timer delay, buffer out of range, ...) by raising :class:`SyscallAbort`; the
executor converts it into an error state on the calling path instead of
crashing the whole SDE run.
"""

from __future__ import annotations

from .errors import ErrorKind, GuestError

__all__ = ["SyscallAbort"]


class SyscallAbort(Exception):
    """Raised by a host to turn the current state into an error state."""

    def __init__(self, message: str, kind: str = ErrorKind.BAD_SYSCALL) -> None:
        super().__init__(message)
        self.error = GuestError(kind, message)
