"""The persistent run store: records, transitions, and the dedup index."""

import json

import pytest

from repro.service.spec import SubmissionSpec
from repro.service.store import JOB_STATES, TERMINAL_STATES, RunStore


def make_spec(seed=0):
    return SubmissionSpec.from_dict(
        {"workload": "flood", "size": 3, "seed": seed}
    )


class TestRecords:
    def test_allocate_persists_a_queued_record(self, tmp_path):
        store = RunStore(tmp_path)
        record = store.allocate(make_spec(), client="c1")
        assert record.state == "queued"
        assert record.digest == make_spec().digest()
        assert record.id.startswith(record.digest[:8])
        loaded = store.load(record.id)
        assert loaded.as_dict() == record.as_dict()

    def test_mark_transitions_and_stamps_finish(self, tmp_path):
        store = RunStore(tmp_path)
        record = store.allocate(make_spec(), client="c1")
        store.mark(record, "running")
        assert store.load(record.id).finished_at is None
        store.mark(record, "done", result={"ok": True})
        loaded = store.load(record.id)
        assert loaded.terminal
        assert loaded.finished_at is not None
        assert loaded.result == {"ok": True}

    def test_mark_rejects_unknown_states(self, tmp_path):
        store = RunStore(tmp_path)
        record = store.allocate(make_spec(), client="c1")
        with pytest.raises(ValueError):
            store.mark(record, "exploded")

    def test_corrupt_record_reads_as_missing(self, tmp_path):
        store = RunStore(tmp_path)
        record = store.allocate(make_spec(), client="c1")
        with open(store.record_path(record.id), "w") as handle:
            handle.write("{ half a json")
        assert store.load(record.id) is None

    def test_path_traversal_ids_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.load("../../etc/passwd") is None
        assert store.load("a/b") is None
        assert store.lookup_digest("../oops") is None

    def test_interrupted_records_are_the_nonterminal_ones(self, tmp_path):
        store = RunStore(tmp_path)
        queued = store.allocate(make_spec(0), client="c")
        running = store.allocate(make_spec(1), client="c")
        done = store.allocate(make_spec(2), client="c")
        store.mark(running, "running")
        store.mark(done, "done")
        interrupted = {r.id for r in store.interrupted_records()}
        assert interrupted == {queued.id, running.id}

    def test_state_constants_are_consistent(self):
        assert TERMINAL_STATES < set(JOB_STATES)
        assert "queued" not in TERMINAL_STATES
        assert "running" not in TERMINAL_STATES


class TestDedupIndex:
    def test_digest_published_once_and_resolves(self, tmp_path):
        store = RunStore(tmp_path)
        record = store.allocate(make_spec(), client="c")
        store.mark(record, "done")
        store.publish_digest(record.digest, record.id)
        assert store.lookup_digest(record.digest) == record.id
        # first writer wins
        other = store.allocate(make_spec(), client="c")
        store.mark(other, "done")
        store.publish_digest(other.digest, other.id)
        assert store.lookup_digest(record.digest) == record.id

    def test_non_done_jobs_never_resolve(self, tmp_path):
        store = RunStore(tmp_path)
        record = store.allocate(make_spec(), client="c")
        store.publish_digest(record.digest, record.id)  # hypothetical bug
        assert store.lookup_digest(record.digest) is None
        store.mark(record, "failed")
        assert store.lookup_digest(record.digest) is None

    def test_unknown_digest_misses(self, tmp_path):
        assert RunStore(tmp_path).lookup_digest("0" * 64) is None


class TestArtifacts:
    def test_report_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        record = store.allocate(make_spec(), client="c")
        with open(store.report_path(record.id), "w") as handle:
            json.dump({"total_states": 24}, handle)
        assert store.load_report(record.id) == {"total_states": 24}
        assert store.load_report("missing") is None

    def test_stats_histogram(self, tmp_path):
        store = RunStore(tmp_path)
        a = store.allocate(make_spec(0), client="c")
        store.allocate(make_spec(1), client="c")
        store.mark(a, "done")
        stats = store.stats()
        assert stats["done"] == 1
        assert stats["queued"] == 1
        assert stats["failed"] == 0
