"""The network medium: who can hear whom, and with what latency.

The paper's network model is ideal ("no node and network failures" at this
layer; failures are injected *above* by :mod:`repro.net.failures`).  The
medium therefore only answers reachability and delay questions:

- a unicast reaches its destination iff destination is a neighbour;
- a broadcast is modelled as a series of unicasts to every neighbour
  (paper, footnote 1);
- delivery latency is a deterministic constant (configurable).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .topology import Topology

__all__ = ["Medium"]


class Medium:
    """Ideal-condition medium over a topology."""

    def __init__(self, topology: Topology, latency_ms: int = 1) -> None:
        if latency_ms < 0:
            raise ValueError("latency cannot be negative")
        self.topology = topology
        self.latency_ms = latency_ms
        self.unicasts_sent = 0
        self.broadcasts_sent = 0
        self.undeliverable = 0
        #: structured event trace (set by the engine); None = off
        self.trace = None

    def unicast_targets(self, src: int, dest: int) -> List[int]:
        """Destination node ids a unicast actually reaches (0 or 1)."""
        self.unicasts_sent += 1
        delivered = self.topology.are_neighbors(src, dest)
        if not delivered:
            self.undeliverable += 1
        if self.trace is not None:
            self.trace.emit(
                "net.unicast", src=src, dest=dest, delivered=delivered
            )
        return [dest] if delivered else []

    def broadcast_targets(self, src: int) -> List[int]:
        """Every neighbour overhears a broadcast (sorted: determinism)."""
        self.broadcasts_sent += 1
        targets = list(self.topology.neighbors(src))
        if self.trace is not None:
            self.trace.emit("net.broadcast", src=src, targets=len(targets))
        return targets

    def delivery_time(self, sent_at: int) -> int:
        return sent_at + self.latency_ms

    def stats(self) -> Tuple[int, int, int]:
        return self.unicasts_sent, self.broadcasts_sent, self.undeliverable

    def stats_dict(self) -> Dict[str, int]:
        """Counter names as they appear in the metrics snapshot."""
        return {
            "unicasts_sent": self.unicasts_sent,
            "broadcasts_sent": self.broadcasts_sent,
            "undeliverable": self.undeliverable,
        }

    def __repr__(self) -> str:
        return f"Medium({self.topology.name}, latency={self.latency_ms}ms)"
