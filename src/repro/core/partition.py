"""Parallelization analysis (the paper's future work, Section VI).

"For the parallelization, we have to identify the sets of states which can
be safely offloaded on other cores and thus can be independently executed."

Two dstates can be executed independently iff no execution state is shared
between them: packets are only ever mapped within a sender's dstates, so
state sets of disjoint dstate groups never interact.

- Under COW every state belongs to exactly one dstate, so every dstate is
  its own partition.
- Under SDS states span several dstates; dstates sharing an actual state
  must stay on one core.  The partition is the connected-component
  decomposition of the dstate/state bipartite graph.
- Under COB every dscenario is independent (embarrassingly parallel — but
  over a state set exponentially larger to begin with).

:func:`partition_groups` computes the components; :func:`speedup_bound`
gives the resulting ideal parallel speedup (total work / largest
partition), which ``benchmarks/bench_partition.py`` reports for the grid
scenarios.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .mapping import StateMapper

__all__ = [
    "Partition",
    "lpt_assign",
    "partition_groups",
    "projected_speedup",
    "schedule_makespan",
    "speedup_bound",
    "steal_split",
]


class Partition:
    """One independently executable set of groups (dstates/dscenarios)."""

    __slots__ = ("group_indices", "state_sids")

    def __init__(self, group_indices: List[int], state_sids: set) -> None:
        self.group_indices = group_indices
        self.state_sids = state_sids

    def group_count(self) -> int:
        return len(self.group_indices)

    def state_count(self) -> int:
        return len(self.state_sids)

    def __repr__(self) -> str:
        return (
            f"Partition({len(self.group_indices)} groups,"
            f" {len(self.state_sids)} states)"
        )


def partition_groups(mapper: StateMapper) -> List[Partition]:
    """Connected components of the group/state sharing graph."""
    groups = list(mapper.groups())
    parent = list(range(len(groups)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    first_group_of_state: Dict[int, int] = {}
    for index, group in enumerate(groups):
        for states in group.values():
            for state in states:
                earlier = first_group_of_state.get(state.sid)
                if earlier is None:
                    first_group_of_state[state.sid] = index
                else:
                    union(earlier, index)

    components: Dict[int, Partition] = {}
    for index, group in enumerate(groups):
        root = find(index)
        partition = components.get(root)
        if partition is None:
            partition = Partition([], set())
            components[root] = partition
        partition.group_indices.append(index)
        for states in group.values():
            partition.state_sids.update(state.sid for state in states)
    return sorted(
        components.values(), key=lambda p: (-p.state_count(), p.group_indices)
    )


def speedup_bound(partitions: List[Partition]) -> float:
    """Ideal parallel speedup: total states / states of the largest part."""
    if not partitions:
        return 1.0
    total = sum(partition.state_count() for partition in partitions)
    largest = max(partition.state_count() for partition in partitions)
    return total / largest if largest else 1.0


def lpt_assign(partitions: List[Partition], cores: int) -> List[List[Partition]]:
    """LPT assignment of partitions to ``cores`` cores.

    Work is approximated by partition state count (states execute
    proportionally many events).  Longest-Processing-Time-first is the
    classic 4/3-approximation.  Returns the actual per-core assignment —
    ``result[c]`` lists the partitions core ``c`` executes — which is what
    :class:`repro.core.parallel.ParallelRunner` ships to worker processes.
    The assignment is deterministic: ties in both partition weight and core
    load break by original partition order / lowest core index.
    """
    if cores < 1:
        raise ValueError("need at least one core")
    assignment: List[List[Partition]] = [[] for _ in range(cores)]
    loads = [0] * cores
    order = sorted(
        range(len(partitions)),
        key=lambda i: (-partitions[i].state_count(), i),
    )
    for index in order:
        laziest = min(range(cores), key=lambda c: (loads[c], c))
        assignment[laziest].append(partitions[index])
        loads[laziest] += partitions[index].state_count()
    return assignment


def steal_split(
    partitions: List[Partition], weight=None
) -> Tuple[List[Partition], List[Partition]]:
    """Split partitions into near-equal-work (kept, stolen) halves.

    LPT into two bins; the first (heavier-or-equal) bin stays with the
    donor.  ``weight`` defaults to the stock state count; work-stealing
    donors pass a *runnable*-state weight instead, so a late-run split
    balances remaining work rather than accumulated terminated states.
    With fewer than two partitions there is nothing to steal and the
    stolen half is empty — callers deny the steal request.
    """
    if len(partitions) < 2:
        return list(partitions), []
    if weight is None:
        def weight(partition: Partition) -> int:
            return partition.state_count()

    order = sorted(
        range(len(partitions)),
        key=lambda i: (-weight(partitions[i]), i),
    )
    kept: List[Partition] = []
    stolen: List[Partition] = []
    loads = [0, 0]
    for index in order:
        side = 0 if loads[0] <= loads[1] else 1
        (kept, stolen)[side].append(partitions[index])
        loads[side] += weight(partitions[index])
    if not stolen:  # all-zero weights degenerate to one bin
        stolen.append(kept.pop())
    return kept, stolen


def schedule_makespan(partitions: List[Partition], cores: int) -> int:
    """LPT makespan of the partitions on ``cores`` cores.

    The makespan of :func:`lpt_assign`'s schedule; it answers the practical
    question behind the paper's future work: *given this run's partitions,
    how long would P cores take?*
    """
    assignment = lpt_assign(partitions, cores)
    loads = [sum(partition.state_count() for partition in core) for core in assignment]
    return max(loads) if loads else 0


def projected_speedup(partitions: List[Partition], cores: int) -> float:
    """Speedup of the LPT schedule vs single-core execution."""
    total = sum(partition.state_count() for partition in partitions)
    makespan = schedule_makespan(partitions, cores)
    return total / makespan if makespan else 1.0
