"""Solver internals: independence partitioning, cache, search budget,
propagation details."""

import pytest

from repro.expr import Interval, add, bv, bvand, eq, mul, ne, ule, ult, var
from repro.solver import (
    CacheStats,
    Infeasible,
    Model,
    SearchBudgetExceeded,
    Solver,
    SolverCache,
    group_for,
    partition,
    propagate,
    search,
)

A, B, C, D = (var(n) for n in "abcd")


class TestPartition:
    def test_disjoint_constraints_split(self):
        groups = partition([eq(A, bv(1)), eq(B, bv(2))])
        assert len(groups) == 2

    def test_shared_variable_joins(self):
        groups = partition([eq(A, bv(1)), ult(A, B), eq(C, bv(3))])
        assert len(groups) == 2
        sizes = sorted(len(g[0]) for g in groups)
        assert sizes == [1, 2]

    def test_transitive_chain_joins_all(self):
        groups = partition([ult(A, B), ult(B, C), ult(C, D)])
        assert len(groups) == 1
        assert len(groups[0][1]) == 4

    def test_ground_constraints_isolated(self):
        from repro.expr import true

        groups = partition([true(), eq(A, bv(1))])
        ground = [g for g in groups if not g[1]]
        assert len(ground) == 1

    def test_group_order_preserved(self):
        constraints = [ult(A, B), eq(A, bv(1)), ule(B, bv(9))]
        groups = partition(constraints)
        assert groups[0][0] == constraints  # same group, input order

    def test_group_for_selects_transitively(self):
        constraints = [ult(A, B), eq(B, C), eq(D, bv(7))]
        selected = group_for([A], constraints)
        assert ult(A, B) in selected
        assert eq(B, C) in selected
        assert eq(D, bv(7)) not in selected

    def test_group_for_unrelated_empty(self):
        assert group_for([D], [eq(A, bv(1))]) == []


class TestCacheDirect:
    def test_exact_hit(self):
        cache = SolverCache()
        key = SolverCache.key([eq(A, bv(1))])
        cache.store(key, Model({"a": 1}))
        hit, result = cache.lookup(key)
        assert hit and result["a"] == 1
        assert cache.stats.exact_hits == 1

    def test_unsat_entry(self):
        cache = SolverCache()
        key = SolverCache.key([eq(A, bv(1)), ne(A, bv(1))])
        cache.store(key, None)
        hit, result = cache.lookup(key)
        assert hit and result is None

    def test_model_reuse(self):
        cache = SolverCache()
        cache.store(SolverCache.key([ult(A, bv(10))]), Model({"a": 3}))
        hit, result = cache.lookup(SolverCache.key([ult(A, bv(100))]))
        assert hit and result["a"] == 3
        assert cache.stats.model_reuse_hits == 1

    def test_miss(self):
        cache = SolverCache()
        hit, _ = cache.lookup(SolverCache.key([eq(A, bv(5))]))
        assert not hit
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = SolverCache(max_entries=2)
        keys = [SolverCache.key([eq(A, bv(i))]) for i in range(3)]
        for key in keys:
            cache.store(key, None)
        assert len(cache) == 2
        hit, _ = cache.lookup(keys[0])
        assert not hit  # evicted

    def test_clear(self):
        cache = SolverCache()
        cache.store(SolverCache.key([eq(A, bv(1))]), None)
        cache.clear()
        assert len(cache) == 0


class TestCacheTierAccounting:
    """Each tier answers its own shape of query and books its own counter
    (the ``solver.cache.hit.*`` metrics the snapshot exports)."""

    def test_cex_subset_proves_superset_unsat(self):
        cache = SolverCache()
        unsat_core = SolverCache.key([eq(A, bv(1)), eq(A, bv(2))])
        cache.store(unsat_core, None)
        superset = SolverCache.key([eq(A, bv(1)), eq(A, bv(2)), ult(B, bv(9))])
        hit, result = cache.lookup(superset, frozenset([A, B]))
        assert hit and result is None
        assert cache.stats.cex_hits == 1 and cache.last_outcome == "cex"

    def test_untriered_cache_has_no_cex_tier(self):
        cache = SolverCache(tiered=False)
        unsat_core = SolverCache.key([eq(A, bv(1)), eq(A, bv(2))])
        cache.store(unsat_core, None)
        superset = SolverCache.key([eq(A, bv(1)), eq(A, bv(2)), ult(B, bv(9))])
        hit, _ = cache.lookup(superset, frozenset([A, B]))
        assert not hit
        assert cache.stats.cex_hits == 0 and cache.stats.misses == 1

    def test_each_tier_books_exactly_one_counter(self):
        cache = SolverCache()
        key = SolverCache.key([ult(A, bv(10))])
        cache.lookup(key, frozenset([A]))  # miss
        cache.store(key, Model({"a": 3}))
        cache.lookup(key, frozenset([A]))  # exact
        wider = SolverCache.key([ult(A, bv(100))])
        cache.lookup(wider, frozenset([A]))  # model reuse
        stats = cache.stats.as_dict()
        assert stats["miss"] == 1
        assert stats["hit.exact"] == 1
        assert stats["hit.model"] == 1
        assert stats["hit.cex"] == 0
        assert stats["stores"] == 1

    def test_model_scan_skips_foreign_variable_models(self):
        # A model assigning variables outside the query must never be
        # reused — it would leak unconstrained assignments into merges.
        cache = SolverCache()
        cache.store(SolverCache.key([eq(B, bv(3))]), Model({"b": 3}))
        hit, _ = cache.lookup(SolverCache.key([ult(A, bv(10))]), frozenset([A]))
        assert not hit

    def test_stats_restore_round_trip(self):
        cache = SolverCache()
        cache.store(SolverCache.key([eq(A, bv(1)), eq(A, bv(2))]), None)
        cache.lookup(
            SolverCache.key([eq(A, bv(1)), eq(A, bv(2)), ult(B, bv(9))]),
            frozenset([A, B]),
        )
        snapshot = cache.stats.as_dict()
        restored = CacheStats.restore(snapshot)
        assert restored.as_dict() == snapshot


class TestSearchBudget:
    def test_budget_exceeded_raises(self):
        # A dense multiplicative constraint over full 32-bit domains with a
        # tiny budget cannot finish.
        constraints = [eq(mul(A, B), bv(0x12345678)), ult(bv(100), A)]
        variables = frozenset([A, B])
        with pytest.raises(SearchBudgetExceeded):
            search(constraints, variables, max_nodes=3)

    def test_generous_budget_succeeds(self):
        model = search([eq(add(A, B), bv(10)), ule(A, bv(4))],
                       frozenset([A, B]), max_nodes=100_000)
        assert model is not None
        assert (model["a"] + model["b"]) & 0xFFFFFFFF == 10


class TestPropagateDirect:
    def test_narrows_equality(self):
        domains = {A: Interval.top(32)}
        propagate([eq(A, bv(5))], domains)
        assert domains[A] == Interval.of(5)

    def test_narrows_chain(self):
        domains = {A: Interval.top(32), B: Interval.top(32)}
        propagate([ult(A, bv(10)), ult(B, A)], domains)
        assert domains[A].hi <= 9
        assert domains[B].hi <= 8

    def test_infeasible_raises(self):
        domains = {A: Interval(0, 3)}
        with pytest.raises(Infeasible):
            propagate([eq(A, bv(9))], domains)

    def test_ne_boundary_shaving(self):
        domains = {A: Interval(5, 10)}
        propagate([ne(A, bv(5)), ne(A, bv(10))], domains)
        assert domains[A] == Interval(6, 9)

    def test_bitmask_lower_bound(self):
        domains = {A: Interval.top(32)}
        propagate([ule(bv(0x100), bvand(A, bv(0xFFF)))], domains)
        assert domains[A].lo >= 0x100


class TestSolverStatistics:
    def test_query_counters(self):
        solver = Solver()
        solver.check([eq(A, bv(1))])
        solver.check([eq(A, bv(1)), ne(A, bv(1))])
        assert solver.queries == 2
        assert solver.sat_results == 1
        assert solver.unsat_results == 1

    def test_entailment_uses_negation(self):
        solver = Solver()
        assert solver.must_be_true([eq(A, bv(3))], ult(A, bv(5)))
        assert not solver.must_be_true([], ult(A, bv(5)))
