"""Trace determinism: repeated runs and any worker count produce the
same canonical event multiset.

This is the observable form of the parallel-equivalence guarantee: the
*semantic* events of a run (forks, sends, deliveries, mapper copies,
solver queries) do not depend on scheduling host, worker count, or cache
state — only volatile bookkeeping fields (ids, seq, worker, cache
outcomes) may differ, and the canonical multiset drops exactly those.
"""

import pytest

from repro import build_engine
from repro.cli import main
from repro.core.parallel import ParallelRunner
from repro.obs import TraceEmitter, diff_traces, validate_trace
from repro.workloads import flood_scenario, grid_scenario

SPLIT_MS = 2000


def _traced_sequential(scenario, algorithm):
    trace = TraceEmitter()
    build_engine(scenario, algorithm, trace=trace).run()
    return trace.events


class TestRepeatedRuns:
    @pytest.mark.parametrize("algorithm", ["cob", "cow", "sds"])
    def test_back_to_back_runs_are_identical(self, algorithm):
        first = _traced_sequential(flood_scenario(3, rounds=2), algorithm)
        second = _traced_sequential(flood_scenario(3, rounds=2), algorithm)
        diff = diff_traces(first, second)
        assert diff.equal, diff.render()

    def test_grid_scenario_also_identical(self):
        first = _traced_sequential(grid_scenario(3, sim_seconds=4), "sds")
        second = _traced_sequential(grid_scenario(3, sim_seconds=4), "sds")
        assert diff_traces(first, second).equal


class TestWorkerCountIndependence:
    @pytest.fixture(scope="class")
    def sequential_events(self):
        return _traced_sequential(grid_scenario(3, sim_seconds=6), "cow")

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_multiset_equals_sequential(
        self, sequential_events, workers
    ):
        trace = TraceEmitter()
        report = ParallelRunner(
            grid_scenario(3, sim_seconds=6),
            "cow",
            workers=workers,
            split_ms=SPLIT_MS,
            trace=trace,
        ).run()
        assert not report.aborted
        assert validate_trace(trace.events) == []
        diff = diff_traces(sequential_events, trace.events)
        assert diff.equal, diff.render(limit=5)

    def test_parallel_trace_carries_worker_meta_events(self):
        trace = TraceEmitter()
        ParallelRunner(
            grid_scenario(3, sim_seconds=6),
            "cow",
            workers=2,
            split_ms=SPLIT_MS,
            trace=trace,
        ).run()
        kinds = {event["ev"] for event in trace.events}
        assert "worker.partition.start" in kinds
        assert "worker.merge" in kinds
        workers_seen = {
            event["worker"] for event in trace.events if "worker" in event
        }
        assert len(workers_seen) >= 2


class TestMetricsDeterminism:
    def test_deterministic_counters_are_worker_count_independent(self):
        reports = {}
        for workers in (1, 2):
            reports[workers] = ParallelRunner(
                grid_scenario(3, sim_seconds=6),
                "cow",
                workers=workers,
                split_ms=SPLIT_MS,
            ).run()
        # Cache hit/miss ratios, backend-solve counts, model shortcuts and
        # simplifier work all legitimately shift with partitioning (they
        # depend on per-process memo/cache state); every other counter
        # must match exactly.
        volatile = {
            "solver.cache.",
            "solver.backend.",
            "solver.shortcuts.",
            "solver.simplify.",
            "phase.",
        }
        for name, value in reports[1].metrics["counters"].items():
            if name == "parallel.workers" or any(
                name.startswith(prefix) for prefix in volatile
            ):
                continue
            assert reports[2].metrics["counters"][name] == value, name


class TestCLIRoundTrip:
    def test_trace_out_diff_and_check_metrics(self, tmp_path, capsys):
        sequential = tmp_path / "seq.jsonl"
        parallel = tmp_path / "par.jsonl"
        metrics = tmp_path / "metrics.json"
        base = ["run", "flood:3", "--sim-seconds", "2"]
        assert main(base + ["--trace-out", str(sequential), "--metrics-out", str(metrics)]) == 0
        assert main(base + ["--workers", "2", "--trace-out", str(parallel)]) == 0
        assert main(["trace", "summary", str(sequential)]) == 0
        assert main(["trace", "diff", str(sequential), str(parallel)]) == 0
        assert main(["trace", "check-metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "semantically identical" in out
        assert "metrics OK" in out

    def test_trace_diff_detects_difference(self, tmp_path):
        small = tmp_path / "small.jsonl"
        large = tmp_path / "large.jsonl"
        assert main(["run", "flood:3", "--sim-seconds", "1", "--trace-out", str(small)]) == 0
        assert main(["run", "flood:3", "--sim-seconds", "3", "--trace-out", str(large)]) == 0
        assert main(["trace", "diff", str(small), str(large)]) == 1

    def test_check_metrics_rejects_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 999}')
        assert main(["trace", "check-metrics", str(bad)]) == 1
