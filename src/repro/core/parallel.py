"""Parallel SDE: execute independent dstate partitions on worker processes.

The paper names this as the key next step (Section VI): "we have to
identify the sets of states which can be safely offloaded on other cores
and thus can be independently executed."  :mod:`repro.core.partition`
identifies those sets — connected components of the dstate/state sharing
graph; this module actually executes them in parallel:

1. run the scenario **sequentially up to a split point** (virtual time or
   event count) so the scenario's communication structure has formed;
2. compute :func:`~repro.core.partition.partition_groups` and assign the
   partitions to worker processes with
   :func:`~repro.core.partition.lpt_assign`;
3. ship each worker a **picklable engine snapshot** of its partitions —
   the mapper payload (``snapshot_groups``), the scheduler order, and the
   id-counter watermarks.  Interned expression nodes re-enter the worker's
   interning table via their ``__reduce__`` hooks, and every worker builds
   its own :class:`~repro.solver.Solver` (and cache);
4. **merge** the per-worker run reports into one
   :class:`ParallelReport` whose totals are deterministic and independent
   of the worker count.

Why the merge is exact: partitions are disjoint in execution states and
cover all of them, transmissions only ever map within the sender's
dstates, and each state executes the identical event sequence no matter
which process hosts it (the scheduler snapshot preserves the sequential
pop order, and solver verdicts are solver-instance independent).  So
state counts, the state census, error states, group counts and mapping
stats all sum to exactly the sequential run's values.  Solver *query*
totals also sum exactly (queries are counted per ``check`` call, cache
hit or not); only cache hit/miss ratios shift with the partitioning.

``workers=1`` exercises the same snapshot → pickle → restore path
in-process, which is what the equivalence tests pin down.
"""

from __future__ import annotations

import itertools
import os
import pickle
import time as _time
from typing import Dict, List, Optional, Sequence, Tuple

from ..net.packet import ensure_packet_ids_above, packet_id_watermark
from ..obs.events import TraceEmitter
from ..obs.metrics import Histogram, report_snapshot
from ..obs.profile import merge_phase_snapshots
from ..vm.state import ensure_state_ids_above, state_id_watermark
from .engine import RunReport, SDEEngine
from .partition import Partition, lpt_assign, partition_groups, projected_speedup
from .resilience import (
    RetryPolicy,
    WorkerFailure,
    WorkerSupervisor,
    chaos_kill_requested,
)
from .stats import (
    PROGRAM_IMAGE_COST_PER_INSTRUCTION,
    Sample,
    process_rss_bytes,
)

__all__ = [
    "ParallelRunner",
    "ParallelReport",
    "WorkerResult",
    "WorkerTask",
    "snapshot_assignment_tasks",
]


class WorkerTask:
    """Everything one worker needs to resume its partitions — picklable.

    All engine value-options travel as one :class:`EngineConfig`
    (already stripped to its worker variant: no checkpointing, no
    invariant re-checks); the remaining slots are the execution frontier.
    """

    __slots__ = (
        "index",
        "algorithm",
        "program",
        "topology",
        "config",
        "mapper_payload",
        "scheduler_entries",
        "clock_now",
        "state_watermark",
        "packet_watermark",
        "broadcast_watermark",
        "trace",
    )

    def __init__(self, **fields) -> None:
        for slot in self.__slots__:
            setattr(self, slot, fields.pop(slot))
        if fields:
            raise TypeError(f"unknown WorkerTask fields {sorted(fields)}")

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)


class WorkerResult:
    """One worker's contribution to the merged report — picklable."""

    __slots__ = (
        "index",
        "runtime_seconds",
        "virtual_ms",
        "events_executed",
        "instructions",
        "total_states",
        "active_states",
        "error_states",
        "group_count",
        "mapping_stats",
        "solver_queries",
        "accounted_bytes",
        "census",
        "aborted",
        "abort_reason",
        "cache_stats",
        "solver_stats",
        "net_stats",
        "reduce_stats",
        "phases",
        "histograms",
        "events",
    )

    def __init__(
        self,
        task: WorkerTask,
        report: RunReport,
        census: Dict[int, int],
        events: Optional[List[dict]] = None,
    ):
        self.index = task.index
        self.runtime_seconds = report.runtime_seconds
        self.virtual_ms = report.virtual_ms
        self.events_executed = report.events_executed
        self.instructions = report.instructions
        self.total_states = report.total_states
        self.active_states = report.active_states
        self.error_states = list(report.error_states)
        self.group_count = report.group_count
        self.mapping_stats = dict(report.mapping_stats)
        self.solver_queries = report.solver_queries
        self.accounted_bytes = report.accounted_bytes
        self.census = dict(census)
        self.aborted = report.aborted
        self.abort_reason = report.abort_reason
        self.cache_stats = report.cache_stats
        self.solver_stats = dict(report.solver_stats)
        self.net_stats = dict(report.net_stats)
        self.reduce_stats = dict(getattr(report, "reduce_stats", {}) or {})
        self.phases = dict(report.phases)
        self.histograms = dict(report.histograms)
        self.events = list(events or [])

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)


def restore_worker_engine(task: WorkerTask) -> SDEEngine:
    """Build a fresh engine hosting the task's partitions, mid-run.

    The engine gets its own solver and a fresh mapper of the run's
    algorithm; the mapper payload re-installs the shipped dstates and the
    scheduler is re-seeded with the captured ``(time, sid)`` entries in
    their sequential pop order.  Id counters are advanced past the parent
    run's watermarks so locally created states/packets never collide with
    shipped ones.
    """
    from .scenario import make_mapper

    mapper = make_mapper(task.algorithm)
    engine = SDEEngine(
        task.program,
        task.topology,
        mapper,
        task.config,
        trace=TraceEmitter(worker=task.index) if task.trace else None,
    )
    engine._started = True  # resuming: the boot states already exist
    mapper.restore_groups(task.mapper_payload)
    for group in mapper.groups():
        for states in group.values():
            for state in states:
                engine.states[state.sid] = state
    engine.clock.advance_to(task.clock_now)
    for event_time, sid in task.scheduler_entries:
        engine.scheduler.push(event_time, sid)
    ensure_state_ids_above(task.state_watermark)
    ensure_packet_ids_above(task.packet_watermark)
    engine._broadcast_ids = itertools.count(task.broadcast_watermark + 1)
    return engine


def snapshot_assignment_tasks(
    engine: SDEEngine, assignment: Sequence[Sequence[Partition]], trace: bool
) -> Tuple[List[WorkerTask], Dict[int, Tuple[Tuple[int, ...], int]]]:
    """Build one :class:`WorkerTask` per non-empty partition bundle.

    The shared snapshot step of every cut: capture the scheduler order and
    id watermarks once, then ship each bundle its mapper payload and the
    scheduler entries of its own states.  Used by :class:`ParallelRunner`
    for the initial split and by :mod:`repro.core.distributed` both for
    the depth cut and for a donor's steal split (which is just another
    cut, taken mid-run inside a worker).  Returns ``(tasks, task_meta)``
    where ``task_meta`` maps task index to ``(group_indices, state_count)``
    for failure records.
    """
    scheduler_entries = engine.scheduler_snapshot()
    state_watermark = state_id_watermark()
    packet_watermark = packet_id_watermark()
    broadcast_watermark = next(engine._broadcast_ids)

    tasks: List[WorkerTask] = []
    task_meta: Dict[int, Tuple[Tuple[int, ...], int]] = {}
    for index, bundle in enumerate(assignment):
        if not bundle:
            continue  # fewer partitions than workers
        group_indices = [
            group_index
            for partition in bundle
            for group_index in partition.group_indices
        ]
        sids = set()
        for partition in bundle:
            sids.update(partition.state_sids)
        task_meta[index] = (tuple(group_indices), len(sids))
        tasks.append(
            WorkerTask(
                index=index,
                algorithm=engine.mapper.name,
                program=engine.program,
                topology=engine.topology,
                config=engine.config.worker_variant(),
                mapper_payload=engine.mapper.snapshot_groups(group_indices),
                scheduler_entries=[
                    entry for entry in scheduler_entries if entry[1] in sids
                ],
                clock_now=engine.clock.now,
                state_watermark=state_watermark,
                packet_watermark=packet_watermark,
                broadcast_watermark=broadcast_watermark,
                trace=trace,
            )
        )
    return tasks, task_meta


def execute_task_bytes(payload: bytes) -> WorkerResult:
    """Unpickle a :class:`WorkerTask`, run it to completion, summarize.

    Module-level (not a method) so multiprocessing's spawn start method
    can import it; the in-process ``workers=1`` path calls it directly
    with the same pickled payload, keeping both paths byte-identical.
    """
    task: WorkerTask = pickle.loads(payload)
    engine = restore_worker_engine(task)
    report = engine.run()
    events = engine.trace.events if engine.trace is not None else []
    return WorkerResult(task, report, engine.state_census(), events)


def _worker_entry(
    payload: bytes, queue, attempt: int = 0, task_index: int = -1
) -> None:  # pragma: no cover - subprocess
    """Subprocess target: run one task, ship the result or a typed failure.

    Failures are shipped as a structured :class:`WorkerFailure` (exception
    type name, message, formatted traceback, partition id) — never a bare
    pickled exception, which would lose the original type and leave the
    supervisor unable to attribute the failure to a partition.

    ``SDE_CHAOS_KILL_WORKER`` (fault injection, CI's ``fault-smoke`` job)
    makes first attempts die unreported, like an OOM kill would — every
    first attempt when set plain-truthy, a seeded per-partition coin when
    set to a fractional probability (docs/RESILIENCE.md).
    """
    if chaos_kill_requested(attempt, token=f"partition:{task_index}"):
        os._exit(137)
    try:
        queue.put(pickle.dumps(execute_task_bytes(payload)))
    except BaseException as exc:
        import traceback

        queue.put(
            pickle.dumps(
                WorkerFailure(
                    task_index=task_index,
                    kind="exception",
                    message=str(exc),
                    exc_type=type(exc).__name__,
                    traceback=traceback.format_exc(),
                )
            )
        )


def _sum_dicts(parts: Sequence[Dict[str, int]]) -> Dict[str, int]:
    merged: Dict[str, int] = {}
    for part in parts:
        for key, value in part.items():
            merged[key] = merged.get(key, 0) + value
    return merged


class ParallelReport:
    """Merged report of a parallel run; duck-types :class:`RunReport`.

    All `RunReport` consumers (``BenchRow``, ``render_table1``,
    ``report_to_dict``/``save_report``) work unchanged on instances of
    this class.  The parallel-only extras are ``workers``,
    ``worker_results``, ``prefix_events``, ``split_ms``/``split_events``,
    ``partition_count`` and ``projected`` (the LPT-projected speedup).
    """

    def __init__(
        self,
        prefix: RunReport,
        prefix_census: Dict[int, int],
        worker_results: List[WorkerResult],
        image_cost: int,
        partitions: List[Partition],
        workers: int,
        split_ms: Optional[int],
        split_events: Optional[int],
        runtime_seconds: float,
        failed_partitions: Sequence[WorkerFailure] = (),
        retries: int = 0,
    ) -> None:
        merge_started = _time.perf_counter()
        self.algorithm = prefix.algorithm
        self.workers = workers
        self.worker_results = list(worker_results)
        self.prefix_events = prefix.events_executed
        self.split_ms = split_ms
        self.split_events = split_events
        self.partition_count = len(partitions)
        self.projected = (projected_speedup(partitions, workers) if partitions else 1.0)
        self.runtime_seconds = runtime_seconds
        # Resilience: partitions that exhausted their retries (only under
        # --allow-partial; otherwise the run raised) and the retry count.
        # A report with failed partitions is *partial*: its totals cover
        # the prefix plus the surviving partitions only.
        self.failed_partitions = list(failed_partitions)
        self.retries = retries
        self.partial = bool(self.failed_partitions)
        self.checkpoints_written = getattr(prefix, "checkpoints_written", 0)
        self.resumed = getattr(prefix, "resumed", False)

        results = self.worker_results
        self.aborted = prefix.aborted or any(w.aborted for w in results)
        self.abort_reason = prefix.abort_reason or next(
            (w.abort_reason for w in results if w.abort_reason), ""
        )
        if results:
            # Every prefix state was shipped to exactly one worker, so the
            # workers' final totals sum to the sequential run's totals.
            self.virtual_ms = max(w.virtual_ms for w in results)
            self.total_states = sum(w.total_states for w in results)
            self.active_states = sum(w.active_states for w in results)
            self.group_count = sum(w.group_count for w in results)
            self.error_states = [state for w in results for state in w.error_states]
            # Each worker's accounting re-charges the shared program image;
            # count it once, like the sequential run does.
            self.accounted_bytes = image_cost + sum(
                w.accounted_bytes - image_cost for w in results
            )
            self.census = {node: 0 for node in prefix_census}
            for worker in results:
                for node, count in worker.census.items():
                    self.census[node] = self.census.get(node, 0) + count
        else:
            # Degenerate: the run finished before the split point.
            self.virtual_ms = prefix.virtual_ms
            self.total_states = prefix.total_states
            self.active_states = prefix.active_states
            self.group_count = prefix.group_count
            self.error_states = list(prefix.error_states)
            self.accounted_bytes = prefix.accounted_bytes
            self.census = dict(prefix_census)
        self.events_executed = prefix.events_executed + sum(
            w.events_executed for w in results
        )
        self.instructions = prefix.instructions + sum(w.instructions for w in results)
        self.solver_queries = prefix.solver_queries + sum(
            w.solver_queries for w in results
        )
        self.mapping_stats = dict(prefix.mapping_stats)
        for worker in results:
            for key, value in worker.mapping_stats.items():
                self.mapping_stats[key] = self.mapping_stats.get(key, 0) + value

        self.samples: List[Sample] = list(prefix.samples)
        self.samples.append(
            Sample(
                wall_seconds=runtime_seconds,
                virtual_ms=self.virtual_ms,
                events_executed=self.events_executed,
                live_states=self.active_states,
                total_states=self.total_states,
                accounted_bytes=self.accounted_bytes,
                rss_bytes=process_rss_bytes(),
                groups=self.group_count,
            )
        )

        # Observability merge: stats sum exactly (same argument as the
        # state totals above); phases/histograms merge across the prefix
        # and every worker, plus a "merge" phase for this method itself.
        self.solver_stats = _sum_dicts(
            [prefix.solver_stats] + [w.solver_stats for w in results]
        )
        self.net_stats = _sum_dicts([prefix.net_stats] + [w.net_stats for w in results])
        self.reduce_stats = _sum_dicts(
            [getattr(prefix, "reduce_stats", {}) or {}]
            + [getattr(w, "reduce_stats", {}) or {} for w in results]
        )
        cache_parts = [
            part
            for part in [prefix.cache_stats] + [w.cache_stats for w in results]
            if part is not None
        ]
        self.cache_stats = _sum_dicts(cache_parts) if cache_parts else None
        histogram_names = set(prefix.histograms)
        for worker in results:
            histogram_names.update(worker.histograms)
        self.histograms = {
            name: Histogram.merge_data(
                [prefix.histograms.get(name)]
                + [w.histograms.get(name) for w in results]
            )
            for name in sorted(histogram_names)
        }
        merge_phase = {
            "merge": {
                "count": 1,
                "seconds": _time.perf_counter() - merge_started,
            }
        }
        self.phases = merge_phase_snapshots(
            [prefix.phases] + [w.phases for w in results] + [merge_phase]
        )
        self.metrics = report_snapshot(self)

    # -- RunReport duck-typing ------------------------------------------------

    def peak_states(self) -> int:
        return max((s.total_states for s in self.samples), default=self.total_states)

    def peak_accounted_bytes(self) -> int:
        return max((s.accounted_bytes for s in self.samples), default=0)

    def state_census(self) -> Dict[int, int]:
        return dict(self.census)

    def summary(self) -> str:
        status = "ABORTED" if self.aborted else "completed"
        split = (
            f"{self.split_ms} ms"
            if self.split_ms is not None
            else f"{self.split_events} events"
        )
        lines = [
            f"[{self.algorithm}] {status} after {self.runtime_seconds:.2f}s"
            f" on {self.workers} workers"
            + (f" ({self.abort_reason})" if self.aborted else ""),
            f"  split point      : {split}"
            f" ({self.prefix_events} prefix events)",
            f"  partitions       : {self.partition_count}"
            f" (projected speedup x{self.projected:.2f})",
            f"  virtual time     : {self.virtual_ms} ms",
            f"  events executed  : {self.events_executed}",
            f"  instructions     : {self.instructions}",
            f"  states (total)   : {self.total_states}",
            f"  dscenarios/dstates: {self.group_count}",
            f"  accounted memory : {self.accounted_bytes / 1e6:.2f} MB",
            f"  error states     : {len(self.error_states)}",
            f"  solver queries   : {self.solver_queries}",
        ]
        if self.retries:
            lines.append(f"  worker retries   : {self.retries}")
        if self.partial:
            lines.append(
                f"  PARTIAL: {len(self.failed_partitions)} partition(s)"
                " failed after retries"
            )
            for failure in self.failed_partitions:
                lines.append(f"    - {failure.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ParallelReport({self.algorithm}, workers={self.workers},"
            f" states={self.total_states}, groups={self.group_count},"
            f" aborted={self.aborted}, partial={self.partial})"
        )


class ParallelRunner:
    """Run one scenario with the split/partition/ship/merge pipeline."""

    def __init__(
        self,
        scenario,
        algorithm: str = "sds",
        workers: int = 2,
        split_ms: Optional[int] = None,
        split_events: Optional[int] = None,
        start_method: Optional[str] = None,
        trace: Optional[TraceEmitter] = None,
        retry_policy: Optional[RetryPolicy] = None,
        max_retries: Optional[int] = None,
        allow_partial: Optional[bool] = None,
        task_timeout_seconds: Optional[float] = None,
        **engine_overrides,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.scenario = scenario
        self.algorithm = algorithm
        self.workers = workers
        policy = retry_policy if retry_policy is not None else RetryPolicy()
        # Convenience overrides so callers (the CLI) don't need to build a
        # full RetryPolicy for the common knobs.
        replacements = {}
        if max_retries is not None:
            replacements["max_retries"] = max_retries
        if allow_partial is not None:
            replacements["allow_partial"] = allow_partial
        if task_timeout_seconds is not None:
            replacements["task_timeout_seconds"] = task_timeout_seconds
        if replacements:
            import dataclasses

            policy = dataclasses.replace(policy, **replacements)
        self.retry_policy = policy
        # Default split: 30% of the horizon — late enough that the scenario's
        # partition structure has formed, early enough that the sequential
        # prefix stays a small Amdahl term.
        if split_ms is None and split_events is None:
            split_ms = scenario.horizon_ms * 3 // 10
        self.split_ms = split_ms
        self.split_events = split_events
        self.start_method = start_method
        self.trace = trace
        self.engine_overrides = engine_overrides

    def run(self) -> ParallelReport:
        from .scenario import build_engine

        started = _time.perf_counter()
        engine = build_engine(
            self.scenario,
            self.algorithm,
            trace=self.trace,
            **self.engine_overrides,
        )
        engine.run_until(split_ms=self.split_ms, split_events=self.split_events)
        engine._sample_and_check_caps(force=True)
        prefix = RunReport(engine)
        prefix_census = engine.state_census()

        tasks = [] if engine.aborted else self._build_tasks(engine)
        partitions = self._partitions if tasks else []
        if tasks and self.trace is not None:
            self.trace.emit(
                "worker.partition.start",
                partitions=len(partitions),
                states=sum(p.state_count() for p in partitions),
            )
        if tasks:
            results, failed, retries = self._execute(tasks)
            results.sort(key=lambda w: w.index)
        else:
            results, failed, retries = [], [], 0
        if self.trace is not None:
            for worker in results:
                self.trace.extend(worker.events)
            self.trace.emit("worker.merge", workers=len(results))
        return ParallelReport(
            prefix=prefix,
            prefix_census=prefix_census,
            worker_results=results,
            image_cost=(
                PROGRAM_IMAGE_COST_PER_INSTRUCTION * len(engine.program.code)
            ),
            partitions=partitions,
            workers=self.workers,
            split_ms=self.split_ms,
            split_events=self.split_events,
            runtime_seconds=_time.perf_counter() - started,
            failed_partitions=failed,
            retries=retries,
        )

    # -- internals -------------------------------------------------------------

    def _build_tasks(self, engine: SDEEngine) -> List[WorkerTask]:
        if not engine.scheduler_snapshot():
            self._partitions = []
            return []  # the run already completed before the split point
        self._partitions = partition_groups(engine.mapper)
        assignment = lpt_assign(self._partitions, self.workers)
        tasks, self._task_meta = snapshot_assignment_tasks(
            engine, assignment, trace=self.trace is not None
        )
        return tasks

    def _execute(
        self, tasks: List[WorkerTask]
    ) -> Tuple[List[WorkerResult], List[WorkerFailure], int]:
        """Run tasks on workers; returns (results, failed partitions, retries).

        Supervised (see :class:`repro.core.resilience.WorkerSupervisor`):
        the result queue is polled with a bounded timeout, dead workers are
        detected via ``Process.is_alive()``/exitcode instead of deadlocking
        a blocking ``queue.get()``, failed partitions are retried with
        deterministic backoff, and completed partitions survive another
        partition's failure.
        """
        payloads = {task.index: pickle.dumps(task) for task in tasks}
        if self.workers == 1 or len(payloads) == 1:
            # Same pickle round-trip, current process: identical semantics,
            # no fork/spawn overhead — and nothing to supervise.
            return (
                [
                    execute_task_bytes(payload)
                    for _, payload in sorted(payloads.items())
                ],
                [],
                0,
            )

        import multiprocessing

        if self.start_method is not None:
            context = multiprocessing.get_context(self.start_method)
        else:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context("spawn")
        supervisor = WorkerSupervisor(
            payloads=payloads,
            context=context,
            entry=_worker_entry,
            run_inline=execute_task_bytes,
            policy=self.retry_policy,
            task_meta=getattr(self, "_task_meta", None),
            trace=self.trace,
        )
        return supervisor.run()
