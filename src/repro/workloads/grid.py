"""The paper's grid scenarios (Section IV-A, Figure 9).

25 / 49 / 100 Contiki nodes in a 5x5 / 7x7 / 10x10 lattice.  After boot, the
node in the bottom-right corner sends a data packet every second to the sink
in the top-left corner; on-path nodes forward hop by hop along the
preconfigured static route; every neighbour overhears each leg.  Nodes on
the data path and their neighbours symbolically drop one packet.  Simulated
time: 10 seconds.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..net.failures import standard_failure_suite
from ..net.topology import Topology
from ..core.scenario import Scenario
from .programs import collect_program, first_collect_packet

__all__ = ["grid_scenario", "PAPER_SIZES", "paper_grid_scenario"]

#: The paper's three scenario sizes (number of nodes -> grid side).
PAPER_SIZES = {25: 5, 49: 7, 100: 10}


def grid_scenario(
    side: int,
    sim_seconds: int = 10,
    send_period_ms: int = 1000,
    drop_budget: int = 1,
    drop_any_packet: bool = False,
    extra_sources: Tuple[int, ...] = (),
    max_states: Optional[int] = None,
    max_accounted_bytes: Optional[int] = None,
    max_wall_seconds: Optional[float] = None,
    sample_every_events: int = 64,
) -> Scenario:
    """Build a side x side grid collection scenario.

    The sink is node 0 (top-left); the source is node side*side-1
    (bottom-right).  Symbolic packet drops are configured on the data path
    and its neighbours, exactly as in the paper's test setup.
    """
    topology = Topology.grid(side)
    node_count = topology.node_count
    sink = 0
    source = node_count - 1
    sources = [source] + [s for s in extra_sources if s != source]
    drop_set = set()
    for src in sources:
        on_path, path_neighbors, _bystanders = topology.path_roles(src, sink)
        drop_set |= (on_path | path_neighbors)
    drop_nodes = sorted(drop_set - set(sources))
    next_hops = topology.next_hop_table(sink)
    sends = max(1, sim_seconds * 1000 // send_period_ms - 1)

    presets: Dict[str, object] = {
        "rime_next_hop": {node: hop for node, hop in next_hops.items()},
        "rime_sink": sink,
        "rime_source": source,
        "send_period": send_period_ms,
        "sends_left": {src: sends for src in sources},
    }

    return Scenario(
        name=f"grid-{side}x{side}",
        program=collect_program(),
        topology=topology,
        horizon_ms=sim_seconds * 1000,
        failure_factory=lambda: standard_failure_suite(
            drop_nodes,
            budget=drop_budget,
            packet_filter=None if drop_any_packet else first_collect_packet,
        ),
        preset_globals=presets,
        latency_ms=1,
        max_states=max_states,
        max_accounted_bytes=max_accounted_bytes,
        max_wall_seconds=max_wall_seconds,
        sample_every_events=sample_every_events,
    )


def paper_grid_scenario(nodes: int, **overrides) -> Scenario:
    """One of the paper's three scenarios by node count (25/49/100)."""
    try:
        side = PAPER_SIZES[nodes]
    except KeyError:
        raise ValueError(
            f"paper scenarios have 25/49/100 nodes, not {nodes}"
        ) from None
    return grid_scenario(side, **overrides)
