"""The docs-lint tool and the bench trend checker's warning path.

``tools/docs_lint.py`` runs in CI as its own job; running it here too
means a stale flag mention fails the plain test suite before a PR ever
reaches CI.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
sys.path.insert(0, REPO_ROOT)

import docs_lint  # noqa: E402

from benchmarks.check_trend import check_trend  # noqa: E402


class TestDocsLint:
    def test_repo_docs_are_clean(self):
        failures, lines = docs_lint.run_lint()
        assert not failures, "\n".join(failures + lines)

    def test_cli_flags_cover_known_surface(self):
        flags = docs_lint.collect_cli_flags()
        assert "--symmetry" in flags
        assert "--por" in flags
        assert "--workers" in flags
        assert "--help" not in flags
        assert flags["--por"] == ["repro run"]

    def test_phantom_flag_detection(self, tmp_path):
        doc = tmp_path / "FAKE.md"
        doc.write_text("Use `repro run --warp-speed` for fast runs.\n")
        docs = docs_lint.collect_doc_flags([str(doc)])
        assert "--warp-speed" in docs
        assert docs["--warp-speed"][0].endswith("FAKE.md:1")

    def test_external_allowlist_is_not_part_of_cli(self):
        flags = docs_lint.collect_cli_flags()
        assert not (docs_lint.EXTERNAL_FLAGS & set(flags))


class TestTrendWarnings:
    BASELINE = {
        "gates": {"speedup": {"direction": "higher", "value": 2.0}},
        "recorded": {"speedup": 2.0, "wall_clock": 1.5},
    }

    def test_recorded_keys_stay_ungated(self):
        fresh = {"speedup": 2.1, "wall_clock": 1.4}
        failures, lines = check_trend(fresh, self.BASELINE)
        assert not failures
        assert any("(ungated)" in line and "wall_clock" in line for line in lines)
        assert not any("WARNING" in line for line in lines)

    def test_unknown_fresh_key_warns(self):
        fresh = {"speedup": 2.1, "brand_new_metric": 7}
        failures, lines = check_trend(fresh, self.BASELINE)
        assert not failures  # a warning, not a failure
        warned = [line for line in lines if "WARNING" in line]
        assert len(warned) == 1
        assert "brand_new_metric" in warned[0]

    def test_gated_regression_still_fails(self):
        fresh = {"speedup": 1.0}
        failures, _ = check_trend(fresh, self.BASELINE)
        assert failures
