"""SDE — Scalable Symbolic Execution of Distributed Systems.

A full reproduction of Sasnauskas et al., ICDCS 2011: the COB, COW and SDS
state-mapping algorithms for symbolic distributed execution, together with
every substrate they need — a symbolic bitvector expression layer and
constraint solver, a C-like guest language compiled to a symbolic bytecode
VM, a discrete-event network simulation with symbolic failure injection, and
a Contiki/Rime-like sensornet OS library.

The stable public surface lives in :mod:`repro.api`; the top-level
re-exports below remain for backwards compatibility.

Quickstart::

    from repro.api import Scenario, run_scenario

    scenario = Scenario.grid(5, algorithm="sds")
    report = run_scenario(scenario)
    print(report.summary())

Subpackage map:

- :mod:`repro.expr`     — symbolic expressions (bitvectors + booleans)
- :mod:`repro.solver`   — constraint solving, caching, models
- :mod:`repro.lang`     — the NSL guest language (lexer/parser/compiler)
- :mod:`repro.vm`       — the symbolic virtual machine
- :mod:`repro.sim`      — discrete-event simulation primitives
- :mod:`repro.net`      — topologies, packets, failure models
- :mod:`repro.oslib`    — Contiki-like node OS + Rime-like stack
- :mod:`repro.core`     — the paper's contribution: SDE state mapping
- :mod:`repro.workloads`— the paper's evaluation scenarios
- :mod:`repro.bench`    — Table I / Figure 10 regeneration harness
"""

__version__ = "1.0.0"

from .core import (  # noqa: F401,E402
    ALGORITHMS,
    COBMapper,
    COWMapper,
    ParallelReport,
    ParallelRunner,
    RunReport,
    Scenario,
    SDEEngine,
    SDSMapper,
    StateMapper,
    build_engine,
    make_mapper,
    run_scenario,
)
from .net import Topology  # noqa: F401,E402

__all__ = [
    "__version__",
    "ALGORITHMS",
    "COBMapper",
    "COWMapper",
    "ParallelReport",
    "ParallelRunner",
    "SDSMapper",
    "StateMapper",
    "SDEEngine",
    "RunReport",
    "Scenario",
    "Topology",
    "build_engine",
    "make_mapper",
    "run_scenario",
]
