"""Guest-program error classification.

When symbolic execution drives a state into a defect, the state is not an
exception in the host — it becomes an *error state* carrying a
:class:`GuestError`.  The engine collects error states and the test-case
generator solves their path constraints into concrete reproducing inputs,
exactly like KLEE's ``.err`` outputs.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["GuestError", "ErrorKind"]


class ErrorKind:
    """Symbolic-execution-detected defect categories."""

    ASSERTION = "assertion-failure"
    OUT_OF_BOUNDS = "out-of-bounds-access"
    DIVISION_BY_ZERO = "division-by-zero"
    EXPLICIT_FAIL = "explicit-fail"
    STEP_LIMIT = "step-limit-exceeded"
    STACK_OVERFLOW = "call-stack-overflow"
    BAD_SYSCALL = "invalid-syscall-arguments"

    ALL = (
        ASSERTION,
        OUT_OF_BOUNDS,
        DIVISION_BY_ZERO,
        EXPLICIT_FAIL,
        STEP_LIMIT,
        STACK_OVERFLOW,
        BAD_SYSCALL,
    )


class GuestError:
    """A defect observed in one execution state."""

    __slots__ = ("kind", "message", "line", "code")

    def __init__(
        self,
        kind: str,
        message: str,
        line: int = 0,
        code: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.message = message
        self.line = line
        self.code = code

    def __repr__(self) -> str:
        location = f" (line {self.line})" if self.line else ""
        return f"GuestError[{self.kind}] {self.message}{location}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GuestError):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.message == other.message
            and self.line == other.line
            and self.code == other.code
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.message, self.line, self.code))
