"""Multi-flow grid scenarios (two sources converging on one sink)."""


from repro import build_engine
from repro.core import dscenario_fingerprints
from repro.workloads import grid_scenario


class TestMultiFlow:
    def test_two_sources_deliver(self):
        # 3x3 grid: default source 8 (corner) plus node 6 (other corner).
        scenario = grid_scenario(3, sim_seconds=3, extra_sources=(6,))
        scenario.failure_factory = tuple  # concrete run first
        engine = build_engine(scenario, "sds")
        engine.run()
        program = engine.program
        (sink_state,) = engine.states_of_node(0)
        delivered = sink_state.memory[program.global_address("delivered")]
        # Two sources x 2 sends each.
        assert delivered == 4

    def test_sends_left_preset_for_both(self):
        scenario = grid_scenario(3, sim_seconds=3, extra_sources=(6,))
        assert set(scenario.preset_globals["sends_left"]) == {8, 6}

    def test_drop_nodes_cover_both_paths(self):
        single = grid_scenario(4, sim_seconds=3)
        multi = grid_scenario(4, sim_seconds=3, extra_sources=(12,))
        single_drops = set(single.failure_factory()[0].nodes)
        multi_drops = set(multi.failure_factory()[0].nodes)
        assert multi_drops >= single_drops - {12}

    def test_equivalence_with_two_flows(self):
        fingerprints = {}
        states = {}
        for algorithm in ("cob", "cow", "sds"):
            engine = build_engine(
                grid_scenario(3, sim_seconds=3, extra_sources=(6,)),
                algorithm,
                check_invariants=True,
            )
            report = engine.run()
            assert not report.aborted
            fingerprints[algorithm] = dscenario_fingerprints(
                engine.mapper, engine.packets
            )
            states[algorithm] = report.total_states
        assert (
            fingerprints["cob"]
            == fingerprints["cow"]
            == fingerprints["sds"]
        )
        assert states["cob"] >= states["cow"] >= states["sds"]

    def test_more_flows_more_states(self):
        single = build_engine(grid_scenario(3, sim_seconds=3), "sds")
        single_report = single.run()
        multi = build_engine(
            grid_scenario(3, sim_seconds=3, extra_sources=(6,)), "sds"
        )
        multi_report = multi.run()
        assert multi_report.total_states > single_report.total_states
