"""Optimizations must be semantically invisible.

The acceptance bar for every performance tier — the solver
query-optimization pipeline, opcode fusion (superinstructions) and
loop-increment constraint reuse: for every mapping algorithm, the
canonical trace multiset of a run with an optimization on is identical
to a run with it off.  Memoized models, verdict memos, canonicalization,
the counterexample cache, fused dispatch and delta re-simplification may
only change *how* a result is reached, never which result — and never a
fork, a send, a delivery or a mapper copy downstream of one.

Two workload shapes: the paper's flood/dissemination scenarios (failure
branching decided at the engine level) and a symbolic-data program whose
every receive branches on a ``symbolic()`` reading — the shape that
actually exercises every tier of the pipeline.  The symbolic program
deliberately contains the compare+branch and load/inc/store patterns the
fuser targets (``CMP_JZ``/``CMP_JNZ``/``INC_MEM``).
"""

import pytest

from repro.api import Scenario, Topology, TraceEmitter, build_engine
from repro.obs import diff_traces
from repro.workloads import dissemination_scenario, flood_scenario

SYMBOLIC_READINGS = """
var seen;
func on_boot() { timer_set(0, 40 + node_id() * 7); }
func on_timer(tid) {
    var buf[1];
    buf[0] = symbolic("reading", 8);
    bc_send(buf, 1);
}
func on_recv(src, len) {
    var v = recv_byte(0);
    if (v > 64) { v -= 64; }
    if (v > 32) { seen += 1; } else { seen += 2; }
}
"""

#: Deterministic counters both sides of every A/B pair must agree on.
SEMANTIC_COUNTERS = (
    "states.total",
    "run.events_executed",
    "run.instructions",
    "solver.queries",
    "solver.sat_results",
    "solver.unsat_results",
)


def _traced(scenario, algorithm, **overrides):
    trace = TraceEmitter()
    report = build_engine(scenario, algorithm, trace=trace, **overrides).run()
    return trace.events, report


def _assert_equivalent(scenario, algorithm, baseline, candidate):
    """Trace multisets and deterministic counters must match exactly."""
    base_events, base = _traced(scenario, algorithm, **baseline)
    cand_events, cand = _traced(scenario, algorithm, **candidate)
    diff = diff_traces(base_events, cand_events)
    assert diff.equal, diff.render(limit=5)
    base_counters = base.metrics["counters"]
    cand_counters = cand.metrics["counters"]
    for name in SEMANTIC_COUNTERS:
        assert cand_counters[name] == base_counters[name], name


def _scenarios():
    return [
        ("flood", flood_scenario(3, rounds=2)),
        (
            "dissemination",
            dissemination_scenario(Topology.line(3), rounds=2),
        ),
        (
            "symbolic",
            Scenario(
                name="symbolic-readings",
                program=SYMBOLIC_READINGS,
                topology=Topology.line(3),
                horizon_ms=200,
            ),
        ),
    ]


SCENARIOS = _scenarios()
SCENARIO_IDS = [name for name, _ in SCENARIOS]
ALGORITHMS = ["cob", "cow", "sds"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("scenario", [s for _, s in SCENARIOS], ids=SCENARIO_IDS)
def test_solver_optimizer_invisible(scenario, algorithm):
    _assert_equivalent(
        scenario,
        algorithm,
        baseline=dict(solver_optimize=False),
        candidate=dict(solver_optimize=True),
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("scenario", [s for _, s in SCENARIOS], ids=SCENARIO_IDS)
def test_opcode_fusion_invisible(scenario, algorithm):
    """Superinstruction dispatch == base-ISA dispatch, per trace multiset."""
    _assert_equivalent(
        scenario,
        algorithm,
        baseline=dict(fuse_ops=False),
        candidate=dict(fuse_ops=True),
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("scenario", [s for _, s in SCENARIOS], ids=SCENARIO_IDS)
def test_loop_reuse_invisible(scenario, algorithm):
    """Delta canonicalization + model memos never flip a verdict."""
    _assert_equivalent(
        scenario,
        algorithm,
        baseline=dict(loop_reuse=False),
        candidate=dict(loop_reuse=True),
    )


#: Symbolic readings guarded by assertions, so reduction runs report
#: real violations for the verdict gate below.
GUARDED_READINGS = """
var seen;
func on_boot() { timer_set(0, 40 + node_id() * 7); }
func on_timer(tid) {
    var buf[1];
    buf[0] = symbolic("reading", 8);
    bc_send(buf, 1);
}
func on_recv(src, len) {
    var v = recv_byte(0);
    assert(v < 200, 7);
    seen += 1;
}
"""

REDUCTION_TOPOLOGIES = [
    Topology.full_mesh(3),
    Topology.line(3),
    Topology.ring(4),
    Topology.grid(2, 2),
]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize(
    "topology", REDUCTION_TOPOLOGIES, ids=lambda t: t.name
)
def test_reduction_preserves_verdicts(topology, algorithm):
    """Symmetry + POR prune states, never reported violations.

    Unlike the solver/interpreter optimizations above, reduction is
    *not* trace-invisible — it exists to skip work — so the gate is the
    canonical violation set (``repro.core.reduce.canonical_violations``):
    reduction on vs. off must report the same bugs, per (kind, message,
    line, code, node orbit).
    """
    from repro.core.reduce import canonical_violations

    scenario = Scenario(
        name=f"guarded-{topology.name}",
        program=GUARDED_READINGS,
        topology=topology,
        horizon_ms=300,
    )
    off = build_engine(scenario, algorithm).run()
    on = build_engine(scenario, algorithm, symmetry=True, por=True).run()
    verdicts_off = canonical_violations(off, topology)
    assert verdicts_off, "gate is vacuous: scenario reported no violations"
    assert canonical_violations(on, topology) == verdicts_off
    assert on.total_states <= off.total_states


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_everything_off_equals_everything_on(algorithm):
    """The full PR 4-era configuration vs all optimizations at once."""
    scenario = Scenario(
        name="symbolic-readings",
        program=SYMBOLIC_READINGS,
        topology=Topology.line(3),
        horizon_ms=200,
    )
    _assert_equivalent(
        scenario,
        algorithm,
        baseline=dict(
            solver_optimize=False, fuse_ops=False, loop_reuse=False
        ),
        candidate=dict(
            solver_optimize=True, fuse_ops=True, loop_reuse=True
        ),
    )
