"""Persistent, parent-sharing path conditions (``ConstraintSet``).

Every fork in the symbolic VM used to copy the parent's constraint tuple
and every solver query re-normalized and re-partitioned the whole list
from scratch.  A :class:`ConstraintSet` is instead a cons cell — parent
pointer plus one appended conjunct — so a fork shares the entire prefix
with its parent and, crucially, shares the parent's *memoized analysis*:

- :meth:`canonical` — the simplified conjunct tuple (see
  :mod:`repro.solver.simplify`), extended incrementally: the new
  conjunct is rewritten under the parent's equality environment, then
  either folds away, contradicts (UNSAT without any search), appends,
  or — when it introduces a new implied equality — triggers one full
  re-simplification of the inherited canonical form;
- :meth:`partition_groups` — the independence partition of the
  canonical form, maintained by merging the appended conjunct into the
  variable-sharing groups rather than re-running union-find;
- a cached :class:`~repro.solver.model.Model` satisfying the whole set,
  propagated from parent to child at :meth:`extended` time whenever the
  parent's model already satisfies the new conjunct (this is what makes
  one arm of every branch-feasibility pair free).

Identity: two sets are equal iff their *raw* conjunct tuples are equal
(expressions are interned, so this is cheap), which keeps cross-run
duplicate detection (``config_key`` / ``logical_state_config``) working
exactly as it did for plain tuples.  Pickling flattens to the raw tuple;
memos are per-process and rebuilt lazily after transport.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..expr.ast import BoolAnd, BoolConst, BoolExpr, BVVar
from ..expr.builder import not_
from .model import Model
from .simplify import simplify_conjuncts, substitute

__all__ = ["ConstraintSet", "EMPTY", "as_constraint_set"]

# Sentinel distinct from None: a memoized canonical form of None means
# "provably unsatisfiable", so "not computed yet" needs its own marker.
_UNSET = object()

#: ``(conjuncts, variables)`` — one independence group of the canonical form.
Group = Tuple[Tuple[BoolExpr, ...], FrozenSet[BVVar]]


class ConstraintSet:
    """One node of a persistent path condition (see module docstring).

    Build instances with :data:`EMPTY` ``.extended(conjunct)`` or
    :func:`as_constraint_set`; the constructor is internal.  The public
    surface mimics the tuple the VM used to store: iteration, ``len``,
    ``in``, indexing and content-based equality/hash all speak the *raw*
    (as-added) conjuncts, while the solver consumes the memoized
    canonical views.
    """

    __slots__ = (
        "parent",
        "conjunct",
        "_size",
        "_raw",
        "_canonical",
        "_eqs",
        "_digest",
        "_groups",
        "_appended",
        "_model",
        "_verdicts",
        "_hash",
    )

    def __init__(
        self, parent: Optional["ConstraintSet"], conjunct: Optional[BoolExpr]
    ) -> None:
        self.parent = parent
        self.conjunct = conjunct
        if parent is None:  # the empty root
            self._size = 0
            self._raw: Optional[Tuple[BoolExpr, ...]] = ()
            self._canonical = ()
            self._eqs: Optional[Dict[object, object]] = {}
            self._digest: Optional[FrozenSet[BoolExpr]] = frozenset()
            self._groups: Optional[List[Group]] = []
        else:
            self._size = parent._size + 1
            self._raw = None
            self._canonical = _UNSET
            self._eqs = None
            self._digest = None
            self._groups = None
        self._appended: Optional[BoolExpr] = None
        self._model: Optional[Model] = None
        self._verdicts: Optional[Dict[object, Optional[Model]]] = None
        self._hash: Optional[int] = None

    # -- construction --------------------------------------------------------

    def extended(self, conjunct: BoolExpr) -> "ConstraintSet":
        """The set plus one conjunct; propagates a still-valid model.

        The satisfaction check memoizes per-conjunct verdicts on the
        model: loop iterations re-extend with structurally repeating
        conjuncts, and sibling forks re-test the same conjunct against
        the same inherited model.  Semantically invisible — the verdict
        is deterministic — so it is not gated behind ``loop_reuse``.
        """
        child = ConstraintSet(self, conjunct)
        model = self._model
        if model is not None and model.satisfies((conjunct,), memo=True):
            child._model = model
        return child

    # -- tuple-compatible raw view -------------------------------------------

    def raw(self) -> Tuple[BoolExpr, ...]:
        """The as-added conjuncts, oldest first (memoized per node)."""
        raw = self._raw
        if raw is None:
            pending: List[ConstraintSet] = []
            node = self
            while node._raw is None:
                pending.append(node)
                node = node.parent
            raw = node._raw
            for entry in reversed(pending):
                raw = raw + (entry.conjunct,)
                entry._raw = raw
            return self._raw
        return raw

    def __iter__(self) -> Iterator[BoolExpr]:
        return iter(self.raw())

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, item: object) -> bool:
        return item in self.raw()

    def __getitem__(self, index):
        return self.raw()[index]

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if isinstance(other, ConstraintSet):
            return self._size == other._size and self.raw() == other.raw()
        if isinstance(other, tuple):
            return self.raw() == other
        return NotImplemented

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = self._hash = hash(self.raw())
        return value

    def __repr__(self) -> str:
        return f"ConstraintSet({self._size} conjuncts)"

    def __reduce__(self):
        # Flatten: memos and parent links are per-process; the receiving
        # side re-interns the expressions and rebuilds analysis lazily.
        return (_restore, (self.raw(),))

    # -- memoized model -------------------------------------------------------

    def cached_model(self) -> Optional[Model]:
        """A model known to satisfy this whole set, if one is memoized."""
        return self._model

    def seed_model(self, model: Model) -> None:
        """Memoize a model the solver proved satisfies this set.

        First writer wins: any memoized model already satisfies the whole
        set, and keeping it stable is what makes branch pairs cheap — the
        model decides one arm of every pair, so that arm stays a shortcut
        across all future queries *and* propagates to the children forked
        along it.  Overwriting with the latest solve's model would make
        the free arm flap between queries and strand forked children
        without a model.
        """
        if self._model is None:
            self._model = model

    # -- memoized query verdicts ----------------------------------------------

    def cached_verdict(
        self, extra: Optional[BoolExpr]
    ) -> Tuple[bool, Optional[Model]]:
        """``(hit, result)`` of a memoized solve of *this set plus extra*.

        Symbolic execution re-issues identical queries constantly: forked
        siblings share the ConstraintSet node and probe the same branch
        conditions, and indexed-access scans ask the same equalities per
        delivery.  Interned expressions make ``extra`` a perfect dict key,
        so the whole pipeline collapses to one lookup on a repeat.  The
        result is a model for SAT (the same model every time — verdicts
        are never recomputed) or ``None`` for UNSAT.
        """
        verdicts = self._verdicts
        if verdicts is None or extra not in verdicts:
            return False, None
        return True, verdicts[extra]

    def memo_verdict(
        self, extra: Optional[BoolExpr], result: Optional[Model]
    ) -> None:
        """Memoize a solve outcome for :meth:`cached_verdict`."""
        if self._verdicts is None:
            self._verdicts = {}
        self._verdicts[extra] = result

    # -- canonical view -------------------------------------------------------

    def canonical(
        self, stats=None, delta: bool = False
    ) -> Optional[Tuple[BoolExpr, ...]]:
        """The simplified conjunct tuple; ``None`` = provably UNSAT.

        Computed once per node by extending the parent's canonical form
        (see module docstring); ``stats`` is an optional mutable mapping
        collecting ``simplify.*`` counter increments.

        ``delta=True`` (the loop-increment-reuse path): when the new
        conjunct introduces an implied equality, only the inherited
        conjuncts sharing variables with it are re-simplified — a delta
        against the parent's memoized form instead of a full rerun.
        Sound because the rewrite rules are variable-local: conjuncts
        disjoint from the equality are fixpoints of the substitution,
        so the partial form is equisatisfiable with the full one (a
        cross-group contradiction is still found by the backend after
        the shared-variable groups merge).
        """
        if self._canonical is not _UNSET:
            return self._canonical
        pending: List[ConstraintSet] = []
        node = self
        while node._canonical is _UNSET:
            pending.append(node)
            node = node.parent
        for entry in reversed(pending):
            entry._extend_canonical(stats, delta)
        return self._canonical

    def _extend_canonical(self, stats, delta: bool = False) -> None:
        parent = self.parent
        base = parent._canonical
        if base is None:  # already UNSAT: stays UNSAT
            self._canonical = None
            self._eqs = None
            self._digest = frozenset()
            return
        if stats is not None:
            stats["runs"] = stats.get("runs", 0) + 1
        eqs = parent._eqs
        conjunct = self.conjunct
        if eqs:
            conjunct = substitute(conjunct, eqs)
        if isinstance(conjunct, BoolConst):
            if conjunct.value:
                self._adopt_parent_canonical()
            else:
                self._mark_unsat(stats)
            return
        if not isinstance(conjunct, BoolAnd):
            digest = parent.digest()
            if conjunct in digest:
                self._adopt_parent_canonical()
                return
            if not_(conjunct) in digest:
                self._mark_unsat(stats)
                return
            if _introduces_equality(conjunct, eqs):
                if delta:
                    self._resimplify_delta(base, conjunct, stats)
                else:
                    self._resimplify(base + (conjunct,), stats)
                return
            # Plain append: canonical grows by exactly this conjunct.
            self._canonical = base + (conjunct,)
            self._eqs = eqs
            self._digest = digest | {conjunct}
            self._appended = conjunct
            return
        # The substituted conjunct flattened into several: fall back to a
        # full simplification of the combined tuple.
        self._resimplify(base + conjunct.operands, stats)

    def _adopt_parent_canonical(self) -> None:
        parent = self.parent
        self._canonical = parent._canonical
        self._eqs = parent._eqs
        self._digest = parent._digest
        self._groups = parent._groups  # identical canonical ⇒ same groups

    def _mark_unsat(self, stats) -> None:
        self._canonical = None
        self._eqs = None
        self._digest = frozenset()
        self._groups = []
        if stats is not None:
            stats["contradictions"] = stats.get("contradictions", 0) + 1

    def _resimplify(self, conjuncts: Tuple[BoolExpr, ...], stats) -> None:
        simplified = simplify_conjuncts(conjuncts)
        if stats is not None:
            stats["resimplify"] = stats.get("resimplify", 0) + 1
            if simplified is not None:
                removed = len(conjuncts) - len(simplified)
                if removed > 0:
                    stats["removed"] = stats.get("removed", 0) + removed
        if simplified is None:
            self._mark_unsat(stats)
            return
        self._canonical = simplified
        self._eqs = _equality_env(simplified)
        self._digest = frozenset(simplified)

    def _resimplify_delta(
        self, base: Tuple[BoolExpr, ...], conjunct: BoolExpr, stats
    ) -> None:
        """Re-simplify only the conjuncts sharing variables with the new
        equality; everything else is carried over verbatim (see
        :meth:`canonical` for the soundness argument)."""
        variables = conjunct.variables()
        touched: List[BoolExpr] = []
        untouched: List[BoolExpr] = []
        for prior in base:
            if prior.variables() & variables:
                touched.append(prior)
            else:
                untouched.append(prior)
        touched.append(conjunct)
        simplified = simplify_conjuncts(tuple(touched))
        if stats is not None:
            stats["delta"] = stats.get("delta", 0) + 1
            if simplified is not None:
                removed = len(touched) - len(simplified)
                if removed > 0:
                    stats["removed"] = stats.get("removed", 0) + removed
        if simplified is None:
            self._mark_unsat(stats)
            return
        combined = tuple(untouched) + simplified
        self._canonical = combined
        self._eqs = _equality_env(combined)
        self._digest = frozenset(combined)

    def digest(self) -> FrozenSet[BoolExpr]:
        """Canonical conjuncts as a set (empty when UNSAT)."""
        if self._digest is None:
            self.canonical()
            if self._digest is None:
                self._digest = (
                    frozenset()
                    if self._canonical is None
                    else frozenset(self._canonical)
                )
        return self._digest

    def equality_env(self):
        """The implied-equality substitution of the canonical form."""
        self.canonical()
        return self._eqs

    # -- independence partition ----------------------------------------------

    def partition_groups(self, stats=None) -> List[Group]:
        """Independence groups of the canonical form (memoized).

        Groups are immutable ``(conjuncts, variables)`` pairs, safe to
        share between parent and child nodes.  An empty canonical form
        (or UNSAT) yields no groups.
        """
        if self._groups is not None:
            return self._groups
        canonical = self.canonical(stats)
        if canonical is None or not canonical:
            self._groups = []
            return self._groups
        parent = self.parent
        if (
            self._appended is not None
            and parent is not None
            and parent._groups is not None
        ):
            self._groups = merge_into_groups(parent._groups, self._appended)
        else:
            self._groups = groups_of(canonical)
        return self._groups


def _introduces_equality(conjunct: BoolExpr, eqs) -> bool:
    from .simplify import _var_eq_const

    pair = _var_eq_const(conjunct)
    if pair is None:
        return False
    variable, _ = pair
    return not eqs or variable not in eqs


def _equality_env(conjuncts: Tuple[BoolExpr, ...]):
    from .simplify import _var_eq_const

    env = {}
    for conjunct in conjuncts:
        pair = _var_eq_const(conjunct)
        if pair is not None:
            env[pair[0]] = pair[1]
    return env


def groups_of(conjuncts: Tuple[BoolExpr, ...]) -> List[Group]:
    """Independence partition as immutable groups (union-find order)."""
    from .independence import partition

    return [
        (tuple(group), variables)
        for group, variables in partition(list(conjuncts))
    ]


def merge_into_groups(groups: List[Group], conjunct: BoolExpr) -> List[Group]:
    """A new partition with ``conjunct`` merged into its variable peers.

    Groups that share no variable with ``conjunct`` are reused as-is (and
    keep their memoized cache keys warm); all sharing groups collapse
    into one, at the position of the first of them.
    """
    variables = conjunct.variables()
    if not variables:
        return list(groups) + [((conjunct,), frozenset())]
    merged: List[Group] = []
    absorbed: List[Group] = []
    slot = -1
    for group in groups:
        if group[1] & variables:
            if slot < 0:
                slot = len(merged)
                merged.append(group)  # placeholder, replaced below
            absorbed.append(group)
        else:
            merged.append(group)
    if slot < 0:
        return list(groups) + [((conjunct,), variables)]
    combined_conjuncts: Tuple[BoolExpr, ...] = ()
    combined_variables: FrozenSet[BVVar] = variables
    for group in absorbed:
        combined_conjuncts += group[0]
        combined_variables |= group[1]
    merged[slot] = (combined_conjuncts + (conjunct,), combined_variables)
    return merged


def _restore(raw: Tuple[BoolExpr, ...]) -> "ConstraintSet":
    node = EMPTY
    for conjunct in raw:
        node = ConstraintSet(node, conjunct)
    return node


#: The shared root: no conjuncts, trivially satisfied by the empty model.
EMPTY = ConstraintSet(None, None)
EMPTY._model = Model({})


def as_constraint_set(constraints) -> ConstraintSet:
    """Adapt the solver-API input: a ConstraintSet passes through,
    any other iterable of boolean expressions is folded into a fresh
    chain off :data:`EMPTY` (no model propagation — ad-hoc queries pay
    for their own analysis)."""
    if isinstance(constraints, ConstraintSet):
        return constraints
    node = EMPTY
    for conjunct in constraints:
        node = ConstraintSet(node, conjunct)
    return node
