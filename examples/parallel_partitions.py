#!/usr/bin/env python3
"""Parallelization analysis (the paper's future work, Section VI).

"In the future, we plan to parallelize SDE's implementation ... we have to
identify the sets of states which can be safely offloaded on other cores."

Dstates that share no execution state never interact, so each connected
component of the dstate/state graph can run on its own core.  This script
runs the grid scenario under COW and SDS and prints the partition structure
and the ideal speedup it allows — exposing a real trade-off: SDS's
superposition makes states span dstates, fusing partitions that COW keeps
separate.

Run: ``python examples/parallel_partitions.py [side]``
"""

import sys

from repro import build_engine
from repro.core import partition_groups, speedup_bound
from repro.workloads import grid_scenario


def main() -> int:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    print(f"{side}x{side} grid collection scenario\n")
    for algorithm in ("cow", "sds"):
        engine = build_engine(grid_scenario(side, sim_seconds=6), algorithm)
        report = engine.run()
        partitions = partition_groups(engine.mapper)
        bound = speedup_bound(partitions)
        sizes = sorted(
            (p.state_count() for p in partitions), reverse=True
        )
        print(f"[{algorithm}] {report.total_states} states in"
              f" {report.group_count} dstates")
        print(f"  independent partitions : {len(partitions)}")
        print(f"  partition sizes (top 8): {sizes[:8]}")
        print(f"  ideal parallel speedup : {bound:.2f}x")
        print()
    print(
        "COW fragments into one partition per dstate (embarrassingly\n"
        "parallel, but over a larger state set); SDS's shared bystanders\n"
        "fuse partitions - compactness traded against offloadability."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
