"""Symbolic failure injection.

The paper's test setup configures nodes to *symbolically drop one packet*:
when the first packet arrives, the receiving state forks — in one state the
radio receives it, in the other it is dropped.  "Further failures (packet
duplicates, node failures and reboots) are implemented and configured in a
similar fashion."  All three are implemented here.

A failure model rewrites the set of *delivery plans* for one reception
event.  Each plan is ``(state, deliveries, reboot)``: how many times the
``on_recv`` handler runs for that state (0 = dropped) and whether the state
reboots instead.  Models fork states and tag each fork with a fresh symbolic
decision variable, so every generated test case pins the failure pattern
concretely — that is exactly what makes the bug reports replayable.

Forks produced here are *local branches* in the paper's sense: the engine
reports them to the state mapper (COB reacts by forking dscenarios).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from ..expr import bv, eq, var
from ..vm.state import ExecutionState
from .packet import Packet

__all__ = [
    "DeliveryPlan",
    "FailureModel",
    "SymbolicPacketDrop",
    "SymbolicDuplication",
    "SymbolicNodeReboot",
]

# (state, handler invocations, reboot-instead)
DeliveryPlan = Tuple[ExecutionState, int, bool]


class FailureModel:
    """Base class: transforms delivery plans for a reception event."""

    #: Tag used for the symbolic decision variable (and its budget counter).
    tag = "failure"

    def __init__(
        self,
        nodes: Iterable[int],
        budget: int = 1,
        packet_filter: Optional[Callable[[Packet], bool]] = None,
    ) -> None:
        """``nodes``: node ids this model applies to.

        ``budget``: how many times per execution path the failure may occur
        (the paper uses one symbolic drop per node).

        ``packet_filter``: restricts the failure to matching packets.  The
        paper's setup injects the drop "during reception of the *first*
        packet"; scenario builders pass a filter selecting the flow's first
        data packet so later traffic cannot re-arm the failure in execution
        paths that missed the first packet (without a filter, every such
        path forks again on its own first reception and the scenario space
        grows combinatorially — that mode remains available as the
        drop-any-packet ablation).
        """
        self.nodes = frozenset(nodes)
        self.budget = budget
        self.packet_filter = packet_filter

    def applies(self, state: ExecutionState, packet: Packet) -> bool:
        if state.node not in self.nodes:
            return False
        if self.packet_filter is not None and not self.packet_filter(packet):
            return False
        return state.sym_counters.get(self.tag, 0) < self.budget

    def apply(
        self, plans: List[DeliveryPlan], packet: Packet
    ) -> Tuple[List[DeliveryPlan], List[Tuple[ExecutionState, ExecutionState]]]:
        """Rewrite plans; also return the (parent, fork) pairs created."""
        out: List[DeliveryPlan] = []
        forks: List[Tuple[ExecutionState, ExecutionState]] = []
        for state, deliveries, reboot in plans:
            if reboot or deliveries == 0 or not self.applies(state, packet):
                out.append((state, deliveries, reboot))
                continue
            twin = self._fork_with_decision(state)
            forks.append((state, twin))
            out.append((state, deliveries, reboot))
            out.append(self._failed_plan(twin, deliveries))
        return out, forks

    # -- subclass hooks -------------------------------------------------------

    def _failed_plan(self, twin: ExecutionState, deliveries: int) -> DeliveryPlan:
        raise NotImplementedError

    def _fork_with_decision(self, state: ExecutionState) -> ExecutionState:
        """Fork ``state``; the original takes decision=0 (no failure), the
        twin decision=1 (failure).  Both consume one unit of budget."""
        name = state.fresh_symbol_name(self.tag)
        decision = var(name, 1)
        twin = state.fork()
        state.symbolics.append((name, 1))
        twin.symbolics.append((name, 1))
        state.add_constraint(eq(decision, bv(0, 1)))
        twin.add_constraint(eq(decision, bv(1, 1)))
        return twin


class SymbolicPacketDrop(FailureModel):
    """The radio may drop the packet (paper's primary failure model)."""

    tag = "drop"

    def _failed_plan(self, twin, deliveries):
        return (twin, 0, False)


class SymbolicDuplication(FailureModel):
    """The packet may be duplicated: the handler runs twice."""

    tag = "dup"

    def _failed_plan(self, twin, deliveries):
        return (twin, deliveries + 1, False)


class SymbolicNodeReboot(FailureModel):
    """The node may crash-and-reboot instead of processing the packet."""

    tag = "reboot"

    def _failed_plan(self, twin, deliveries):
        return (twin, 0, True)


def standard_failure_suite(
    drop_nodes: Iterable[int],
    dup_nodes: Iterable[int] = (),
    reboot_nodes: Iterable[int] = (),
    budget: int = 1,
    packet_filter: Optional[Callable[[Packet], bool]] = None,
) -> List[FailureModel]:
    """The paper's configuration: drops on the data path and its neighbours,
    optionally duplicates/reboots elsewhere."""
    models: List[FailureModel] = [
        SymbolicPacketDrop(drop_nodes, budget, packet_filter)
    ]
    dup_nodes = list(dup_nodes)
    reboot_nodes = list(reboot_nodes)
    if dup_nodes:
        models.append(SymbolicDuplication(dup_nodes, budget, packet_filter))
    if reboot_nodes:
        models.append(SymbolicNodeReboot(reboot_nodes, budget, packet_filter))
    return models
