"""The limitation scenario (Section IV-C).

"It is easy to set up test scenarios or applications where COW and SDS
algorithms perform nearly as bad as COB.  One example would be a
full-meshed network where nodes continuously transmit data to their k-1
neighbours."  In a full mesh with constant flooding there are no
bystanders: every state is a sender, target or rival of every transmission,
so SDS has nothing left to save.  ``benchmarks/bench_limitations.py`` shows
the three algorithms converging here — the honest counterpoint to Table I.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..net.failures import standard_failure_suite
from ..net.topology import Topology
from ..core.scenario import Scenario
from .programs import flood_program

__all__ = ["flood_scenario"]


def flood_scenario(
    k: int,
    rounds: int = 2,
    period_ms: int = 100,
    sim_seconds: Optional[int] = None,
    drop_nodes: Optional[Iterable[int]] = None,
    drop_budget: int = 1,
) -> Scenario:
    """k nodes, full mesh, every node broadcasts every ``period_ms``."""
    if k < 2:
        raise ValueError("flooding needs at least 2 nodes")
    topology = Topology.full_mesh(k)
    if sim_seconds is None:
        sim_seconds = max(1, (rounds + 2) * period_ms * 2 // 1000 + 1)
    if drop_nodes is None:
        drop_nodes = list(topology.nodes())
    presets = {
        "flood_period": period_ms,
        "floods_left": rounds,
    }
    return Scenario(
        name=f"flood-{k}",
        program=flood_program(),
        topology=topology,
        horizon_ms=sim_seconds * 1000,
        failure_factory=lambda: standard_failure_suite(
            drop_nodes, budget=drop_budget
        ),
        preset_globals=presets,
        latency_ms=1,
    )
