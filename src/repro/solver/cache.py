"""Tiered query caching (KLEE's counterexample cache, adapted).

SDE queries are massively redundant: forked siblings share all but one
conjunct, and every branch site issues near-identical feasibility pairs.
The cache answers a query about one independence group from three tiers,
cheapest first:

1. **exact** — the frozenset of the group's conjuncts is the key; a hit
   returns the stored result (a model, or ``None`` for UNSAT) outright.
2. **counterexample subset** — a stored UNSAT key that is a *subset* of
   the query proves the query UNSAT (adding conjuncts can't revive it).
   Candidates come from a per-variable index so only keys sharing the
   query's variables are examined, with a hard scan bound.
3. **model reuse** — a model stored for a *subset* key is evaluated
   against only the extra conjuncts (for unrelated keys: against the
   whole query); satisfaction proves SAT without a search.

Stats use the metric names the observability layer exports
(``solver.cache.hit.exact`` / ``hit.cex`` / ``hit.model`` / ``miss``);
:meth:`CacheStats.restore` maps them back for checkpoint resume.
``tiered=False`` drops tier 2 and the subset-key shortcut of tier 3
(the seed behaviour), which is what ``Solver(optimize=False)`` uses for
A/B runs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..expr import BoolExpr, BVVar
from .model import Model

__all__ = ["SolverCache", "CacheStats"]

Key = FrozenSet[BoolExpr]


class CacheStats:
    """Hit/miss accounting, one attribute per tier."""

    __slots__ = (
        "exact_hits",
        "cex_hits",
        "model_reuse_hits",
        "misses",
        "stores",
        "model_scan_steps",
        "subset_scan_steps",
    )

    #: metric-snapshot name -> attribute (the JSON contract behind the
    #: ``solver.cache.*`` counters; also accepted by :meth:`restore`).
    METRIC_NAMES = {
        "hit.exact": "exact_hits",
        "hit.cex": "cex_hits",
        "hit.model": "model_reuse_hits",
        "miss": "misses",
        "stores": "stores",
        "model_scan_steps": "model_scan_steps",
        "subset_scan_steps": "subset_scan_steps",
    }

    def __init__(self) -> None:
        for attribute in self.__slots__:
            setattr(self, attribute, 0)

    def as_dict(self) -> Dict[str, int]:
        return {
            name: getattr(self, attribute)
            for name, attribute in self.METRIC_NAMES.items()
        }

    @classmethod
    def restore(cls, mapping: Dict[str, int]) -> "CacheStats":
        """Rebuild from :meth:`as_dict` output (or attribute names)."""
        stats = cls()
        for name, value in mapping.items():
            attribute = cls.METRIC_NAMES.get(name, name)
            if attribute in cls.__slots__:
                setattr(stats, attribute, int(value))
        return stats

    def __repr__(self) -> str:
        return (
            f"CacheStats(exact={self.exact_hits}, cex={self.cex_hits},"
            f" reuse={self.model_reuse_hits}, misses={self.misses})"
        )


_MISS = object()


class SolverCache:
    """The tiered cache described in the module docstring.

    ``lookup`` returns ``(hit, result)`` where ``result`` is a
    :class:`Model` for SAT and ``None`` for UNSAT; ``last_outcome``
    records which tier answered (``"exact"``, ``"cex"``, ``"model"`` or
    ``"miss"``) for trace events.  Every structure is bounded: exact
    entries and UNSAT index keys are LRU-evicted, and the model / subset
    scans have hard step limits so a lookup can never cost more than a
    small constant multiple of a miss.
    """

    def __init__(
        self,
        max_entries: int = 65536,
        max_models: int = 256,
        max_model_scan: int = 64,
        max_unsat_entries: int = 4096,
        max_subset_scan: int = 64,
        tiered: bool = True,
        model_memo: bool = False,
    ) -> None:
        self._exact: "OrderedDict[Key, Optional[Model]]" = OrderedDict()
        self._models: "OrderedDict[Model, None]" = OrderedDict()
        self._model_vars: Dict[Model, FrozenSet[str]] = {}
        self._model_keys: Dict[Model, Key] = {}
        # UNSAT subset index: every remembered UNSAT key is filed under
        # ONE representative variable name (its smallest), so a query
        # only scans the buckets of its own variables.
        self._unsat_keys: "OrderedDict[Key, str]" = OrderedDict()
        self._unsat_by_rep: Dict[str, List[Key]] = {}
        self._max_entries = max_entries
        self._max_models = max_models
        self._max_model_scan = max_model_scan
        self._max_unsat_entries = max_unsat_entries
        self._max_subset_scan = max_subset_scan
        self._tiered = tiered
        # Memoize per-conjunct verdicts on scanned models (the
        # loop-increment-reuse path): iterations of the same loop probe
        # the same models with mostly the same conjuncts.
        self._model_memo = model_memo
        self.stats = CacheStats()
        #: how the most recent lookup was answered; read by the solver's
        #: trace instrumentation ("exact"/"cex"/"model"/"miss").
        self.last_outcome = "miss"

    @staticmethod
    def key(constraints: Iterable[BoolExpr]) -> Key:
        """Order-independent cache key for one conjunct group."""
        return frozenset(constraints)

    # -- lookup ---------------------------------------------------------------

    def lookup(
        self,
        key: Key,
        variables: Optional[Iterable[BVVar]] = None,
    ) -> Tuple[bool, Optional[Model]]:
        """Return ``(hit, result)``; result is a Model or None (unsat).

        ``variables``: the query's variable set when the caller knows it
        (the solver passes each independence group's variables).  It
        keys the UNSAT subset index and lets the model scan skip models
        assigning variables outside the query — those came from
        unrelated groups and reusing them would leak unconstrained
        assignments into the merged model.
        """
        result = self._exact.get(key, _MISS)
        if result is not _MISS:
            self._exact.move_to_end(key)
            self.stats.exact_hits += 1
            self.last_outcome = "exact"
            return True, result  # type: ignore[return-value]
        query_names = (
            None
            if variables is None
            else frozenset(v.name for v in variables)
        )
        if self._tiered and query_names and self._unsat_subset(key, query_names):
            self.stats.cex_hits += 1
            self.last_outcome = "cex"
            return True, None
        reused = self._reusable_model(key, query_names)
        if reused is not None:
            self.stats.model_reuse_hits += 1
            self.last_outcome = "model"
            return True, reused
        self.stats.misses += 1
        self.last_outcome = "miss"
        return False, None

    def _unsat_subset(self, key: Key, query_names: FrozenSet[str]) -> bool:
        """Tier 2: does a remembered UNSAT key prove this query UNSAT?"""
        scanned = 0
        for name in sorted(query_names):
            candidates = self._unsat_by_rep.get(name)
            if not candidates:
                continue
            for candidate in reversed(candidates):  # newest first
                scanned += 1
                if candidate <= key:
                    self.stats.subset_scan_steps += scanned
                    return True
                if scanned >= self._max_subset_scan:
                    self.stats.subset_scan_steps += scanned
                    return False
        self.stats.subset_scan_steps += scanned
        return False

    def _reusable_model(
        self, key: Key, query_names: Optional[FrozenSet[str]]
    ) -> Optional[Model]:
        """Tier 3: most recently stored models first, bounded evaluations."""
        evaluated = 0
        for model in reversed(self._models):
            if evaluated >= self._max_model_scan:
                break
            if query_names is not None and not (
                self._model_vars[model] <= query_names
            ):
                continue
            evaluated += 1
            probe: Iterable[BoolExpr] = key
            if self._tiered:
                stored_key = self._model_keys.get(model)
                if stored_key is not None and stored_key <= key:
                    probe = key - stored_key  # evaluate only the extras
            if model.satisfies(probe, memo=self._model_memo):
                self.stats.model_scan_steps += evaluated
                return model
        self.stats.model_scan_steps += evaluated
        return None

    # -- store ----------------------------------------------------------------

    def store(self, key: Key, result: Optional[Model]) -> None:
        self.stats.stores += 1
        self._exact[key] = result
        self._exact.move_to_end(key)
        while len(self._exact) > self._max_entries:
            self._exact.popitem(last=False)
        if result is not None:
            self._models[result] = None
            self._model_vars[result] = frozenset(result)
            self._model_keys[result] = key
            self._models.move_to_end(result)
            while len(self._models) > self._max_models:
                evicted, _ = self._models.popitem(last=False)
                self._model_vars.pop(evicted, None)
                self._model_keys.pop(evicted, None)
        elif self._tiered:
            self._remember_unsat(key)

    def _remember_unsat(self, key: Key) -> None:
        if key in self._unsat_keys:
            return
        representative = min(
            (v.name for c in key for v in c.variables()), default=""
        )
        if not representative:
            return  # ground UNSAT groups never gain from subset proofs
        self._unsat_keys[key] = representative
        self._unsat_by_rep.setdefault(representative, []).append(key)
        while len(self._unsat_keys) > self._max_unsat_entries:
            stale, rep = self._unsat_keys.popitem(last=False)
            bucket = self._unsat_by_rep.get(rep)
            if bucket is not None:
                try:
                    bucket.remove(stale)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not bucket:
                    del self._unsat_by_rep[rep]

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> None:
        self._exact.clear()
        self._models.clear()
        self._model_vars.clear()
        self._model_keys.clear()
        self._unsat_keys.clear()
        self._unsat_by_rep.clear()

    def __len__(self) -> int:
        return len(self._exact)
