"""Conflict-detection tests (paper Section II-B definitions)."""

from repro.core.history import (
    conflict_free,
    find_conflicts,
    in_direct_conflict,
    received_from,
    sent_to,
)
from repro.vm.state import ExecutionState


def state(node):
    return ExecutionState(node, memory_size=2)


class TestHistoryAccessors:
    def test_sent_to(self):
        s = state(0)
        s.record_sent(1, dest=2)
        s.record_sent(2, dest=3)
        assert sent_to(s, 2) == {1}
        assert sent_to(s, 3) == {2}
        assert sent_to(s, 9) == set()

    def test_received_from(self):
        s = state(0)
        s.record_received(7, src=1)
        assert received_from(s, 1) == {7}
        assert received_from(s, 2) == set()


class TestDirectConflict:
    def test_fresh_states_agree(self):
        assert not in_direct_conflict(state(0), state(1))

    def test_sent_but_not_received(self):
        """s sent a packet to node(t) that was not received by t."""
        s, t = state(0), state(1)
        s.record_sent(1, dest=1)
        assert in_direct_conflict(s, t)

    def test_received_but_not_sent(self):
        """t received a packet from node(s) which was not sent by s."""
        s, t = state(0), state(1)
        t.record_received(1, src=0)
        assert in_direct_conflict(s, t)

    def test_matched_exchange_is_consistent(self):
        s, t = state(0), state(1)
        s.record_sent(1, dest=1)
        t.record_received(1, src=0)
        assert not in_direct_conflict(s, t)

    def test_symmetry(self):
        s, t = state(0), state(1)
        s.record_sent(1, dest=1)
        assert in_direct_conflict(s, t) == in_direct_conflict(t, s)

    def test_third_party_traffic_is_ignored(self):
        """Packets to/from other nodes never create a direct conflict
        (that is exactly the 'logical but not direct' case of the paper's
        line example)."""
        s1_prime, s3 = state(1), state(3)
        # s3 received a packet that originated at node 1 -- but via node 2,
        # so it is recorded as coming from node 2.
        s3.record_received(5, src=2)
        assert not in_direct_conflict(s1_prime, s3)

    def test_same_node_states_conflict_iff_histories_differ(self):
        a, b = state(0), state(0)
        assert not in_direct_conflict(a, b)
        a.record_sent(1, dest=1)
        assert in_direct_conflict(a, b)
        b.record_sent(1, dest=1)
        assert not in_direct_conflict(a, b)


class TestGroupChecks:
    def test_conflict_free_set(self):
        s, t, u = state(0), state(1), state(2)
        s.record_sent(1, dest=1)
        t.record_received(1, src=0)
        assert conflict_free([s, t, u])

    def test_find_conflicts_reports_pairs(self):
        s, t, u = state(0), state(1), state(2)
        s.record_sent(1, dest=1)  # t never received it
        u.record_received(9, src=0)  # s never sent it
        conflicts = find_conflicts([s, t, u])
        pairs = {(a.sid, b.sid) for a, b in conflicts}
        assert (s.sid, t.sid) in pairs
        assert (s.sid, u.sid) in pairs
        assert len(conflicts) == 2
