"""Determinism of the realistic medium across every harness.

The medium's loss/jitter draws are pure functions of the run seed and
the logical send, so the same scenario must produce bit-identical
verdicts sequentially, under `ParallelRunner`, under `DistributedRunner`,
and through a checkpoint resume — and the symmetry/POR reducer must
refuse to run on a non-symmetric medium rather than prune unsoundly."""

from __future__ import annotations

import pytest

from repro.core.distributed import DistributedRunner, InlineTransport
from repro.core.parallel import ParallelRunner
from repro.core.resilience import resume_engine, save_checkpoint
from repro.core.scenario import Scenario, build_engine
from repro.net import Topology
from repro.obs import TraceEmitter
from repro.workloads import election_scenario

LOSSY = dict(loss=0.15, jitter_ms=2, seed=7)


def _lossy_scenario():
    return election_scenario(
        5, medium="realistic", medium_params=dict(LOSSY)
    )


#: A reducer-certifiable handler (commutative writes only), so the only
#: thing standing between the reducer and `enabled` is the medium.
CERTIFIABLE = """
var seen = 0;

func on_boot() {
    timer_set(0, 40 + node_id() * 7);
}

func on_timer(tid) {
    var buf[1];
    buf[0] = 1;
    bc_send(buf, 1);
}

func on_recv(src, len) {
    seen = seen + 1;
}
"""


def _certifiable_scenario(medium_params):
    return Scenario(
        name="certifiable-ring",
        program=CERTIFIABLE,
        topology=Topology.ring(4),
        horizon_ms=300,
        medium="realistic",
        medium_params=medium_params,
    )


def _error_signature(report):
    return sorted(
        (s.node, s.error.kind, s.error.code, s.clock)
        for s in report.error_states
    )


def _assert_reports_match(left, right):
    assert left.total_states == right.total_states
    assert left.group_count == right.group_count
    assert left.events_executed == right.events_executed
    assert left.instructions == right.instructions
    assert left.virtual_ms == right.virtual_ms
    assert left.mapping_stats == right.mapping_stats
    assert _error_signature(left) == _error_signature(right)
    assert left.net_stats == right.net_stats


@pytest.fixture(scope="module")
def sequential():
    engine = build_engine(_lossy_scenario(), "sds")
    report = engine.run()
    return engine, report


class TestCrossHarness:
    def test_losses_happened(self, sequential):
        _, report = sequential
        assert report.net_stats["lost"] > 0  # the medium actually bites

    def test_rerun_is_bit_identical(self, sequential):
        _, report = sequential
        again = build_engine(_lossy_scenario(), "sds").run()
        _assert_reports_match(again, report)

    def test_different_net_seed_diverges(self, sequential):
        _, report = sequential
        other = election_scenario(
            5, medium="realistic", medium_params={**LOSSY, "seed": 8}
        )
        other_report = build_engine(other, "sds").run()
        assert other_report.net_stats != report.net_stats

    @pytest.mark.parametrize("workers", [1, 2])
    def test_parallel_matches_sequential(self, sequential, workers):
        engine, report = sequential
        parallel = ParallelRunner(
            _lossy_scenario(), "sds", workers=workers, split_events=40
        ).run()
        _assert_reports_match(parallel, report)
        assert parallel.state_census() == engine.state_census()

    def test_distributed_matches_sequential(self, sequential):
        engine, report = sequential
        distributed = DistributedRunner(
            _lossy_scenario(),
            "sds",
            workers=2,
            transport=InlineTransport(),
        ).run()
        _assert_reports_match(distributed, report)
        assert distributed.state_census() == engine.state_census()

    def test_checkpoint_resume_matches_sequential(self, sequential, tmp_path):
        engine, report = sequential
        partial = build_engine(_lossy_scenario(), "sds")
        partial.run_until(split_events=40)
        path = tmp_path / "mid.sdeckpt"
        save_checkpoint(partial, path)
        resumed = resume_engine(path)
        resumed_report = resumed.run()
        assert resumed_report.resumed
        _assert_reports_match(resumed_report, report)
        assert resumed.state_census() == engine.state_census()


class TestReducerSoundness:
    def test_reducer_self_disables_on_lossy_medium(self):
        trace = TraceEmitter()
        engine = build_engine(
            _certifiable_scenario(dict(LOSSY)),
            "sds",
            symmetry=True,
            por=True,
            trace=trace,
        )
        assert not engine.reducer.enabled
        assert "realistic" in engine.reducer.disable_reason
        engine.run()
        disabled = [
            e for e in trace.events if e["ev"] == "reduce.disabled"
        ]
        assert disabled and "node-symmetric" in disabled[0]["reason"]

    def test_verdicts_pinned_reduction_on_vs_off(self):
        # On the lossy election workload (uncertifiable handler) AND the
        # certifiable broadcast workload (medium-disabled): flags on must
        # change nothing.
        for factory in (
            _lossy_scenario,
            lambda: _certifiable_scenario(dict(LOSSY)),
        ):
            off = build_engine(factory(), "sds").run()
            on = build_engine(
                factory(), "sds", symmetry=True, por=True
            ).run()
            _assert_reports_match(on, off)

    def test_reducer_still_enables_on_lossless_realistic(self):
        engine = build_engine(
            _certifiable_scenario({}), "sds", symmetry=True
        )
        assert engine.reducer.enabled
