"""Bytecode ISA for the symbolic VM.

A compiled :class:`CompiledProgram` is a list of functions over one flat,
statically allocated memory (globals first, then each function's
parameter/local slots).  Static allocation mirrors how sensornet C is
written (tiny stacks, no recursion) and makes execution-state forking a
shallow list copy.  Recursion is rejected at compile time.

The machine is a classic operand-stack machine.  Every instruction is an
``(opcode, arg)`` pair; ``arg`` is an int, a tuple, a string, or None
depending on the opcode (documented per opcode below).

Compiler output stops at the base ISA (opcodes < 70).  The *decoder*
(:func:`decode_program`) is a separate, deterministic pass the executor
runs once per program: it pre-masks immediates, resolves ``CALL`` args to
``(entry, parameter addresses)``, finds back-edges (the loop structure
the loop-navigation layer keys on), and — when fusion is enabled —
rewrites the hottest adjacent pairs (plus the 4-wide loop-increment
pattern) into *superinstructions* (opcodes >= 70).  Fusion is
slot-preserving: a fused instruction occupies the first constituent's
slot while the remaining slots keep their original decoded instructions,
so a jump into the middle of a fused sequence still lands on real code.
See ``docs/VM.md`` for the dispatch architecture.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Tuple

__all__ = [
    "Op",
    "Instr",
    "FuncInfo",
    "CompiledProgram",
    "DecodedProgram",
    "decode_program",
    "find_back_edges",
    "disassemble",
]

#: Guest cells are 32-bit; the decoder pre-masks every immediate so the
#: executor's PUSH handler is a bare list append.
MASK32 = 0xFFFFFFFF


class Op(enum.IntEnum):
    """Opcodes; the comment gives the ``arg`` payload and stack effect."""

    PUSH = 1      # arg=imm            ; -- v
    LOAD = 2      # arg=addr           ; -- mem[addr]
    STORE = 3     # arg=addr           ; v --
    LOADI = 4     # arg=(base, size)   ; idx -- mem[base+idx]   (bounds checked)
    STOREI = 5    # arg=(base, size)   ; idx v --               (bounds checked)

    ADD = 10      # a b -- a+b
    SUB = 11      # a b -- a-b
    MUL = 12      # a b -- a*b
    SDIV = 13     # a b -- a/b   (signed, trap on b==0)
    SREM = 14     # a b -- a%b   (signed, trap on b==0)
    UDIV = 15     # a b -- a/b   (unsigned, trap on b==0)
    UREM = 16     # a b -- a%b   (unsigned, trap on b==0)
    BAND = 17     # a b -- a&b
    BOR = 18      # a b -- a|b
    BXOR = 19     # a b -- a^b
    SHL = 20      # a b -- a<<b
    ASHR = 21     # a b -- a>>b  (arithmetic; NSL '>>')
    LSHR = 22     # a b -- a>>>b (logical; exposed via builtin lshr())
    NEG = 23      # a -- -a
    BNOT = 24     # a -- ~a

    EQ = 30       # a b -- (a==b) ? 1 : 0
    NE = 31       # a b -- (a!=b) ? 1 : 0
    SLT = 32      # a b -- (a<b signed) ? 1 : 0
    SLE = 33      # a b -- (a<=b signed) ? 1 : 0
    ULT = 34      # a b -- (a<b unsigned) ? 1 : 0
    ULE = 35      # a b -- (a<=b unsigned) ? 1 : 0
    LNOT = 36     # a -- (a==0) ? 1 : 0
    BOOL = 37     # a -- (a!=0) ? 1 : 0

    JMP = 40      # arg=target
    JZ = 41       # arg=target         ; v --  (branch if v==0; fork point)
    JNZ = 42      # arg=target         ; v --  (branch if v!=0; fork point)

    CALL = 50     # arg=(func_index, nargs) ; a1..an -- retval
    RET = 51      #                    ; retval stays on stack
    SYS = 52      # arg=(name, nargs)  ; a1..an -- retval

    POP = 60      # v --
    DUP = 61      # v -- v v

    # -- superinstructions (decoder-only; never emitted by the compiler) --
    # Each fuses the two (INC_MEM: four) base instructions named by its
    # constituents; the stack effect is the composition of theirs.  The
    # second operand of a fused binary op always comes from the fused
    # LOAD/PUSH (it was pushed last), matching the unfused evaluation.
    LOAD_LOAD = 70    # arg=(a, b)          ; -- mem[a] mem[b]
    PUSH_LOAD = 71    # arg=(imm, addr)     ; -- imm mem[addr]
    LOAD_PUSH = 72    # arg=(addr, imm)     ; -- mem[addr] imm
    PUSH_STORE = 73   # arg=(imm, addr)     ; --            (mem[addr]=imm)
    LOAD_STORE = 74   # arg=(src, dst)      ; --            (mem[dst]=mem[src])
    LOAD_ARITH = 75   # arg=(addr, op)      ; a -- a<op>mem[addr]
    PUSH_ARITH = 76   # arg=(imm, op)       ; a -- a<op>imm
    ARITH_STORE = 77  # arg=(op, addr)      ; a b --        (mem[addr]=a<op>b)
    CMP_JZ = 78       # arg=(op, target)    ; a b --  (branch if !(a<op>b))
    CMP_JNZ = 79      # arg=(op, target)    ; a b --  (branch if a<op>b)
    INC_MEM = 80      # arg=(addr, imm, op) ; --  (mem[addr]=mem[addr]<op>imm)
    ARITH_ARITH = 81  # arg=(op1, op2)      ; a b c -- a<op2>(b<op1>c)
    ARITH_LOAD = 82   # arg=(op, addr)      ; a b -- a<op>b mem[addr]


#: Binary arithmetic opcodes eligible for fusion.  Divisive ops trap on
#: zero and unary ops have a different arity, so both stay unfused.
FUSABLE_ARITH: FrozenSet[Op] = frozenset(
    {Op.ADD, Op.SUB, Op.MUL, Op.BAND, Op.BOR, Op.BXOR, Op.SHL, Op.ASHR, Op.LSHR}
)

#: Binary comparisons eligible for compare+branch fusion (LNOT/BOOL are
#: unary and never directly precede a branch in compiler output anyway).
FUSABLE_CMP: FrozenSet[Op] = frozenset(
    {Op.EQ, Op.NE, Op.SLT, Op.SLE, Op.ULT, Op.ULE}
)


class Instr(NamedTuple):
    op: Op
    arg: object = None
    line: int = 0

    def __repr__(self) -> str:
        if self.arg is None:
            return self.op.name
        return f"{self.op.name} {self.arg!r}"


class FuncInfo(NamedTuple):
    """Metadata for one compiled function."""

    name: str
    index: int
    params: Tuple[str, ...]
    param_base: int        # address of first parameter slot
    frame_size: int        # number of memory cells (params + locals)
    entry: int             # first instruction index in the shared code array
    code_length: int


class CompiledProgram:
    """The output of :func:`repro.lang.compiler.compile_program`.

    Attributes:
        code: flat instruction list shared by all functions.
        functions: by index; ``function_index`` maps names.
        memory_size: total static cells (globals + all frames).
        globals_layout: name -> (address, size) for inspection in tests.
        initializers: list of (address, value) applied at node boot.
        source: original NSL text (retained for diagnostics).
    """

    def __init__(
        self,
        code: List[Instr],
        functions: List[FuncInfo],
        memory_size: int,
        globals_layout: Dict[str, Tuple[int, int]],
        initializers: List[Tuple[int, int]],
        source: str = "",
        strings: Optional[List[str]] = None,
    ) -> None:
        self.code = code
        self.functions = functions
        self.function_index = {f.name: f.index for f in functions}
        self.memory_size = memory_size
        self.globals_layout = globals_layout
        self.initializers = initializers
        self.source = source
        self.strings: List[str] = strings if strings is not None else []
        self._decoded: Dict[bool, "DecodedProgram"] = {}

    def decoded(self, fuse: bool = True) -> "DecodedProgram":
        """The decoder output, computed once per (program, fuse) pair.

        The cache never travels: decoding is deterministic, so worker
        processes and checkpoint restores recompute it locally.
        """
        cached = self._decoded.get(fuse)
        if cached is None:
            cached = self._decoded[fuse] = decode_program(self, fuse=fuse)
        return cached

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_decoded", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._decoded = {}

    def function(self, name: str) -> Optional[FuncInfo]:
        index = self.function_index.get(name)
        return self.functions[index] if index is not None else None

    def has_handler(self, name: str) -> bool:
        return name in self.function_index

    def global_address(self, name: str) -> int:
        return self.globals_layout[name][0]

    def __repr__(self) -> str:
        return (
            f"CompiledProgram({len(self.functions)} funcs,"
            f" {len(self.code)} instrs, {self.memory_size} cells)"
        )


class DecodedProgram(NamedTuple):
    """Pure-data decoder output (ints/tuples/strings only — picklable,
    though in practice it is recomputed rather than shipped).

    ``code[pc]`` is ``(op, arg, line)`` with ``op`` a plain int.  Fused
    slots hold a superinstruction while the constituents' slots keep
    their original decoded form, so every jump target is real code.
    """

    code: Tuple[Tuple[int, object, int], ...]
    jump_targets: FrozenSet[int]
    back_edges: Tuple[Tuple[int, int], ...]   # (jump pc, target <= pc)
    loop_headers: FrozenSet[int]              # back-edge targets
    fused: int                                # superinstructions emitted


def find_back_edges(program: CompiledProgram) -> Tuple[Tuple[int, int], ...]:
    """All ``(jump_pc, target)`` pairs with ``target <= jump_pc``.

    Compiler output is reducible (structured while/if only), so every
    back-edge is a loop latch and its target the loop header — the pcs
    the loop-increment-reuse layer treats as iteration boundaries.
    """
    edges = []
    for pc, instr in enumerate(program.code):
        if instr.op in (Op.JMP, Op.JZ, Op.JNZ) and instr.arg <= pc:
            edges.append((pc, instr.arg))
    return tuple(edges)


def _decode_instr(instr: Instr, program: CompiledProgram) -> Tuple[int, object, int]:
    """Base-ISA operand pre-decoding: one triple the executor never
    re-interprets.  Immediates are pre-masked; CALL args become
    ``(entry, parameter addresses in pop order)``."""
    op = int(instr.op)
    arg = instr.arg
    if op == Op.PUSH:
        arg = instr.arg & MASK32
    elif op == Op.CALL:
        func = program.functions[instr.arg[0]]
        nargs = instr.arg[1]
        addrs = tuple(func.param_base + k for k in range(nargs - 1, -1, -1))
        arg = (func.entry, addrs)
    return (op, arg, instr.line)


#: (first op, second op) -> superinstruction for the pair-fusion pass.
_PAIR_FUSION: Dict[Tuple[int, int], int] = {}
for _second, _fused in ((Op.LOAD, Op.LOAD_LOAD), (Op.PUSH, Op.LOAD_PUSH),
                        (Op.STORE, Op.LOAD_STORE)):
    _PAIR_FUSION[(int(Op.LOAD), int(_second))] = int(_fused)
for _second, _fused in ((Op.LOAD, Op.PUSH_LOAD), (Op.STORE, Op.PUSH_STORE)):
    _PAIR_FUSION[(int(Op.PUSH), int(_second))] = int(_fused)
for _arith in FUSABLE_ARITH:
    _PAIR_FUSION[(int(Op.LOAD), int(_arith))] = int(Op.LOAD_ARITH)
    _PAIR_FUSION[(int(Op.PUSH), int(_arith))] = int(Op.PUSH_ARITH)
    _PAIR_FUSION[(int(_arith), int(Op.STORE))] = int(Op.ARITH_STORE)
    _PAIR_FUSION[(int(_arith), int(Op.LOAD))] = int(Op.ARITH_LOAD)
    for _arith2 in FUSABLE_ARITH:
        _PAIR_FUSION[(int(_arith), int(_arith2))] = int(Op.ARITH_ARITH)
for _cmp in FUSABLE_CMP:
    _PAIR_FUSION[(int(_cmp), int(Op.JZ))] = int(Op.CMP_JZ)
    _PAIR_FUSION[(int(_cmp), int(Op.JNZ))] = int(Op.CMP_JNZ)
del _second, _fused, _arith, _arith2, _cmp

#: Superinstructions whose arg pairs (first's operand, second's operand).
#: LOAD_ARITH/PUSH_ARITH keep (operand, op); ARITH_* put the op first.
_ARG_FROM_FIRST = frozenset(
    {int(Op.LOAD_LOAD), int(Op.PUSH_LOAD), int(Op.LOAD_PUSH),
     int(Op.PUSH_STORE), int(Op.LOAD_STORE), int(Op.LOAD_ARITH),
     int(Op.PUSH_ARITH)}
)


def _fuse(code: List[Tuple[int, object, int]],
          jump_targets: FrozenSet[int]) -> int:
    """Greedy in-place superinstruction rewrite; returns the fusion count.

    A sequence fuses only when its interior pcs are not jump targets
    (a jump into the middle must land on the original instruction —
    which it still does, because constituent slots are left intact).
    """
    fused = 0
    pc, end = 0, len(code)
    while pc < end:
        op, arg, line = code[pc]
        # 4-wide loop increment: LOAD a; PUSH k; <arith>; STORE a.
        if (op == Op.LOAD and pc + 3 < end
                and code[pc + 1][0] == Op.PUSH
                and code[pc + 2][0] in FUSABLE_ARITH
                and code[pc + 3][0] == Op.STORE
                and code[pc + 3][1] == arg
                and not any(p in jump_targets for p in range(pc + 1, pc + 4))):
            code[pc] = (int(Op.INC_MEM), (arg, code[pc + 1][1], code[pc + 2][0]), line)
            fused += 1
            pc += 4
            continue
        if pc + 1 < end and pc + 1 not in jump_targets:
            op2, arg2, _ = code[pc + 1]
            super_op = _PAIR_FUSION.get((op, op2))
            if super_op is not None:
                # Each half contributes its operand, or its opcode when
                # it has none (the fused arith/compare member).
                first = arg if super_op in _ARG_FROM_FIRST else op
                second = arg2 if arg2 is not None else op2
                code[pc] = (super_op, (first, second), line)
                fused += 1
                pc += 2
                continue
        pc += 1
    return fused


def decode_program(program: CompiledProgram, fuse: bool = True) -> DecodedProgram:
    """Run the full decode pipeline over a compiled program."""
    targets = set()
    for pc, instr in enumerate(program.code):
        if instr.op in (Op.JMP, Op.JZ, Op.JNZ):
            targets.add(instr.arg)
        elif instr.op == Op.CALL:
            targets.add(pc + 1)  # return address
    for func in program.functions:
        targets.add(func.entry)
    jump_targets = frozenset(targets)
    code = [_decode_instr(instr, program) for instr in program.code]
    fused = _fuse(code, jump_targets) if fuse else 0
    back_edges = find_back_edges(program)
    return DecodedProgram(
        code=tuple(code),
        jump_targets=jump_targets,
        back_edges=back_edges,
        loop_headers=frozenset(t for _, t in back_edges),
        fused=fused,
    )


def disassemble(program: CompiledProgram) -> str:
    """Readable listing of a compiled program, one function per section."""
    lines: List[str] = []
    by_entry = sorted(program.functions, key=lambda f: f.entry)
    for func in by_entry:
        lines.append(
            f"func {func.name}({', '.join(func.params)})"
            f"  ; frame@{func.param_base}+{func.frame_size}"
        )
        for offset in range(func.code_length):
            index = func.entry + offset
            instr = program.code[index]
            lines.append(f"  {index:5d}: {instr!r}")
    return "\n".join(lines)
