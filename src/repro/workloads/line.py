"""Line-topology forwarding scenario (the paper's running example).

Section II-B motivates logical conflicts with "a multi-hop data collection
protocol in a line setup with nodes 1..k that forward each packet from node
i to i+1": here node 0 originates and data flows 0 -> 1 -> ... -> k-1.
Used by unit/integration tests and the quickstart example; it is the
smallest scenario exhibiting sender-rival conflicts and bystanders.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..net.failures import standard_failure_suite
from ..net.topology import Topology
from ..core.scenario import Scenario
from .programs import collect_program, first_collect_packet

__all__ = ["line_scenario"]


def line_scenario(
    k: int,
    sim_seconds: int = 3,
    send_period_ms: int = 1000,
    sends: Optional[int] = None,
    drop_nodes: Optional[Iterable[int]] = None,
    drop_budget: int = 1,
    drop_any_packet: bool = False,
    dup_nodes: Iterable[int] = (),
    reboot_nodes: Iterable[int] = (),
) -> Scenario:
    """A k-node chain; node 0 produces, node k-1 is the sink.

    By default every node except the source may symbolically drop one
    packet (the line is all data path — there are no bystander *nodes*,
    but plenty of bystander *states*: everyone two or more hops from each
    transmission).
    """
    if k < 2:
        raise ValueError("a line scenario needs at least 2 nodes")
    topology = Topology.line(k)
    source, sink = 0, k - 1
    if drop_nodes is None:
        drop_nodes = [node for node in topology.nodes() if node != source]
    if sends is None:
        sends = max(1, sim_seconds * 1000 // send_period_ms - 1)

    presets = {
        "rime_next_hop": topology.next_hop_table(sink),
        "rime_sink": sink,
        "rime_source": source,
        "send_period": send_period_ms,
        "sends_left": {source: sends},
    }
    return Scenario(
        name=f"line-{k}",
        program=collect_program(),
        topology=topology,
        horizon_ms=sim_seconds * 1000,
        failure_factory=lambda: standard_failure_suite(
            drop_nodes,
            dup_nodes=dup_nodes,
            reboot_nodes=reboot_nodes,
            budget=drop_budget,
            packet_filter=None if drop_any_packet else first_collect_packet,
        ),
        preset_globals=presets,
        latency_ms=1,
    )
