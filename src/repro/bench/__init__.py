"""Benchmark harness: regenerates every table and figure of the paper.

- ``python -m repro.bench.table1``   — Table I (runtime / states / RAM)
- ``python -m repro.bench.figure10`` — Figure 10 (growth curves, 25/49/100)

``pytest benchmarks/ --benchmark-only`` runs the same experiments (plus the
complexity, limitation, explosion, partition and ablation studies) under
pytest-benchmark timing.  ``SDE_FULL=1`` switches to the paper's full-scale
parameters.
"""

# NB: table1/figure10 are deliberately not imported here — they are
# `python -m` entry points, and importing them from the package would make
# runpy re-execute an already-imported module (RuntimeWarning).
from .report import log_sparkline, render_series, render_table1, series_csv  # noqa: F401
from .runner import BenchRow, full_scale, run_algorithms, run_one  # noqa: F401
