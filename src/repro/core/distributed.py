"""Distributed SDE: test-depth partitioning of one exploration tree.

:mod:`repro.core.parallel` parallelizes *independent dstate components*,
which leaves the common flood/dissemination case — one big connected
component — on a single worker.  This module implements the missing
strategy from "Distributed Symbolic Execution using Test-Depth
Partitioning" (PAPERS.md): split a single exploration tree **by depth**
into self-contained jobs and keep the pool busy with work-stealing.

Why depth and not an arbitrary graph cut: splitting a connected SDS
component at one instant is unsound — ``needs_fork`` decisions depend on
virtual states in *other* dstates of the component, so executing the
halves separately changes fork decisions and the trace.  But components
naturally **fracture** as execution deepens (states diverge, sharing
dissolves).  So the partitioner advances the engine in event slices and
cuts at the first frontier depth where the sharing graph has fractured
into enough components:

1. :func:`deepen_until_partitioned` runs ``probe_events``-sized slices,
   recomputing :func:`~repro.core.partition.partition_groups` after each,
   until there are at least ``min_partitions`` components with runnable
   states (or an explicit ``partition_depth`` is reached, or the run
   completes first — the degenerate sequential case).
2. Every cut lands on an **event boundary**: all states are quiescent,
   ``scheduler_snapshot`` is exact, and each job is a pickled
   :class:`~repro.core.parallel.WorkerTask` — an engine checkpoint
   (mapper payload + scheduler order + id watermarks) with the run's
   :meth:`EngineConfig.worker_variant` and a :class:`PathPrefix` summary
   of the path constraints delimiting the subtree.  The constraints
   themselves travel inside the snapshot (each shipped state carries its
   ``ConstraintSet``), which is what makes the job self-contained.
3. :class:`DistributedRunner` hands the jobs to a coordinator over a
   pluggable :class:`Transport` (an in-process ``multiprocessing`` pool
   now; a socket/queue backend only needs to move the same opaque
   messages).  Stragglers are rebalanced by **work-stealing**: an idle
   pool prompts a busy worker to re-partition its remaining frontier at
   its next event boundary and hand half back as fresh jobs.

Why the merged report is pinned identical to the sequential run: a cut
ships every live state to exactly one job, and a steal is just another
cut — the donor's partial slice is reported with *flow* counters only
(events, instructions, solver queries, stats, trace events) while all
*stock* totals (states, census, groups, errors, memory) come from the
terminal jobs, whose states are exactly the sequential run's.  So the
:class:`~repro.core.parallel.ParallelReport` merge argument applies
recursively, independent of worker count and steal timing.  State ids
remain volatile (as in parallel runs); semantic trace comparison is by
canonical multiset, which ignores them.

Failures reuse the typed-failure machinery from
:mod:`repro.core.resilience`: dead workers are detected by liveness
scans, jobs are retried with the same deterministic backoff policy, the
final crash/exception attempt runs inline, and ``SDE_CHAOS_KILL_WORKER``
kills every job's first subprocess attempt.  A donor that dies *after* a
steal reply costs nothing extra — the reply carries the kept half as a
fresh payload, so the retry resumes from the split, and a donor that
dies *before* replying simply retries the original job.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_module
import time as _time
from abc import ABC, abstractmethod
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.events import TraceEmitter
from .engine import RunReport, SDEEngine
from .parallel import (
    ParallelReport,
    WorkerResult,
    WorkerTask,
    restore_worker_engine,
    snapshot_assignment_tasks,
)
from .partition import (
    Partition,
    lpt_assign,
    partition_groups,
    projected_speedup,
    steal_split,
)
from .resilience import (
    RetryPolicy,
    WorkerFailure,
    chaos_kill_requested,
    raise_worker_failure,
)
from .stats import PROGRAM_IMAGE_COST_PER_INSTRUCTION

__all__ = [
    "DistributedReport",
    "DistributedRunner",
    "InlineTransport",
    "MultiprocessTransport",
    "PathPrefix",
    "Transport",
    "deepen_until_partitioned",
]

#: Events between a worker's steal-request polls.  Each poll is one
#: non-blocking queue read; the value bounds steal latency (a donor can
#: only hand work over at an event boundary it actually reaches).
DEFAULT_STEAL_CHECK_EVENTS = 64

#: Events per partitioner probe slice (adaptive mode).
DEFAULT_PROBE_EVENTS = 32

#: Adaptive-mode budget: if the sharing graph has not fractured within
#: this many events, distribute whatever components exist (possibly one —
#: the run then degrades to supervised sequential execution).
DEFAULT_PROBE_LIMIT_EVENTS = 4096

#: Seconds a worker that answered "nothing to steal" is left alone before
#: the coordinator asks again (its component may fracture later).
STEAL_RETRY_COOLDOWN_SECONDS = 0.5


class PathPrefix:
    """Summary of the path-prefix constraints delimiting one job's subtree.

    The actual constraints ship inside the job snapshot (every state
    carries its ``ConstraintSet``); this picklable summary travels next to
    the payload so the coordinator can log, meter, and attribute failures
    without unpickling engine state.
    """

    __slots__ = ("depth", "groups", "states", "conjuncts")

    def __init__(self, depth: int, groups: int, states: int, conjuncts: int):
        self.depth = depth
        self.groups = groups
        self.states = states
        self.conjuncts = conjuncts

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:
        return (
            f"PathPrefix(depth={self.depth}, groups={self.groups},"
            f" states={self.states}, conjuncts={self.conjuncts})"
        )


def _path_prefix(engine: SDEEngine, bundle: Sequence[Partition]) -> PathPrefix:
    """Build the :class:`PathPrefix` for one bundle of partitions."""
    sids = set()
    groups = 0
    for partition in bundle:
        sids.update(partition.state_sids)
        groups += len(partition.group_indices)
    conjuncts = 0
    for sid in sids:
        state = engine.states.get(sid)
        if state is not None:
            conjuncts += len(state.constraints)
    return PathPrefix(
        depth=engine.events_executed,
        groups=groups,
        states=len(sids),
        conjuncts=conjuncts,
    )


def deepen_until_partitioned(
    engine: SDEEngine,
    min_partitions: int,
    probe_events: int = DEFAULT_PROBE_EVENTS,
    probe_limit_events: Optional[int] = DEFAULT_PROBE_LIMIT_EVENTS,
    balance_workers: Optional[int] = None,
    balance_fraction: float = 0.8,
    trace: Optional[TraceEmitter] = None,
) -> List[Partition]:
    """Advance ``engine`` until its sharing graph has fractured.

    Runs ``probe_events``-sized slices and recomputes the component
    decomposition after each, returning the partition list of the first
    frontier with at least ``min_partitions`` components that still have
    runnable states.  With ``balance_workers`` set, the cut additionally
    waits until the LPT-projected speedup on that many workers reaches
    ``balance_fraction`` of linear — a frontier that has *just* fractured
    is typically lopsided, and cutting there trades the whole run's
    balance for a few hundred saved prefix events.  Returns whatever
    exists once ``probe_limit_events`` is exhausted or the run completes —
    callers must handle both the empty-frontier and the still-connected
    cases.
    """
    engine.run_until(split_events=0)  # boot states exist before probing
    while True:
        partitions = partition_groups(engine.mapper)
        runnable = {sid for _, sid in engine.scheduler_snapshot()}
        if not runnable or engine.aborted:
            return partitions
        live_partitions = [p for p in partitions if p.state_sids & runnable]
        live = len(live_partitions)
        if trace is not None:
            trace.emit(
                "worker.partition.deepen",
                events=engine.events_executed,
                partitions=live,
            )
        balanced = balance_workers is None or projected_speedup(
            live_partitions, balance_workers
        ) >= balance_fraction * balance_workers
        if live >= min_partitions and balanced:
            return partitions
        if (
            probe_limit_events is not None
            and engine.events_executed >= probe_limit_events
        ):
            return partitions
        before = engine.events_executed
        engine.run_until(split_events=before + probe_events)
        if engine.events_executed == before:
            return partitions  # horizon reached with entries still queued


# ---------------------------------------------------------------------------
# Transport: opaque message passing between the coordinator and workers
# ---------------------------------------------------------------------------
#
# Wire protocol (all messages are picklable tuples; the transport never
# inspects them beyond delivery):
#
#   coordinator -> worker:
#     ("job", job_id, payload_bytes, attempt)   run one job
#     ("steal", )                               re-partition and hand half back
#     ("stop", )                                exit the worker loop
#
#   worker -> coordinator:
#     ("done", worker, job_id, WorkerResult)    terminal result for job_id
#     ("steal_reply", worker, job_id, partial_result, kept_payload,
#       [(payload, PathPrefix), ...])           donor split: flow-only slice
#                                               result + its continuation +
#                                               the stolen jobs
#     ("steal_deny", worker, job_id)            single component, can't split
#     ("fail", worker, job_id, WorkerFailure)   worker survived an exception


class Transport(ABC):
    """Moves opaque messages between one coordinator and N workers.

    Implementations own worker lifecycle (:meth:`start`, :meth:`alive`,
    :meth:`restart`, :meth:`stop`) and message delivery (:meth:`send` to a
    specific worker, :meth:`recv` from any).  The coordinator guarantees it
    never sends a job to a worker it believes busy; workers queue anything
    unexpected until the current job finishes.
    """

    worker_count: int

    @abstractmethod
    def start(self) -> None:
        """Bring up ``worker_count`` workers."""

    @abstractmethod
    def send(self, worker: int, message: tuple) -> None:
        """Deliver ``message`` to ``worker``."""

    @abstractmethod
    def recv(self, timeout: float) -> Optional[tuple]:
        """Next worker message, or ``None`` after ``timeout`` seconds."""

    @abstractmethod
    def alive(self, worker: int) -> bool:
        """Whether ``worker`` can still make progress."""

    @abstractmethod
    def restart(self, worker: int) -> None:
        """Replace ``worker`` with a fresh one (dropping queued input)."""

    @abstractmethod
    def stop(self) -> None:
        """Tear everything down; never raises."""


def _execute_job(
    worker_index: int,
    job_id: int,
    payload: bytes,
    send,
    poll_steal,
    steal_check_events: int,
) -> None:
    """Run one job payload to completion, honouring steal requests.

    The engine advances in ``steal_check_events``-sized slices; between
    slices (an event boundary — states quiescent, snapshot exact) the
    worker polls for a steal request.  Granting one means: snapshot *all*
    local partitions, ship a flow-only partial result plus the stolen half
    plus our own continuation payload in a single atomic reply, then
    resume from the continuation.  The reply is self-delimiting: even if
    this worker dies right after sending it, the coordinator can finish
    the subtree from the kept/stolen payloads alone.
    """
    while True:
        task: WorkerTask = pickle.loads(payload)
        task.index = job_id  # result/trace attribution is coordinator-side
        engine = restore_worker_engine(task)
        image_cost = PROGRAM_IMAGE_COST_PER_INSTRUCTION * len(task.program.code)
        stolen = None
        while True:
            target = engine.events_executed + steal_check_events
            engine.run_until(split_events=target)
            if engine.events_executed < target or engine.aborted:
                engine._sample_and_check_caps(force=True)
                events = engine.trace.events if engine.trace is not None else []
                result = WorkerResult(
                    task, RunReport(engine), engine.state_census(), events
                )
                send(("done", worker_index, job_id, result))
                return
            if poll_steal is not None and poll_steal():
                stolen = _split_for_steal(engine, task, job_id, image_cost)
                if stolen is None:
                    send(("steal_deny", worker_index, job_id))
                    continue
                partial, kept_payload, stolen_jobs = stolen
                send(
                    (
                        "steal_reply",
                        worker_index,
                        job_id,
                        partial,
                        kept_payload,
                        stolen_jobs,
                    )
                )
                payload = kept_payload
                break  # restart from the kept half
        if stolen is None:  # pragma: no cover - defensive
            return


def _split_for_steal(
    engine: SDEEngine, task: WorkerTask, job_id: int, image_cost: int
) -> Optional[Tuple[WorkerResult, bytes, List[Tuple[bytes, PathPrefix]]]]:
    """Split a running engine in half; ``None`` when it cannot be split.

    Returns ``(partial_result, kept_payload, stolen_jobs)``.  The partial
    result covers the donor's slice up to this boundary with *flow*
    counters only: its stock totals are zeroed (and ``accounted_bytes``
    set to the shared-image sentinel) because every state lives on in
    exactly one of the kept/stolen payloads, whose terminal results will
    report them.
    """
    partitions = partition_groups(engine.mapper)
    runnable = {sid for _, sid in engine.scheduler_snapshot()}
    live = [p for p in partitions if p.state_sids & runnable]
    if len(live) < 2:
        return None

    def runnable_weight(partition: Partition) -> int:
        return len(partition.state_sids & runnable)

    # Balance the *remaining* work; quiescent partitions carry stock
    # states but no events, so they stay with the donor (same shipping
    # cost either way, one fewer restore on the thief).
    kept, given = steal_split(live, weight=runnable_weight)
    if not kept or not given:
        return None
    kept = kept + [p for p in partitions if not (p.state_sids & runnable)]
    tasks, _ = snapshot_assignment_tasks(engine, [kept, given], trace=task.trace)
    if len(tasks) < 2:  # pragma: no cover - steal_split guarantees both
        return None
    engine._sample_and_check_caps(force=True)
    events = engine.trace.events if engine.trace is not None else []
    partial = WorkerResult(task, RunReport(engine), {}, events)
    partial.total_states = 0
    partial.active_states = 0
    partial.group_count = 0
    partial.error_states = []
    partial.census = {}
    partial.accounted_bytes = image_cost
    stolen_jobs = [
        (pickle.dumps(job), _path_prefix(engine, given)) for job in tasks[1:]
    ]
    return partial, pickle.dumps(tasks[0]), stolen_jobs


def _job_worker_main(
    worker_index: int, inbox, outbox, steal_check_events: int
) -> None:  # pragma: no cover - subprocess
    """Pool-worker entry: serve job messages until told to stop.

    ``SDE_CHAOS_KILL_WORKER`` makes job attempts die unreported (like an
    OOM kill): every first attempt when set plain-truthy, a seeded
    per-(job, attempt) coin when set to a fractional probability.
    """
    import gc

    # Fork-started workers inherit the coordinator's whole heap.  Freeze it
    # so the cyclic GC never scans (and copy-on-write-unshares) inherited
    # pages — without this, a large parent heap multiplies across workers
    # and the run degrades to slower than sequential.
    gc.freeze()
    pending: deque = deque()

    def poll_steal() -> bool:
        try:
            message = inbox.get_nowait()
        except queue_module.Empty:
            return False
        if message[0] == "steal":
            return True
        pending.append(message)  # stop/unexpected: handle after this job
        return False

    while True:
        if pending:
            message = pending.popleft()
        else:
            message = inbox.get()
        tag = message[0]
        if tag == "stop":
            return
        if tag == "steal":
            # Raced with our own completion: nothing running here.
            outbox.put(("steal_deny", worker_index, -1))
            continue
        _, job_id, payload, attempt = message
        if chaos_kill_requested(attempt, token=f"job:{job_id}"):
            os._exit(137)
        try:
            _execute_job(
                worker_index,
                job_id,
                payload,
                outbox.put,
                poll_steal,
                steal_check_events,
            )
        except BaseException as exc:
            import traceback

            outbox.put(
                (
                    "fail",
                    worker_index,
                    job_id,
                    WorkerFailure(
                        task_index=job_id,
                        kind="exception",
                        message=str(exc),
                        exc_type=type(exc).__name__,
                        traceback=traceback.format_exc(),
                    ),
                )
            )


class MultiprocessTransport(Transport):
    """The in-process pool backend: one subprocess per worker.

    Per-worker inbox queues plus one shared outbox.  ``restart`` replaces
    the process *and* its inbox, so queued messages for a dead worker are
    dropped rather than replayed at a worker that never had the job.
    """

    def __init__(
        self,
        worker_count: int,
        start_method: Optional[str] = None,
        steal_check_events: int = DEFAULT_STEAL_CHECK_EVENTS,
    ) -> None:
        if worker_count < 1:
            raise ValueError("need at least one worker")
        self.worker_count = worker_count
        self.steal_check_events = steal_check_events
        import multiprocessing

        if start_method is not None:
            self._context = multiprocessing.get_context(start_method)
        else:
            try:
                self._context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                self._context = multiprocessing.get_context("spawn")
        self._inboxes: Dict[int, object] = {}
        self._processes: Dict[int, object] = {}
        self._outbox = None

    def start(self) -> None:
        self._outbox = self._context.Queue()
        for worker in range(self.worker_count):
            self._spawn(worker)

    def _spawn(self, worker: int) -> None:
        inbox = self._context.Queue()
        process = self._context.Process(
            target=_job_worker_main,
            args=(worker, inbox, self._outbox, self.steal_check_events),
        )
        process.daemon = True
        process.start()
        self._inboxes[worker] = inbox
        self._processes[worker] = process

    def send(self, worker: int, message: tuple) -> None:
        self._inboxes[worker].put(message)

    def recv(self, timeout: float) -> Optional[tuple]:
        try:
            return self._outbox.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def alive(self, worker: int) -> bool:
        process = self._processes.get(worker)
        return process is not None and process.is_alive()

    def restart(self, worker: int) -> None:
        process = self._processes.pop(worker, None)
        if process is not None:
            if process.is_alive():
                process.terminate()
            process.join()
        old_inbox = self._inboxes.pop(worker, None)
        if old_inbox is not None:
            old_inbox.close()
        self._spawn(worker)

    def stop(self) -> None:
        for worker, process in list(self._processes.items()):
            if process.is_alive():
                try:
                    self._inboxes[worker].put(("stop",))
                except Exception:  # pragma: no cover - queue already broken
                    pass
        deadline = _time.monotonic() + 2.0
        for process in self._processes.values():
            process.join(timeout=max(0.0, deadline - _time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join()
        self._processes.clear()
        self._inboxes.clear()


class InlineTransport(Transport):
    """Single in-process worker: jobs execute synchronously inside ``send``.

    The same pickle round-trip as subprocess workers (payloads are built
    and unpickled identically), no fork/spawn overhead, nothing to steal
    (one worker is never idle while another is busy) and chaos injection
    does not apply — killing the worker would kill the coordinator.  This
    is the ``workers=1`` backend and the determinism anchor for tests.
    """

    worker_count = 1

    def __init__(self) -> None:
        self._replies: deque = deque()

    def start(self) -> None:
        self._replies.clear()

    def send(self, worker: int, message: tuple) -> None:
        tag = message[0]
        if tag in ("stop",):
            return
        if tag == "steal":
            self._replies.append(("steal_deny", 0, -1))
            return
        _, job_id, payload, attempt = message
        try:
            _execute_job(0, job_id, payload, self._replies.append, None, 1)
        except BaseException as exc:
            import traceback

            self._replies.append(
                (
                    "fail",
                    0,
                    job_id,
                    WorkerFailure(
                        task_index=job_id,
                        kind="exception",
                        message=str(exc),
                        exc_type=type(exc).__name__,
                        traceback=traceback.format_exc(),
                    ),
                )
            )

    def recv(self, timeout: float) -> Optional[tuple]:
        if self._replies:
            return self._replies.popleft()
        return None

    def alive(self, worker: int) -> bool:
        return True

    def restart(self, worker: int) -> None:  # pragma: no cover - never dies
        pass

    def stop(self) -> None:
        self._replies.clear()


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


class _RunningJob:
    """Coordinator-side record of one in-flight job."""

    __slots__ = ("job_id", "attempt", "deadline")

    def __init__(self, job_id: int, attempt: int, deadline) -> None:
        self.job_id = job_id
        self.attempt = attempt
        self.deadline = deadline


class StealStats:
    """Work-stealing counters for the merged report."""

    __slots__ = ("requested", "granted", "denied")

    def __init__(self) -> None:
        self.requested = 0
        self.granted = 0
        self.denied = 0


class _Coordinator:
    """Drives jobs over a transport: dispatch, steal, supervise, retry.

    Failure semantics mirror :class:`~repro.core.resilience.WorkerSupervisor`:
    typed :class:`WorkerFailure` records, deterministic seeded backoff, an
    in-process final attempt for crash/exception failures (timeouts keep
    retrying in a subprocess), and ``allow_partial`` degrading exhausted
    jobs to report entries instead of raising.
    """

    def __init__(
        self,
        transport: Transport,
        jobs: List[Tuple[bytes, PathPrefix]],
        policy: RetryPolicy,
        steal: bool,
        run_inline,
        trace: Optional[TraceEmitter] = None,
        sleep=_time.sleep,
    ) -> None:
        self.transport = transport
        self.policy = policy
        self.steal_enabled = steal and transport.worker_count > 1
        self.run_inline = run_inline
        self.trace = trace
        self.sleep = sleep

        self.payloads: Dict[int, bytes] = {}
        self.prefixes: Dict[int, PathPrefix] = {}
        self._next_job_id = 0
        for payload, prefix in jobs:
            self._enqueue_new(payload, prefix)
        self.pending: deque = deque(sorted(self.payloads))
        self.attempts: Dict[int, int] = {}
        self.results: List[WorkerResult] = []
        self.failed: List[WorkerFailure] = []
        self.retries = 0
        self.steal_stats = StealStats()
        self.jobs_dispatched = 0
        self._outstanding = len(self.payloads)
        self._resolved: set = set()
        self._busy: Dict[int, _RunningJob] = {}
        self._steal_pending: set = set()
        self._steal_cooldown: Dict[int, float] = {}

    # -- public ------------------------------------------------------------

    def run(self) -> None:
        """Run every job (and every job stolen along the way) to an end."""
        if self._outstanding == 0:
            return
        self.transport.start()
        try:
            idle = set(range(self.transport.worker_count))
            while self._outstanding > 0:
                self._dispatch(idle)
                self._maybe_steal(idle)
                message = self.transport.recv(self.policy.poll_interval_seconds)
                if message is None:
                    self._scan_workers(idle)
                    continue
                self._handle(message, idle)
        finally:
            self.transport.stop()

    # -- internals ----------------------------------------------------------

    def _enqueue_new(self, payload: bytes, prefix: PathPrefix) -> int:
        job_id = self._next_job_id
        self._next_job_id += 1
        self.payloads[job_id] = payload
        self.prefixes[job_id] = prefix
        return job_id

    def _dispatch(self, idle: set) -> None:
        while self.pending and idle:
            worker = min(idle)
            if not self.transport.alive(worker):
                self.transport.restart(worker)
            job_id = self.pending.popleft()
            if job_id in self._resolved:  # pragma: no cover - defensive
                continue
            idle.discard(worker)
            attempt = self.attempts.get(job_id, 0)
            deadline = None
            if self.policy.task_timeout_seconds is not None:
                deadline = (_time.monotonic() + self.policy.task_timeout_seconds)
            self._busy[worker] = _RunningJob(job_id, attempt, deadline)
            self.jobs_dispatched += 1
            if self.trace is not None:
                self.trace.emit("worker.job.dispatch", job=job_id, attempt=attempt)
            self.transport.send(worker, ("job", job_id, self.payloads[job_id], attempt))

    def _maybe_steal(self, idle: set) -> None:
        if not self.steal_enabled or self.pending or not idle:
            return
        now = _time.monotonic()
        for worker in sorted(self._busy):
            if worker in self._steal_pending:
                continue
            if self._steal_cooldown.get(worker, 0.0) > now:
                continue
            self._steal_pending.add(worker)
            self.steal_stats.requested += 1
            if self.trace is not None:
                self.trace.emit("worker.steal.request", victim=worker)
            self.transport.send(worker, ("steal",))
            return  # one request per loop turn

    def _handle(self, message: tuple, idle: set) -> None:
        tag = message[0]
        if tag == "done":
            _, worker, job_id, result = message
            if job_id in self._resolved:
                return  # stale duplicate after a presumed-death requeue
            self._resolved.add(job_id)
            self._outstanding -= 1
            self.results.append(result)
            self._busy.pop(worker, None)
            self._steal_pending.discard(worker)
            idle.add(worker)
            if self.trace is not None:
                self.trace.emit("worker.job.done", job=job_id)
        elif tag == "steal_reply":
            _, worker, job_id, partial, kept_payload, stolen_jobs = message
            self._steal_pending.discard(worker)
            running = self._busy.get(worker)
            if (
                job_id in self._resolved
                or running is None
                or running.job_id != job_id
            ):
                # The whole job was (or will be) re-run from its pre-split
                # payload; the partial and the stolen half must be dropped
                # together or states would be double-counted.
                return
            self.steal_stats.granted += 1
            # Cooldown after a grant too: re-stealing from a donor that
            # just paid for a split/restore thrashes the run's tail.
            self._steal_cooldown[worker] = (
                _time.monotonic() + STEAL_RETRY_COOLDOWN_SECONDS
            )
            self.results.append(partial)
            # The donor continues from the kept half: a later crash must
            # retry only that half, not replay the reported slice.
            self.payloads[job_id] = kept_payload
            if running.deadline is not None:
                running.deadline = (
                    _time.monotonic() + self.policy.task_timeout_seconds
                )
            moved = 0
            for payload, prefix in stolen_jobs:
                self._enqueue_new(payload, prefix)
                self.pending.append(self._next_job_id - 1)
                self._outstanding += 1
                moved += prefix.states
            if self.trace is not None:
                self.trace.emit("worker.steal.grant", job=job_id, states=moved)
        elif tag == "steal_deny":
            _, worker, _job_id = message
            self._steal_pending.discard(worker)
            self._steal_cooldown[worker] = (
                _time.monotonic() + STEAL_RETRY_COOLDOWN_SECONDS
            )
            self.steal_stats.denied += 1
            if self.trace is not None:
                self.trace.emit("worker.steal.deny", job=_job_id)
        elif tag == "fail":
            _, worker, job_id, failure = message
            self._busy.pop(worker, None)
            self._steal_pending.discard(worker)
            idle.add(worker)
            if job_id not in self._resolved:
                self._job_failed(job_id, failure)

    def _scan_workers(self, idle: set) -> None:
        now = _time.monotonic()
        for worker, running in list(self._busy.items()):
            if not self.transport.alive(worker):
                # A flushed result may still be queued; prefer it over a
                # crash record (mirrors WorkerSupervisor's last drain).
                message = self.transport.recv(self.policy.poll_interval_seconds)
                if message is not None:
                    self._handle(message, idle)
                    return
                self._busy.pop(worker, None)
                self._steal_pending.discard(worker)
                self.transport.restart(worker)
                idle.add(worker)
                self._job_failed(
                    running.job_id,
                    self._make_failure(
                        running.job_id,
                        "crash",
                        "worker process died without reporting a result",
                    ),
                )
            elif running.deadline is not None and now > running.deadline:
                self._busy.pop(worker, None)
                self._steal_pending.discard(worker)
                self.transport.restart(worker)
                idle.add(worker)
                self._job_failed(
                    running.job_id,
                    self._make_failure(
                        running.job_id,
                        "timeout",
                        "job exceeded its wall-clock budget of"
                        f" {self.policy.task_timeout_seconds}s",
                    ),
                )

    def _make_failure(self, job_id: int, kind: str, message: str):
        prefix = self.prefixes.get(job_id)
        return WorkerFailure(
            task_index=job_id,
            kind=kind,
            message=message,
            state_count=prefix.states if prefix is not None else 0,
        )

    def _job_failed(self, job_id: int, failure: WorkerFailure) -> None:
        self.attempts[job_id] = self.attempts.get(job_id, 0) + 1
        failure.attempts = self.attempts[job_id]
        if not failure.state_count:
            prefix = self.prefixes.get(job_id)
            if prefix is not None:
                failure.state_count = prefix.states
        if self.trace is not None:
            self.trace.emit(
                "worker.crash",
                task=job_id,
                kind=failure.kind,
                exitcode=failure.exitcode,
                attempt=failure.attempts,
            )
        if failure.attempts > self.policy.max_retries:
            self._exhaust(job_id, failure)
            return
        self.retries += 1
        delay = self.policy.backoff_seconds(job_id, failure.attempts)
        if delay > 0:
            self.sleep(delay)
        if self.trace is not None:
            self.trace.emit("worker.retry", task=job_id, attempt=failure.attempts)
        final = failure.attempts == self.policy.max_retries
        if final and failure.kind != "timeout":
            # Last chance: run in the coordinator's process — immune to
            # worker loss.  Timeouts keep retrying in a subprocess; an
            # in-process attempt could not be killed.
            self._run_final_inline(job_id)
        else:
            self.pending.append(job_id)

    def _run_final_inline(self, job_id: int) -> None:
        try:
            result = self.run_inline(job_id, self.payloads[job_id])
        except BaseException as exc:  # noqa: BLE001 - classified below
            import traceback as traceback_module

            self.attempts[job_id] += 1
            failure = self._make_failure(job_id, "exception", str(exc))
            failure.exc_type = type(exc).__name__
            failure.traceback = traceback_module.format_exc()
            failure.attempts = self.attempts[job_id]
            self._exhaust(job_id, failure)
            return
        self._resolved.add(job_id)
        self._outstanding -= 1
        self.results.append(result)

    def _exhaust(self, job_id: int, failure: WorkerFailure) -> None:
        self._resolved.add(job_id)
        self._outstanding -= 1
        if self.policy.allow_partial:
            self.failed.append(failure)
            return
        raise_worker_failure(failure)


def _run_job_inline(job_id: int, payload: bytes) -> WorkerResult:
    """The coordinator's in-process final attempt at a job."""
    replies: List[tuple] = []
    _execute_job(0, job_id, payload, replies.append, None, 1)
    message = replies[-1]
    if message[0] != "done":  # pragma: no cover - _execute_job raises instead
        raise RuntimeError(f"inline job ended with {message[0]!r}")
    return message[3]


# ---------------------------------------------------------------------------
# Runner + report
# ---------------------------------------------------------------------------


class DistributedReport(ParallelReport):
    """Merged report of a distributed run.

    Reuses the :class:`~repro.core.parallel.ParallelReport` merge — the
    semantic totals are pinned identical to the sequential run for any
    worker count and any steal timing (see the module docstring) — and
    adds the distributed extras: ``partition_depth`` (the frontier cut, in
    events), ``jobs_dispatched`` and the ``steals`` counters.
    """

    def __init__(
        self,
        *,
        partition_depth: int,
        jobs_dispatched: int,
        steal_stats: StealStats,
        transport_name: str,
        **parallel_kwargs,
    ) -> None:
        # Set before super().__init__ so report_snapshot (called at the
        # end of the merge) already sees the distributed extras.
        self.partition_depth = partition_depth
        self.jobs_dispatched = jobs_dispatched
        self.steals_requested = steal_stats.requested
        self.steals_granted = steal_stats.granted
        self.steals_denied = steal_stats.denied
        self.transport_name = transport_name
        super().__init__(**parallel_kwargs)

    def summary(self) -> str:
        lines = [
            super().summary(),
            f"  partition depth  : {self.partition_depth} events"
            f" ({self.transport_name} transport)",
            f"  jobs dispatched  : {self.jobs_dispatched}",
            f"  steals           : {self.steals_granted} granted"
            f" / {self.steals_denied} denied"
            f" / {self.steals_requested} requested",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DistributedReport({self.algorithm}, workers={self.workers},"
            f" jobs={self.jobs_dispatched}, steals={self.steals_granted},"
            f" states={self.total_states}, partial={self.partial})"
        )


class DistributedRunner:
    """Run one scenario with depth partitioning over a worker pool.

    The pipeline: deepen the engine to the cut depth (adaptive probing by
    default, ``partition_depth`` for an explicit cut), emit each partition
    bundle as a self-contained job, and let the coordinator drive the jobs
    over the transport with work-stealing and supervised retries.  With
    ``workers=1`` (or a still-connected frontier) the run degrades to
    supervised sequential execution over the same pickle round-trip.
    """

    def __init__(
        self,
        scenario,
        algorithm: str = "sds",
        workers: int = 4,
        partition_depth: Optional[int] = None,
        min_partitions: Optional[int] = None,
        probe_events: int = DEFAULT_PROBE_EVENTS,
        probe_limit_events: Optional[int] = DEFAULT_PROBE_LIMIT_EVENTS,
        steal: bool = True,
        steal_check_events: int = DEFAULT_STEAL_CHECK_EVENTS,
        transport: Optional[Transport] = None,
        start_method: Optional[str] = None,
        trace: Optional[TraceEmitter] = None,
        retry_policy: Optional[RetryPolicy] = None,
        max_retries: Optional[int] = None,
        allow_partial: Optional[bool] = None,
        task_timeout_seconds: Optional[float] = None,
        **engine_overrides,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.scenario = scenario
        self.algorithm = algorithm
        self.workers = workers
        self.partition_depth = partition_depth
        self.min_partitions = (
            min_partitions if min_partitions is not None else 2 * workers
        )
        self.probe_events = probe_events
        self.probe_limit_events = probe_limit_events
        self.steal = steal
        self.steal_check_events = steal_check_events
        self.transport = transport
        self.start_method = start_method
        self.trace = trace
        policy = retry_policy if retry_policy is not None else RetryPolicy()
        replacements = {}
        if max_retries is not None:
            replacements["max_retries"] = max_retries
        if allow_partial is not None:
            replacements["allow_partial"] = allow_partial
        if task_timeout_seconds is not None:
            replacements["task_timeout_seconds"] = task_timeout_seconds
        if replacements:
            import dataclasses

            policy = dataclasses.replace(policy, **replacements)
        self.retry_policy = policy
        self.engine_overrides = engine_overrides

    def run(self) -> DistributedReport:
        from .scenario import build_engine

        started = _time.perf_counter()
        engine = build_engine(
            self.scenario,
            self.algorithm,
            trace=self.trace,
            **self.engine_overrides,
        )
        if self.partition_depth is not None:
            engine.run_until(split_events=self.partition_depth)
            partitions = partition_groups(engine.mapper)
        else:
            partitions = deepen_until_partitioned(
                engine,
                min_partitions=self.min_partitions,
                probe_events=self.probe_events,
                probe_limit_events=self.probe_limit_events,
                balance_workers=self.workers,
                trace=self.trace,
            )
        engine._sample_and_check_caps(force=True)
        prefix = RunReport(engine)
        prefix_census = engine.state_census()
        depth = engine.events_executed

        jobs: List[Tuple[bytes, PathPrefix]] = []
        if not engine.aborted and engine.scheduler_snapshot():
            assignment = [
                bundle
                for bundle in lpt_assign(partitions, self.workers)
                if bundle
            ]
            tasks, _ = snapshot_assignment_tasks(
                engine, assignment, trace=self.trace is not None
            )
            jobs = [
                (pickle.dumps(task), _path_prefix(engine, bundle))
                for task, bundle in zip(tasks, assignment)
            ]
        else:
            partitions = []
        if jobs and self.trace is not None:
            self.trace.emit(
                "worker.partition.start",
                partitions=len(partitions),
                states=sum(p.state_count() for p in partitions),
            )

        transport = self.transport
        if transport is None:
            if self.workers == 1 or len(jobs) <= 1:
                transport = InlineTransport()
            else:
                transport = MultiprocessTransport(
                    self.workers,
                    start_method=self.start_method,
                    steal_check_events=self.steal_check_events,
                )
        coordinator = _Coordinator(
            transport,
            jobs,
            policy=self.retry_policy,
            steal=self.steal,
            run_inline=_run_job_inline,
            trace=self.trace,
        )
        coordinator.run()
        results = sorted(coordinator.results, key=lambda w: (w.index, -w.total_states))
        if self.trace is not None:
            for worker in results:
                self.trace.extend(worker.events)
            self.trace.emit("worker.merge", workers=len(results))
        return DistributedReport(
            partition_depth=depth,
            jobs_dispatched=coordinator.jobs_dispatched,
            steal_stats=coordinator.steal_stats,
            transport_name=type(transport).__name__,
            prefix=prefix,
            prefix_census=prefix_census,
            worker_results=results,
            image_cost=(
                PROGRAM_IMAGE_COST_PER_INSTRUCTION * len(engine.program.code)
            ),
            partitions=partitions,
            workers=self.workers,
            split_ms=None,
            split_events=depth,
            runtime_seconds=_time.perf_counter() - started,
            failed_partitions=coordinator.failed,
            retries=coordinator.retries,
        )
