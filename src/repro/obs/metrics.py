"""The metrics registry: counters, gauges, histograms, one JSON contract.

Before this module, run statistics lived in ad-hoc ``as_dict`` bundles
(``MappingStats``, ``CacheStats``) and loose attributes, and every
benchmark reached into whichever internal it needed.  The registry gives
them one shape:

- **Counter** — monotone int (events executed, cache hits, forks);
- **Gauge** — last-written number (peak states, phase seconds);
- **Histogram** — power-of-two bucketed distribution (solver query sizes).

Snapshots are deterministic: sorted names, plain JSON types, no wall-clock
reads besides values that are explicitly time measurements.  The
``metrics`` snapshot of a run report (:func:`report_snapshot`) is the
stable contract consumed by ``benchmarks/``, ``repro trace check-metrics``
and the CI ``metrics-smoke`` job.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "report_snapshot",
    "save_metrics",
    "validate_metrics",
]

METRICS_SCHEMA_VERSION = 1

#: Histogram bucket upper bounds (inclusive); one overflow bucket follows.
DEFAULT_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-write-wins number."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Bucketed distribution of non-negative integers.

    Buckets are ``bounds`` upper limits (inclusive) plus one overflow
    bucket; the snapshot keeps count/total/min/max so merged worker
    histograms stay exact for those aggregates.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Iterable[int] = DEFAULT_BOUNDS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.buckets[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def data(self) -> dict:
        """The JSON form stored in snapshots."""
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @staticmethod
    def merge_data(parts: Iterable[dict]) -> dict:
        """Combine :meth:`data` dicts from workers into one (exact)."""
        merged: Optional[dict] = None
        for part in parts:
            if part is None:
                continue
            if merged is None:
                merged = {
                    "bounds": list(part["bounds"]),
                    "buckets": list(part["buckets"]),
                    "count": part["count"],
                    "total": part["total"],
                    "min": part["min"],
                    "max": part["max"],
                }
                continue
            if merged["bounds"] != list(part["bounds"]):
                raise ValueError("cannot merge histograms with different bounds")
            merged["buckets"] = [
                a + b for a, b in zip(merged["buckets"], part["buckets"])
            ]
            merged["count"] += part["count"]
            merged["total"] += part["total"]
            for key, pick in (("min", min), ("max", max)):
                values = [v for v in (merged[key], part[key]) if v is not None]
                merged[key] = pick(values) if values else None
        return merged if merged is not None else Histogram("empty").data()

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Named counters/gauges/histograms with a deterministic snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._labels: Dict[str, str] = {}

    # -- creation / lookup (idempotent by name) -----------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._require_fresh(name)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._require_fresh(name)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: Iterable[int] = DEFAULT_BOUNDS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._require_fresh(name)
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    def set_label(self, name: str, value: str) -> None:
        self._labels[name] = value

    def install_histogram_data(self, name: str, data: dict) -> None:
        """Attach pre-merged histogram data (worker round-trips)."""
        histogram = Histogram(name, data["bounds"])
        histogram.buckets = list(data["buckets"])
        histogram.count = data["count"]
        histogram.total = data["total"]
        histogram.min = data["min"]
        histogram.max = data["max"]
        self._histograms[name] = histogram

    def _require_fresh(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        ):
            raise ValueError(f"metric name {name!r} already used with another kind")

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-JSON snapshot with sorted, stable key order."""
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "labels": {k: self._labels[k] for k in sorted(self._labels)},
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].data()
                for name in sorted(self._histograms)
            },
        }


def report_snapshot(report) -> dict:
    """The metrics snapshot of one run report (sequential or parallel).

    ``report`` duck-types :class:`~repro.core.engine.RunReport`: the base
    fields plus the observability extras (``phases``, ``cache_stats``,
    ``solver_stats``, ``net_stats``, ``histograms``) both report classes
    now carry.  Parallel extras (worker/partition counters) are included
    when present.
    """
    registry = MetricsRegistry()
    registry.set_label("algorithm", report.algorithm)
    registry.set_label("aborted", str(bool(report.aborted)).lower())

    counters = {
        "run.events_executed": report.events_executed,
        "run.instructions": report.instructions,
        "states.total": report.total_states,
        "states.active": report.active_states,
        "states.error": len(report.error_states),
        "mapping.groups": report.group_count,
        "solver.queries": report.solver_queries,
    }
    for key, value in dict(report.mapping_stats).items():
        counters[f"mapping.{key}"] = value
    for key, value in dict(getattr(report, "solver_stats", {}) or {}).items():
        counters[f"solver.{key}"] = value
    cache_stats = getattr(report, "cache_stats", None)
    if cache_stats:
        for key, value in dict(cache_stats).items():
            counters[f"solver.cache.{key}"] = value
    for key, value in dict(getattr(report, "net_stats", {}) or {}).items():
        counters[f"net.{key}"] = value
    for key, value in dict(getattr(report, "reduce_stats", {}) or {}).items():
        counters[f"reduce.{key}"] = value
    phases = getattr(report, "phases", {}) or {}
    for name, data in phases.items():
        counters[f"phase.{name}.count"] = data["count"]
    counters["run.checkpoints_written"] = getattr(report, "checkpoints_written", 0)
    if hasattr(report, "workers"):
        counters["parallel.workers"] = report.workers
        counters["parallel.partitions"] = report.partition_count
        counters["parallel.prefix_events"] = report.prefix_events
        counters["parallel.retries"] = getattr(report, "retries", 0)
        counters["parallel.failed_partitions"] = len(
            getattr(report, "failed_partitions", ())
        )
    if hasattr(report, "partition_depth"):
        counters["distributed.partition_depth"] = report.partition_depth
        counters["distributed.jobs"] = report.jobs_dispatched
        counters["distributed.steals.requested"] = report.steals_requested
        counters["distributed.steals.granted"] = report.steals_granted
        counters["distributed.steals.denied"] = report.steals_denied
    for name, value in counters.items():
        registry.counter(name).value = int(value)

    gauges = {
        "run.runtime_seconds": round(report.runtime_seconds, 6),
        "run.virtual_ms": report.virtual_ms,
        "run.accounted_bytes": report.accounted_bytes,
        "run.peak_states": report.peak_states(),
        "run.peak_accounted_bytes": report.peak_accounted_bytes(),
        # Abort status as a gauge so dashboards can alert on it directly
        # (the "aborted" label carries the same bit as a string).
        "run.aborted": 1 if report.aborted else 0,
        "run.partial": 1 if getattr(report, "partial", False) else 0,
        "run.resumed": 1 if getattr(report, "resumed", False) else 0,
    }
    for name, data in phases.items():
        gauges[f"phase.{name}.seconds"] = round(data["seconds"], 6)
    if hasattr(report, "projected"):
        gauges["parallel.projected_speedup"] = round(report.projected, 4)
    for name, value in gauges.items():
        registry.gauge(name).set(value)

    for name, data in (getattr(report, "histograms", {}) or {}).items():
        if data is not None:
            registry.install_histogram_data(name, data)
    return registry.snapshot()


def save_metrics(snapshot: dict, path) -> None:
    """Write a metrics snapshot as pretty-printed JSON (atomically)."""
    from .fileio import atomic_write_text

    atomic_write_text(path, json.dumps(snapshot, indent=2, sort_keys=True) + "\n")


def validate_metrics(data) -> List[str]:
    """Schema-check a metrics snapshot; returns a list of problems.

    An empty list means the snapshot is well-formed.  This is the check
    CI's ``metrics-smoke`` job gates on (via ``repro trace check-metrics``).
    """
    errors: List[str] = []
    if not isinstance(data, dict):
        return ["metrics snapshot must be a JSON object"]
    if data.get("schema") != METRICS_SCHEMA_VERSION:
        errors.append(
            f"schema is {data.get('schema')!r},"
            f" expected {METRICS_SCHEMA_VERSION}"
        )
    for section in ("labels", "counters", "gauges", "histograms"):
        if not isinstance(data.get(section), dict):
            errors.append(f"missing or non-object section {section!r}")
    for name, value in (data.get("counters") or {}).items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(f"counter {name!r} must be a non-negative int")
    for name, value in (data.get("gauges") or {}).items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"gauge {name!r} must be a number")
    for name, value in (data.get("histograms") or {}).items():
        if not isinstance(value, dict):
            errors.append(f"histogram {name!r} must be an object")
            continue
        missing = {"bounds", "buckets", "count", "total"} - set(value)
        if missing:
            errors.append(f"histogram {name!r} missing {sorted(missing)}")
            continue
        if len(value["buckets"]) != len(value["bounds"]) + 1:
            errors.append(
                f"histogram {name!r} needs len(bounds)+1 buckets"
            )
        elif sum(value["buckets"]) != value["count"]:
            errors.append(f"histogram {name!r} bucket counts != count")
    for required in (
        "run.events_executed",
        "states.total",
        "mapping.groups",
        "solver.queries",
    ):
        if required not in (data.get("counters") or {}):
            errors.append(f"missing required counter {required!r}")
    return errors
