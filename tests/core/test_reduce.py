"""Symmetry + partial-order reduction (``repro.core.reduce``).

Four layers:

- the automorphism machinery (group sizes for the stock topologies,
  orbits, closure);
- the canonicalization property — ``canonicalize(permute(s)) ==
  canonicalize(s)`` for random reachable states under random
  automorphisms (hypothesis);
- the static receive-handler certification that guards POR;
- the reducer wired into the engine: pruning/sleeping/waking counters,
  verdict preservation, the uncertified-handler self-disable, and
  composition with the parallel and distributed runners.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    DistributedRunner,
    ParallelRunner,
    Scenario,
    Topology,
    build_engine,
)
from repro.core.reduce import (
    analyze_recv_handler,
    automorphisms,
    canonical_state_form,
    canonical_violations,
    delivery_independent,
    node_orbit,
    permute_state,
    state_fingerprint,
)
from repro.expr import add, bv, var
from repro.lang import compile_source
from repro.net.packet import Packet

#: Symbolic readings guarded by assertions: every reception forks on the
#: solver and one branch violates, so runs report real verdicts.
GUARDED = """
var seen = 0;

func on_boot() {
    timer_set(0, 40 + node_id() * 7);
}

func on_timer(id) {
    var buf[1];
    buf[0] = symbolic("reading", 8);
    bc_send(buf, 1);
}

func on_recv(src, len) {
    var v = recv_byte(0);
    assert(v < 200, 7);
    seen = seen + 1;
}
"""


def _guard_scenario(topology, horizon_ms=300):
    return Scenario(
        name=f"guarded-{topology.name}",
        program=GUARDED,
        topology=topology,
        horizon_ms=horizon_ms,
    )


class TestAutomorphisms:
    @pytest.mark.parametrize(
        "topology,order",
        [
            (Topology.line(3), 2),  # reflection
            (Topology.line(5), 2),
            (Topology.full_mesh(3), 6),  # S_3
            (Topology.ring(4), 8),  # dihedral D_4
            (Topology.ring(5), 10),  # dihedral D_5
            (Topology.grid(2, 2), 8),  # 2x2 lattice == 4-ring
            (Topology.grid(3, 2), 4),  # horizontal x vertical flips
        ],
        ids=lambda value: getattr(value, "name", value),
    )
    def test_group_orders(self, topology, order):
        assert len(automorphisms(topology)) == order

    def test_identity_always_present(self):
        for topology in (Topology.line(4), Topology.star(4)):
            autos = automorphisms(topology)
            assert tuple(range(topology.node_count)) in autos

    def test_group_closed_under_composition(self):
        autos = automorphisms(Topology.ring(4))
        group = set(autos)
        for left in autos:
            for right in autos:
                composed = tuple(left[right[i]] for i in range(len(right)))
                assert composed in group

    def test_orbits(self):
        line = Topology.line(3)
        autos = automorphisms(line)
        # Ends reflect onto each other; the middle is fixed.
        assert node_orbit(0, autos) == node_orbit(2, autos) == 0
        assert node_orbit(1, autos) == 1
        ring = Topology.ring(5)
        ring_autos = automorphisms(ring)
        assert {node_orbit(n, ring_autos) for n in range(5)} == {0}

    def test_truncation_keeps_identity(self):
        mesh = Topology.full_mesh(4)
        autos = automorphisms(mesh, limit=3)
        assert len(autos) == 3
        assert tuple(range(4)) in autos


# ---------------------------------------------------------------------------
# Canonicalization invariance (the tentpole property test)
# ---------------------------------------------------------------------------

_TOPOLOGIES = [
    Topology.line(3),
    Topology.ring(4),
    Topology.grid(2, 2),
    Topology.grid(3, 2),
]
_STATE_CACHE = {}


def _reachable_states(index):
    """All states (any status) of a sequential GUARDED run, cached."""
    if index not in _STATE_CACHE:
        topology = _TOPOLOGIES[index]
        engine = build_engine(_guard_scenario(topology), "sds")
        engine.run()
        _STATE_CACHE[index] = (
            list(engine.states.values()),
            automorphisms(topology),
        )
    return _STATE_CACHE[index]


class TestCanonicalInvariance:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_permuted_state_has_same_canonical_form(self, data):
        index = data.draw(
            st.integers(min_value=0, max_value=len(_TOPOLOGIES) - 1)
        )
        states, autos = _reachable_states(index)
        state = states[
            data.draw(st.integers(min_value=0, max_value=len(states) - 1))
        ]
        perm = autos[
            data.draw(st.integers(min_value=0, max_value=len(autos) - 1))
        ]
        assert canonical_state_form(
            permute_state(state, perm), autos
        ) == canonical_state_form(state, autos)

    def test_identity_permutation_is_noop_fingerprint(self):
        states, autos = _reachable_states(0)
        identity = tuple(range(3))
        for state in states[:10]:
            assert state_fingerprint(state, identity) == state_fingerprint(
                state
            )


# ---------------------------------------------------------------------------
# Static receive-handler certification (the POR guard)
# ---------------------------------------------------------------------------


def _analyze(recv_body):
    source = """
var total = 0;

func on_recv(src, len) {
%s
}
""" % recv_body
    return analyze_recv_handler(compile_source(source))


class TestHandlerAnalysis:
    def test_no_handler_certifies(self):
        ok, reason = analyze_recv_handler(
            compile_source("var x = 0;\nfunc on_boot() { x = 1; }\n")
        )
        assert ok and reason == "no receive handler"

    def test_commuting_increment_certifies(self):
        ok, reason = _analyze("    total = total + 1;")
        assert ok, reason
        ok, reason = _analyze("    var v = recv_byte(0);\n    total += 1;")
        assert ok, reason

    def test_guarded_workload_certifies(self):
        ok, reason = analyze_recv_handler(compile_source(GUARDED))
        assert ok, reason

    def test_overwriting_global_rejects(self):
        ok, reason = _analyze("    total = recv_byte(0);")
        assert not ok
        assert "non-commutative" in reason

    def test_send_in_handler_rejects(self):
        # Rejected for the indexed payload store before the send syscall
        # is even reached — either reason keeps POR off.
        ok, reason = _analyze(
            "    var buf[1];\n    buf[0] = 1;\n    bc_send(buf, 1);"
        )
        assert not ok

    def test_timer_in_handler_rejects(self):
        ok, reason = _analyze("    timer_set(0, 10);")
        assert not ok
        assert "impure syscall" in reason

    def test_call_rejects(self):
        source = """
var total = 0;
func helper() { total += 1; }
func on_recv(src, len) { helper(); }
"""
        ok, reason = analyze_recv_handler(compile_source(source))
        assert not ok
        assert "call" in reason


class TestDeliveryIndependence:
    def test_same_source_is_dependent(self):
        a = Packet(src=0, dest=1, payload=(1,), sent_at=10)
        b = Packet(src=0, dest=2, payload=(2,), sent_at=10)
        assert not delivery_independent(a, b)

    def test_concrete_disjoint_sources_are_independent(self):
        a = Packet(src=0, dest=2, payload=(1,), sent_at=10)
        b = Packet(src=1, dest=2, payload=(2,), sent_at=10)
        assert delivery_independent(a, b)

    def test_shared_symbolic_variable_is_dependent(self):
        reading = var("n0.reading0", 8)
        a = Packet(src=0, dest=2, payload=(reading,), sent_at=10)
        b = Packet(
            src=1, dest=2, payload=(add(reading, bv(1, 8)),), sent_at=20
        )
        assert not delivery_independent(a, b)

    def test_distinct_symbolic_variables_are_independent(self):
        a = Packet(src=0, dest=2, payload=(var("n0.r0", 8),), sent_at=10)
        b = Packet(src=1, dest=2, payload=(var("n1.r0", 8),), sent_at=10)
        assert delivery_independent(a, b)


# ---------------------------------------------------------------------------
# The reducer wired into the engine
# ---------------------------------------------------------------------------


class TestReducerInEngine:
    def test_grid_guard_prunes_sleeps_and_wakes(self):
        topology = Topology.grid(2, 2)
        off = build_engine(_guard_scenario(topology, 400), "sds").run()
        on = build_engine(
            _guard_scenario(topology, 400), "sds", symmetry=True, por=True
        ).run()
        assert on.total_states < off.total_states
        counters = on.metrics["counters"]
        assert counters["reduce.pruned"] >= 1
        assert counters["reduce.slept_twins"] >= 1
        assert counters["reduce.woken"] >= 1
        assert counters["reduce.disabled"] == 0
        assert canonical_violations(on, topology) == canonical_violations(
            off, topology
        )

    @pytest.mark.parametrize("algorithm", ["cob", "cow", "sds"])
    def test_verdicts_preserved_across_algorithms(self, algorithm):
        topology = Topology.ring(4)
        off = build_engine(_guard_scenario(topology), algorithm).run()
        on = build_engine(
            _guard_scenario(topology), algorithm, symmetry=True, por=True
        ).run()
        assert canonical_violations(off, topology)  # the gate is not vacuous
        assert canonical_violations(on, topology) == canonical_violations(
            off, topology
        )
        assert on.total_states <= off.total_states

    def test_uncertified_handler_self_disables(self):
        # Rebroadcasting inside on_recv is not POR-safe (a parked state
        # would suppress its sends), so the reducer must switch itself
        # off and change nothing.
        relay = """
var fwd = 0;

func on_boot() {
    if (node_id() == 0) { timer_set(0, 50); }
}

func on_timer(id) {
    var buf[1];
    buf[0] = symbolic("x", 8);
    bc_send(buf, 1);
}

func on_recv(src, len) {
    if (fwd < 1) {
        var buf[1];
        buf[0] = recv_byte(0);
        bc_send(buf, 1);
    }
    fwd += 1;
}
"""

        def scenario():
            return Scenario(
                name="relay-line",
                program=relay,
                topology=Topology.line(3),
                horizon_ms=200,
            )

        off = build_engine(scenario(), "sds").run()
        on = build_engine(
            scenario(), "sds", symmetry=True, por=True
        ).run()
        counters = on.metrics["counters"]
        assert counters["reduce.disabled"] == 1
        assert counters["reduce.pruned"] == 0
        assert counters["reduce.slept_twins"] == 0
        assert on.total_states == off.total_states
        assert on.group_count == off.group_count
        assert on.events_executed == off.events_executed

    def test_reduction_off_exposes_no_counters(self):
        report = build_engine(
            _guard_scenario(Topology.line(3)), "sds"
        ).run()
        assert not any(
            key.startswith("reduce.")
            for key in report.metrics["counters"]
        )

    def test_composes_with_parallel_runner(self):
        topology = Topology.ring(4)
        sequential = build_engine(
            _guard_scenario(topology), "sds", symmetry=True, por=True
        ).run()
        parallel = ParallelRunner(
            _guard_scenario(topology),
            "sds",
            workers=2,
            symmetry=True,
            por=True,
        ).run()
        assert parallel.total_states == sequential.total_states
        assert canonical_violations(
            parallel, topology
        ) == canonical_violations(sequential, topology)
        merged = parallel.metrics["counters"]
        assert merged["reduce.slept_twins"] >= 1

    def test_composes_with_distributed_runner(self):
        topology = Topology.ring(4)
        off = build_engine(_guard_scenario(topology), "sds").run()
        distributed = DistributedRunner(
            _guard_scenario(topology),
            "sds",
            workers=2,
            probe_events=2,
            symmetry=True,
            por=True,
        ).run()
        assert canonical_violations(
            distributed, topology
        ) == canonical_violations(off, topology)
        assert distributed.total_states < off.total_states
        assert distributed.metrics["counters"]["reduce.slept_twins"] >= 1
