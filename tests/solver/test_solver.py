"""End-to-end solver tests: satisfiability decisions, models, entailment,
plus the brute-force hypothesis oracle over small domains."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import (
    add,
    bv,
    bvand,
    bvxor,
    eq,
    evaluate,
    mul,
    ne,
    not_,
    or_,
    sle,
    slt,
    sub,
    ule,
    ult,
    var,
    zext,
)
from repro.solver import Model, Solver, UnsatisfiableError

X = var("x")
Y = var("y")
Z = var("z")


@pytest.fixture
def solver():
    return Solver()


class TestBasicQueries:
    def test_empty_query_is_sat(self, solver):
        model = solver.check([])
        assert model is not None and len(model) == 0

    def test_simple_equality(self, solver):
        model = solver.check([eq(X, bv(42))])
        assert model["x"] == 42

    def test_contradiction(self, solver):
        assert solver.check([eq(X, bv(1)), eq(X, bv(2))]) is None

    def test_range_constraints(self, solver):
        model = solver.check([ult(X, bv(50)), ult(bv(40), X)])
        assert 41 <= model["x"] <= 49

    def test_figure1_paths(self, solver):
        """The four paths of the paper's Figure 1 are all satisfiable and
        yield values matching the respective path conditions."""
        x_eq_0 = eq(X, bv(0))
        x_lt_50 = slt(X, bv(50))
        x_gt_10 = slt(bv(10), X)
        # Path 1: x == 0
        m1 = solver.check([x_eq_0])
        assert m1["x"] == 0
        # Path 2: x != 0 && x < 50 && x > 10
        m2 = solver.check([not_(x_eq_0), x_lt_50, x_gt_10])
        assert 10 < m2["x"] < 50
        # Path 3: x != 0 && x < 50 && x <= 10
        m3 = solver.check([not_(x_eq_0), x_lt_50, not_(x_gt_10)])
        v3 = m3["x"]
        sv3 = v3 if v3 < 2**31 else v3 - 2**32
        assert sv3 != 0 and sv3 <= 10
        # Path 4: x >= 50
        m4 = solver.check([not_(x_lt_50)])
        v4 = m4["x"]
        sv4 = v4 if v4 < 2**31 else v4 - 2**32
        assert sv4 >= 50

    def test_signed_constraints(self, solver):
        model = solver.check([slt(X, bv(0))])
        assert model["x"] >= 2**31  # negative as unsigned

    def test_linear_arithmetic(self, solver):
        # x + y == 10, x == 2*y  ->  y could be e.g. 3.33 -- over integers
        # pick x=10-y and x=2y => 3y=10: unsat over exact integers? No:
        # 3y==10 has no integer solution in [0..], but wrapping makes some
        # huge y work modulo 2^32 only if 3y = 10 mod 2^32 -- y exists since
        # gcd(3, 2^32)=1.  Verify the solver finds it or times out cleanly.
        model = solver.check(
            [eq(add(X, Y), bv(10)), eq(X, mul(Y, bv(2))), ult(Y, bv(100))]
        )
        assert model is None  # no small solution below 100

    def test_byte_arithmetic(self, solver):
        b = var("pkt0", 8)
        model = solver.check([eq(add(b, bv(1, 8)), bv(0, 8))])
        assert model["pkt0"] == 255

    def test_model_satisfies(self, solver):
        constraints = [ult(X, bv(100)), ne(X, bv(0)), ule(bv(90), X)]
        model = solver.check(constraints)
        assert model.satisfies(constraints)

    def test_get_model_raises_on_unsat(self, solver):
        with pytest.raises(UnsatisfiableError):
            solver.get_model([eq(X, bv(1)), ne(X, bv(1))])

    def test_disjunction(self, solver):
        model = solver.check([or_(eq(X, bv(3)), eq(X, bv(7))), ne(X, bv(3))])
        assert model["x"] == 7

    def test_xor_inversion(self, solver):
        model = solver.check([eq(bvxor(X, bv(0xFF)), bv(0x0F))])
        assert model["x"] == 0xF0

    def test_bit_masking(self, solver):
        model = solver.check([eq(bvand(X, bv(0xFF)), bv(0xAB)), ult(X, bv(256))])
        assert model["x"] == 0xAB

    def test_widening(self, solver):
        b = var("drop", 1)
        model = solver.check([eq(zext(b, 32), bv(1))])
        assert model["drop"] == 1


class TestEntailment:
    def test_must_be_true(self, solver):
        constraints = [eq(X, bv(5))]
        assert solver.must_be_true(constraints, ult(X, bv(10)))
        assert not solver.must_be_true(constraints, ult(X, bv(5)))

    def test_may_be_true(self, solver):
        constraints = [ult(X, bv(10))]
        assert solver.may_be_true(constraints, eq(X, bv(3)))
        assert not solver.may_be_true(constraints, eq(X, bv(30)))

    def test_both_branches_feasible(self, solver):
        # The canonical fork check: under x != 0, both (x < 50) and
        # (x >= 50) are possible.
        constraints = [ne(X, bv(0))]
        cond = ult(X, bv(50))
        assert solver.may_be_true(constraints, cond)
        assert solver.may_be_true(constraints, not_(cond))


class TestIndependence:
    def test_independent_groups_merge(self, solver):
        model = solver.check([eq(X, bv(1)), eq(Y, bv(2)), eq(Z, bv(3))])
        assert (model["x"], model["y"], model["z"]) == (1, 2, 3)

    def test_unsat_in_one_group_kills_query(self, solver):
        assert (
            solver.check([eq(X, bv(1)), eq(Y, bv(2)), ne(Y, bv(2))]) is None
        )

    def test_transitive_dependency(self, solver):
        model = solver.check(
            [eq(X, Y), eq(Y, Z), eq(Z, bv(9))]
        )
        assert model["x"] == model["y"] == model["z"] == 9


class TestCaching:
    def test_exact_cache_hit(self):
        solver = Solver()
        constraints = [eq(X, bv(5)), ult(Y, bv(3))]
        solver.check(constraints)
        before = solver.cache_stats()
        solver.check(constraints)
        after = solver.cache_stats()
        assert after["hit.exact"] > before["hit.exact"]

    def test_model_reuse_on_superset(self):
        solver = Solver()
        m1 = solver.check([ult(X, bv(10))])
        # The new conjunct is satisfied by the old model (models prefer
        # small values, so x==0 works for both queries).
        solver.check([ult(X, bv(10)), ult(X, bv(50))])
        stats = solver.cache_stats()
        assert stats["hit.exact"] + stats["hit.model"] >= 1
        assert m1 is not None

    def test_cache_disabled(self):
        solver = Solver(use_cache=False)
        assert solver.check([eq(X, bv(5))])["x"] == 5
        assert solver.cache_stats() is None

    def test_unsat_cached(self):
        solver = Solver()
        # Shaped so canonicalization cannot prove UNSAT analytically (the
        # left sides are arithmetic, not bare variables) — the query must
        # reach the backend once and the cache thereafter.
        query = [eq(add(X, bv(1)), bv(0)), eq(add(X, bv(2)), bv(0))]
        assert solver.check(query) is None
        assert solver.check(query) is None
        assert solver.cache_stats()["hit.exact"] >= 1


class TestModel:
    def test_restricted_to(self):
        model = Model({"x": 1, "y": 2})
        restricted = model.restricted_to([X])
        assert "x" in restricted and "y" not in restricted

    def test_merge(self):
        merged = Model({"x": 1}).merged_with(Model({"y": 2}))
        assert merged["x"] == 1 and merged["y"] == 2

    def test_satisfies_defaults_missing_to_zero(self):
        model = Model({})
        assert model.satisfies([eq(X, bv(0))])
        assert not model.satisfies([eq(X, bv(1))])

    def test_equality_and_hash(self):
        assert Model({"x": 1}) == Model({"x": 1})
        assert hash(Model({"x": 1})) == hash(Model({"x": 1}))
        assert Model({"x": 1}) != Model({"x": 2})


# ---------------------------------------------------------------------------
# Brute-force oracle over tiny widths: solver decision == enumeration.
# ---------------------------------------------------------------------------

_A4 = var("a4", 4)
_B4 = var("b4", 4)

_atom_builders = [
    lambda c: eq(_A4, bv(c, 4)),
    lambda c: ne(_A4, bv(c, 4)),
    lambda c: ult(_A4, bv(c, 4)),
    lambda c: ule(bv(c, 4), _B4),
    lambda c: slt(_A4, bv(c, 4)),
    lambda c: sle(_B4, bv(c, 4)),
    lambda c: eq(add(_A4, _B4), bv(c, 4)),
    lambda c: ult(sub(_A4, _B4), bv(c, 4)),
    lambda c: eq(bvand(_A4, bv(0b101, 4)), bv(c % 6, 4)),
    lambda c: ne(bvxor(_A4, _B4), bv(c, 4)),
    lambda c: ult(mul(_A4, bv(3, 4)), bv(c, 4)),
]


@st.composite
def _random_query(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    atoms = []
    for _ in range(n):
        builder = draw(st.sampled_from(_atom_builders))
        c = draw(st.integers(min_value=0, max_value=15))
        atom = builder(c)
        if draw(st.booleans()):
            atom = not_(atom)
        atoms.append(atom)
    if draw(st.booleans()) and len(atoms) >= 2:
        atoms = [or_(atoms[0], atoms[1])] + atoms[2:]
    return atoms


class TestBruteForceOracle:
    @settings(max_examples=300, deadline=None)
    @given(_random_query())
    def test_matches_enumeration(self, constraints):
        solver = Solver(use_cache=False)
        model = solver.check(constraints)
        brute_sat = any(
            all(evaluate(c, {"a4": a, "b4": b}) for c in constraints)
            for a in range(16)
            for b in range(16)
        )
        if brute_sat:
            assert model is not None, f"solver said unsat, brute force found sat: {constraints}"
            assert model.satisfies(constraints)
        else:
            assert model is None, f"solver said sat for unsat query: {constraints}"
