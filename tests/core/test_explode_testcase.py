"""Dscenario explosion and test-case generation."""


from repro import Scenario, Topology, build_engine
from repro.core import (
    COWMapper,
    SDSMapper,
    explosion_count,
    generate_incrementally,
    iter_dscenarios,
)
# Aliased imports: bare names starting with "test" would be collected by
# pytest as test functions.
from repro.core import testcase_for_dscenario as make_dscenario_testcase
from repro.core import testcase_for_state as make_state_testcase
from repro.core import testcases_for_errors as make_error_testcases
from repro.net import SymbolicPacketDrop
from repro.solver import Solver

from .helpers import MapperHarness


class TestIterDscenarios:
    def test_single_dstate_product(self):
        harness = MapperHarness(COWMapper(), node_count=3)
        harness.branch(harness.initial[0])
        harness.branch(harness.initial[2], ways=3)
        scenarios = list(iter_dscenarios(harness.mapper))
        assert len(scenarios) == 2 * 1 * 3
        assert explosion_count(harness.mapper) == 6
        for scenario in scenarios:
            assert sorted(scenario) == [0, 1, 2]
            for node, state in scenario.items():
                assert state.node == node

    def test_enumeration_is_lazy(self):
        harness = MapperHarness(COWMapper(), node_count=2)
        harness.branch(harness.initial[0], ways=4)
        iterator = iter_dscenarios(harness.mapper)
        first = next(iterator)
        assert first[0] is harness.initial[0]

    def test_sds_counts_virtual_products(self):
        harness = MapperHarness(SDSMapper(), node_count=3)
        node0 = harness.initial[0]
        harness.branch(node0)
        harness.transmit(node0, 1)
        # Two dstates, each 1x1x1 as virtuals -> 2 dscenarios.
        assert explosion_count(harness.mapper) == 2


class TestTestcaseGeneration:
    def scenario(self):
        source = """
        var got;
        func on_boot() {
            if (node_id() == 1) { timer_set(0, 10); }
        }
        func on_timer(tid) {
            var buf[1];
            buf[0] = symbolic("reading", 8);
            uc_send(0, buf, 1);
        }
        func on_recv(src, len) {
            got = recv_byte(0);
            if (got == 200) { fail(5); }
        }
        """
        return Scenario(
            name="tc",
            program=source,
            topology=Topology.line(2),
            horizon_ms=100,
            failure_factory=lambda: [SymbolicPacketDrop([0])],
        )

    def test_testcase_for_error_state(self):
        engine = build_engine(self.scenario(), "sds")
        report = engine.run()
        assert len(report.error_states) == 1
        testcase = make_state_testcase(report.error_states[0], engine.solver)
        assert testcase is not None
        assert testcase.error.code == 5
        assert testcase.assignments == {"n0.drop": 0}  # received, not dropped
        # The *reading* variable belongs to node 1; solve the dscenario to
        # pin it (joint constraints name it).
        model = engine.solver.get_model(report.error_states[0].constraints)
        assert model["n1.reading"] == 200

    def test_distributed_testcase_joint_solving(self):
        engine = build_engine(self.scenario(), "sds")
        report = engine.run()
        error_state = report.error_states[0]
        # Find a dscenario containing the error state.
        containing = [
            members
            for members in iter_dscenarios(engine.mapper)
            if any(m is error_state for m in members.values())
        ]
        assert containing
        testcase = make_dscenario_testcase(containing[0], engine.solver)
        assert testcase.feasible
        assert testcase.assignments["n1.reading"] == 200
        assert testcase.errors()[0].code == 5

    def test_incremental_generation_covers_all(self):
        engine = build_engine(self.scenario(), "sds")
        engine.run()
        testcases = list(
            generate_incrementally(engine.mapper, engine.solver)
        )
        assert len(testcases) == explosion_count(engine.mapper)
        assert all(tc.feasible for tc in testcases)

    def test_incremental_generation_limit(self):
        engine = build_engine(self.scenario(), "sds")
        engine.run()
        limited = list(
            generate_incrementally(engine.mapper, engine.solver, limit=2)
        )
        assert len(limited) == 2

    def test_testcases_for_errors(self):
        engine = build_engine(self.scenario(), "sds")
        report = engine.run()
        cases = make_error_testcases(report.error_states, engine.solver)
        assert len(cases) == 1
        assert "node 0" in cases[0].describe()

    def test_inputs_for_node(self):
        engine = build_engine(self.scenario(), "sds")
        engine.run()
        testcase = next(
            generate_incrementally(engine.mapper, engine.solver)
        )
        node1_inputs = testcase.inputs_for_node(1)
        assert all(name.startswith("n1.") for name in node1_inputs)

    def test_infeasible_state_yields_none(self):
        from repro.expr import bv, eq, var
        from repro.vm.state import ExecutionState

        state = ExecutionState(0, 2)
        state.add_constraint(eq(var("x", 8), bv(1, 8)))
        state.add_constraint(eq(var("x", 8), bv(2, 8)))
        assert make_state_testcase(state, Solver()) is None


class TestReplayOfDistributedTestcase:
    def test_error_testcase_replays_concretely(self):
        """The generated inputs, wired back in as concrete values, must
        reproduce the failure deterministically — the promise of SDE."""
        template = """
        var got;
        func on_boot() {{
            if (node_id() == 1) {{ timer_set(0, 10); }}
        }}
        func on_timer(tid) {{
            var buf[1];
            buf[0] = {reading};
            uc_send(0, buf, 1);
        }}
        func on_recv(src, len) {{
            got = recv_byte(0);
            if (got == 200) {{ fail(5); }}
        }}
        """
        symbolic_scenario = Scenario(
            name="sym",
            program=template.format(reading='symbolic("reading", 8)'),
            topology=Topology.line(2),
            horizon_ms=100,
        )
        engine = build_engine(symbolic_scenario, "sds")
        report = engine.run()
        model = engine.solver.get_model(report.error_states[0].constraints)
        reading = model["n1.reading"]

        replay_scenario = Scenario(
            name="replay",
            program=template.format(reading=reading),
            topology=Topology.line(2),
            horizon_ms=100,
        )
        replay_engine = build_engine(replay_scenario, "sds")
        replay_report = replay_engine.run()
        assert len(replay_report.error_states) == 1
        assert replay_report.error_states[0].error.code == 5
