"""Shared helpers for core tests: tiny hand-driven mapper harnesses.

These bypass the engine so tests can drive the mapping algorithms through
the exact situations of the paper's figures: make states, branch them,
transmit packets, and inspect the resulting structure.
"""

from __future__ import annotations

import itertools
from typing import Dict, List

from repro.core.mapping import StateMapper
from repro.vm.state import ExecutionState

_pids = itertools.count(1000)


class MapperHarness:
    """Drives a StateMapper directly, playing the engine's role."""

    def __init__(self, mapper: StateMapper, node_count: int) -> None:
        self.mapper = mapper
        self.spawned: List[ExecutionState] = []
        self.states: List[ExecutionState] = []
        mapper.bind(self._spawn)
        initial = [ExecutionState(node, memory_size=4) for node in range(node_count)]
        self.states.extend(initial)
        self.initial = initial
        mapper.register_initial(initial)

    def _spawn(self, state: ExecutionState) -> None:
        self.spawned.append(state)
        self.states.append(state)

    # -- engine-like operations -------------------------------------------------

    def branch(self, state: ExecutionState, ways: int = 2) -> List[ExecutionState]:
        """Simulate a local symbolic branch: fork ``ways - 1`` siblings."""
        children = []
        for index in range(ways - 1):
            child = state.fork()
            # Distinguish configurations like a real branch would.
            child.memory[0] = index + 1
            children.append(child)
            self.states.append(child)
        self.mapper.on_local_fork(state, children)
        return children

    def transmit(
        self, sender: ExecutionState, dest_node: int
    ) -> List[ExecutionState]:
        """Map + deliver one packet; returns the receivers."""
        pid = next(_pids)
        receivers = self.mapper.map_transmission(sender, dest_node)
        sender.record_sent(pid, dest_node)
        for receiver in receivers:
            receiver.record_received(pid, sender.node)
            receiver.memory[1] += 1  # "the packet changed the receiver"
        return receivers

    # -- inspection -----------------------------------------------------------------

    def states_of(self, node: int) -> List[ExecutionState]:
        return [s for s in self.states if s.node == node]

    def check(self) -> None:
        self.mapper.check_invariants()

    def total_states(self) -> int:
        return len(self.states)

    def duplicate_configs(self) -> List[tuple]:
        """Config keys occurring more than once (duplicates, paper's sense)."""
        seen: Dict[tuple, int] = {}
        for state in self.states:
            key = state.config_key()
            seen[key] = seen.get(key, 0) + 1
        return [key for key, count in seen.items() if count > 1]
