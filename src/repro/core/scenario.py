"""Scenario configuration — the public entry point for running SDE.

A :class:`Scenario` bundles everything an SDE run needs (guest program,
topology, horizon, failure configuration, presets); :func:`run_scenario`
executes it under a chosen state-mapping algorithm.  KleeNet is configured
"using a configuration file" — Scenario is that file as a Python object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..lang.bytecode import CompiledProgram
from ..lang.compiler import compile_source
from ..net.failures import FailureModel
from ..net.topology import Topology
from ..solver import Solver
from .cob import COBMapper
from .cow import COWMapper
from .engine import PresetValue, RunReport, SDEEngine
from .mapping import StateMapper
from .sds import SDSMapper

__all__ = ["Scenario", "make_mapper", "build_engine", "run_scenario", "ALGORITHMS"]

ALGORITHMS = ("cob", "cow", "sds")

_MAPPERS: Dict[str, Callable[[], StateMapper]] = {
    "cob": COBMapper,
    "cow": COWMapper,
    "sds": SDSMapper,
}


def make_mapper(algorithm: str) -> StateMapper:
    """Instantiate a state-mapping algorithm by name ('cob'/'cow'/'sds')."""
    try:
        return _MAPPERS[algorithm]()
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
        ) from None


@dataclass
class Scenario:
    """A complete SDE test setup."""

    name: str
    program: Union[str, CompiledProgram]
    topology: Topology
    horizon_ms: int
    #: factory producing fresh failure models per run (models hold no state,
    #: but a factory keeps runs fully independent).
    failure_factory: Callable[[], Sequence[FailureModel]] = tuple
    preset_globals: Dict[str, PresetValue] = field(default_factory=dict)
    latency_ms: int = 1
    boot_times: Optional[List[int]] = None
    max_states: Optional[int] = None
    max_accounted_bytes: Optional[int] = None
    max_wall_seconds: Optional[float] = None
    sample_every_events: int = 64

    def compiled(self) -> CompiledProgram:
        if isinstance(self.program, CompiledProgram):
            return self.program
        compiled = compile_source(self.program)
        self.program = compiled  # compile once, reuse across runs
        return compiled

    @property
    def node_count(self) -> int:
        return self.topology.node_count


def build_engine(
    scenario: Scenario,
    algorithm: str = "sds",
    check_invariants: bool = False,
    solver: Optional[Solver] = None,
    **overrides,
) -> SDEEngine:
    """Construct (but do not run) an engine for ``scenario``."""
    params = dict(
        program=scenario.compiled(),
        topology=scenario.topology,
        mapper=make_mapper(algorithm),
        horizon_ms=scenario.horizon_ms,
        failure_models=list(scenario.failure_factory()),
        preset_globals=scenario.preset_globals,
        latency_ms=scenario.latency_ms,
        boot_times=scenario.boot_times,
        max_states=scenario.max_states,
        max_accounted_bytes=scenario.max_accounted_bytes,
        max_wall_seconds=scenario.max_wall_seconds,
        sample_every_events=scenario.sample_every_events,
        check_invariants=check_invariants,
        solver=solver if solver is not None else Solver(),
    )
    params.update(overrides)
    return SDEEngine(**params)


def run_scenario(
    scenario: Scenario,
    algorithm: str = "sds",
    check_invariants: bool = False,
    **overrides,
) -> RunReport:
    """Run ``scenario`` under ``algorithm`` and return the report."""
    engine = build_engine(
        scenario, algorithm, check_invariants=check_invariants, **overrides
    )
    return engine.run()
