"""Shared benchmark runner.

All paper-reproduction benchmarks funnel through :func:`run_algorithms`:
one scenario, the three mapping algorithms, uniform caps, and a
:class:`BenchRow` per run mirroring Table I's columns (runtime / states /
RAM) plus the growth series behind Figure 10.

Scale control: benchmarks default to parameters sized for a laptop run
(minutes, not the paper's 9h39m); setting the environment variable
``SDE_FULL=1`` switches every benchmark to the paper's full parameters
(10-second simulations, high caps).  The *shape* of the results — who wins,
by what factor, where COB gets aborted — is preserved at either scale.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from ..core.engine import RunReport
from ..core.scenario import Scenario, build_engine
from ..core.stats import Sample

__all__ = ["BenchRow", "full_scale", "run_algorithms", "run_one"]


def full_scale() -> bool:
    """True when SDE_FULL=1: run the paper's full-size configurations."""
    return os.environ.get("SDE_FULL", "") == "1"


class BenchRow:
    """One (scenario, algorithm) result in Table-I shape."""

    def __init__(self, scenario_name: str, report: RunReport) -> None:
        self.scenario = scenario_name
        self.algorithm = report.algorithm
        self.runtime_seconds = report.runtime_seconds
        self.states = report.total_states
        self.groups = report.group_count
        self.accounted_bytes = report.peak_accounted_bytes()
        self.aborted = report.aborted
        self.abort_reason = report.abort_reason
        self.error_states = len(report.error_states)
        self.events = report.events_executed
        self.instructions = report.instructions
        self.samples: List[Sample] = report.samples
        self.mapping_stats = report.mapping_stats

    def runtime_label(self) -> str:
        seconds = self.runtime_seconds
        if seconds >= 3600:
            return f"{int(seconds // 3600)}h:{int(seconds % 3600 // 60):02d}m"
        if seconds >= 60:
            return f"{int(seconds // 60)}m:{int(seconds % 60):02d}s"
        return f"{seconds:.2f}s"

    def memory_label(self) -> str:
        mb = self.accounted_bytes / 1e6
        if mb >= 1000:
            return f"{mb / 1000:.1f} GB"
        return f"{mb:.1f} MB"

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "algorithm": self.algorithm,
            "runtime_s": round(self.runtime_seconds, 3),
            "states": self.states,
            "groups": self.groups,
            "accounted_bytes": self.accounted_bytes,
            "aborted": self.aborted,
            "events": self.events,
            "instructions": self.instructions,
        }


def run_one(
    scenario: Scenario,
    algorithm: str,
    max_states: Optional[int] = None,
    max_wall_seconds: Optional[float] = None,
) -> BenchRow:
    """Run one scenario under one algorithm and wrap the result."""
    overrides = {}
    if max_states is not None:
        overrides["max_states"] = max_states
    if max_wall_seconds is not None:
        overrides["max_wall_seconds"] = max_wall_seconds
    engine = build_engine(scenario, algorithm, **overrides)
    report = engine.run()
    return BenchRow(scenario.name, report)


def run_algorithms(
    scenario_factory,
    algorithms: Sequence[str] = ("cob", "cow", "sds"),
    cob_max_states: Optional[int] = None,
    cob_max_wall_seconds: Optional[float] = None,
) -> List[BenchRow]:
    """Run a fresh scenario instance per algorithm (caps apply to COB only,
    mirroring the paper's aborted COB run)."""
    rows = []
    for algorithm in algorithms:
        scenario = scenario_factory()
        if algorithm == "cob":
            row = run_one(
                scenario,
                algorithm,
                max_states=cob_max_states,
                max_wall_seconds=cob_max_wall_seconds,
            )
        else:
            row = run_one(scenario, algorithm)
        rows.append(row)
    return rows
