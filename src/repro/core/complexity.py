"""Analytic complexity bounds of SDE (paper Section III-E).

The paper derives worst-case bounds for COB on the adversarial program in
which *every* instruction branches, over a network of ``k`` nodes, until a
bug at instruction ``u``:

- an N-step (advancing one u-complete dscenario one instruction on every
  node) executes ``2^k - 1`` instructions and yields ``2^k`` successors;
- the dscenario tree down to level ``u`` holds
  ``D(u) = (2^(k(u+1)) - 1) / (2^k - 1)`` dscenarios;
- the total instructions executed are ``I(u) = 2^(k*u)``;
- space is ``O(k * 2^(k*u))`` (states on the last level), and overall time
  is ``O(k * 2^(k*u))`` as well — exponential in both depth and network
  size, and an upper bound for all three algorithms.

``benchmarks/bench_complexity.py`` and ``tests/core/test_complexity.py``
validate these formulas empirically against an engine run of the
branch-every-instruction program.
"""

from __future__ import annotations

__all__ = [
    "nstep_instructions",
    "nstep_successors",
    "dscenario_tree_size",
    "instructions_to_reach",
    "worst_case_space",
    "worst_case_states_at_level",
]


def _check(k: int, u: int = 1) -> None:
    if k < 1:
        raise ValueError("network size k must be >= 1")
    if u < 0:
        raise ValueError("instruction depth u must be >= 0")


def nstep_instructions(k: int) -> int:
    """Instructions executed by one N-step: 2^0 + ... + 2^(k-1) = 2^k - 1."""
    _check(k)
    return 2**k - 1


def nstep_successors(k: int) -> int:
    """(l+1)-complete dscenarios produced from one l-complete one: 2^k."""
    _check(k)
    return 2**k


def dscenario_tree_size(k: int, u: int) -> int:
    """D(u) = sum_{i=0..u} (2^k)^i = (2^(k(u+1)) - 1) / (2^k - 1)."""
    _check(k, u)
    numerator = 2 ** (k * (u + 1)) - 1
    denominator = 2**k - 1
    assert numerator % denominator == 0
    return numerator // denominator


def instructions_to_reach(k: int, u: int) -> int:
    """I(u) = D(u-1) * (2^k - 1) + 1 = 2^(k*u)."""
    _check(k, u)
    if u == 0:
        return 1  # the bug is the very first instruction
    via_formula = dscenario_tree_size(k, u - 1) * nstep_instructions(k) + 1
    closed_form = 2 ** (k * u)
    assert via_formula == closed_form
    return closed_form


def worst_case_states_at_level(k: int, u: int) -> int:
    """Execution states on tree level u: k states per dscenario."""
    _check(k, u)
    return k * (2**k) ** u


def worst_case_space(k: int, u: int) -> int:
    """The O(k * 2^(k*u)) bound evaluated exactly (states at level u)."""
    return worst_case_states_at_level(k, u)
