"""Figure 1: regular symbolic execution explores four unique paths of the
``x==0 / x<50 / x>10`` program and generates one concrete test case each."""

from repro.lang import compile_source
from repro.api import Solver
from repro.vm import Executor, Status

FIGURE1 = """
var path;
func main() {
    var x = symbolic("x");
    if (x == 0) { path = 1; }
    else {
        if (x < 50) {
            if (x > 10) { path = 2; } else { path = 3; }
        } else { path = 4; }
    }
}
"""


def explore_figure1():
    program = compile_source(FIGURE1)
    executor = Executor(program, Solver())
    state = executor.make_initial_state(0)
    states = executor.run_event(state, "main")
    done = [s for s in states if s.status == Status.IDLE]
    testcases = []
    for final in done:
        model = executor.solver.get_model(final.constraints)
        testcases.append(model.get("n0.x", 0))
    return done, testcases


def test_figure1_paths_and_testcases(once, benchmark):
    done, testcases = once(explore_figure1)
    assert len(done) == 4
    assert len(set(testcases)) == 4
    signed = [v if v < 2**31 else v - 2**32 for v in testcases]
    # One test case per path family of Figure 1.
    assert any(v == 0 for v in signed)
    assert any(10 < v < 50 for v in signed)
    assert any(v != 0 and v <= 10 for v in signed)
    assert any(v >= 50 for v in signed)
    benchmark.extra_info["paths"] = len(done)
    benchmark.extra_info["testcases"] = sorted(signed)
