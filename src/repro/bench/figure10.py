"""Regenerate Figure 10: state and memory growth over time, 25/49/100 nodes.

Usage::

    python -m repro.bench.figure10 [nodes ...]      # default: 25 49 100
    SDE_FULL=1 python -m repro.bench.figure10

For each scenario size the three algorithms run with dense sampling; the
paired (a/c/e) state-growth and (b/d/f) memory-growth series print as text
and are written to ``results/figure10_<nodes>.csv`` for plotting.
"""

from __future__ import annotations

import pathlib
import sys
from typing import List

from ..workloads.grid import PAPER_SIZES, paper_grid_scenario
from .report import render_series, series_csv
from .runner import BenchRow, full_scale, run_algorithms

__all__ = ["figure10_rows", "main"]

_SUBFIGURES = {25: ("a", "b"), 49: ("c", "d"), 100: ("e", "f")}

COB_STATE_CAP = 400_000
COB_WALL_CAP_SECONDS = 120.0


def figure10_rows(nodes: int) -> List[BenchRow]:
    """Growth series for one scenario size, all three algorithms."""
    if full_scale():
        sim_seconds, cob_wall, cob_cap = 10, 3600.0, 1_200_000
    else:
        sim_seconds = 10 if nodes <= 25 else (6 if nodes <= 49 else 4)
        cob_wall, cob_cap = COB_WALL_CAP_SECONDS, COB_STATE_CAP

    def factory():
        return paper_grid_scenario(
            nodes, sim_seconds=sim_seconds, sample_every_events=16
        )

    return run_algorithms(
        factory,
        cob_max_states=cob_cap,
        cob_max_wall_seconds=cob_wall,
    )


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    sizes = [int(a) for a in argv] if argv else sorted(PAPER_SIZES)
    results_dir = pathlib.Path("results")
    results_dir.mkdir(exist_ok=True)
    for nodes in sizes:
        rows = figure10_rows(nodes)
        state_fig, memory_fig = _SUBFIGURES.get(nodes, ("?", "?"))
        print(
            render_series(
                rows,
                "states",
                f"Figure 10({state_fig}) — {nodes}-node scenario:"
                " state growth over time",
            )
        )
        print()
        print(
            render_series(
                rows,
                "memory",
                f"Figure 10({memory_fig}) — {nodes}-node scenario:"
                " memory growth over time",
            )
        )
        print()
        csv_path = results_dir / f"figure10_{nodes}.csv"
        with open(csv_path, "w") as stream:
            series_csv(rows, stream)
        print(f"raw series written to {csv_path}")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
