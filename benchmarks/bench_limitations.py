"""Section IV-C limitations: flooding in a full mesh.

"It is easy to set-up test scenarios ... where COW and SDS algorithms
perform nearly as bad as COB.  One example would be a full-meshed network
where nodes continuously transmit data to their k-1 neighbours."

Measured claim: the SDS/COB state ratio in the flooding scenario is much
closer to 1 than in the grid-collection scenario of Table I — the savings
vanish when there are no bystanders.
"""


from repro.bench.runner import run_one
from repro.workloads import flood_scenario, grid_scenario


def _ratio(scenario_factory, cob_caps=None):
    rows = {}
    for algorithm in ("cob", "sds"):
        caps = cob_caps if (algorithm == "cob" and cob_caps) else {}
        rows[algorithm] = run_one(scenario_factory(), algorithm, **caps)
    assert not rows["sds"].aborted
    return rows["sds"].states / rows["cob"].states, rows


def test_flooding_erases_sds_advantage(once, benchmark):
    def measure():
        flood_ratio, flood_rows = _ratio(
            lambda: flood_scenario(4, rounds=1)
        )
        grid_ratio, grid_rows = _ratio(
            lambda: grid_scenario(4, sim_seconds=3)
        )
        return flood_ratio, grid_ratio, flood_rows, grid_rows

    flood_ratio, grid_ratio, flood_rows, grid_rows = once(measure)
    # In the structured grid workload SDS saves a lot; in the full-mesh
    # flood it saves much less (no bystanders to spare).
    assert flood_ratio > 2 * grid_ratio, (
        f"flood {flood_ratio:.3f} vs grid {grid_ratio:.3f}"
    )
    benchmark.extra_info["sds_over_cob_flood"] = round(flood_ratio, 4)
    benchmark.extra_info["sds_over_cob_grid"] = round(grid_ratio, 4)
    benchmark.extra_info["flood_cob_states"] = flood_rows["cob"].states
    benchmark.extra_info["flood_sds_states"] = flood_rows["sds"].states


def test_flooding_cow_and_sds_converge(once, benchmark):
    def measure():
        rows = {}
        for algorithm in ("cow", "sds"):
            rows[algorithm] = run_one(flood_scenario(4, rounds=1), algorithm)
        return rows

    rows = once(measure)
    # With every node a sender/target/rival, SDS has no bystanders left to
    # spare: COW and SDS end up with (nearly) identical state sets.
    assert rows["sds"].states <= rows["cow"].states
    assert rows["sds"].states >= int(0.8 * rows["cow"].states)
    benchmark.extra_info["cow_states"] = rows["cow"].states
    benchmark.extra_info["sds_states"] = rows["sds"].states
