"""The SDE engine — this reproduction's KleeNet.

"KleeNet simulates a complete distributed system in a single process.  It
starts with k states representing the nodes in the network.  As in any
simulation, in each step KleeNet executes an event of a node and advances
the time to the next event in the queue.  If the symbolic execution of an
event handler produces new states, they're simply added to the state set.
The state mapping algorithms are triggered either at the node's local branch
(COB) or upon a node's message transmission (COW, SDS)."  — Section IV

This module is exactly that loop:

- a global, deterministic event queue over all execution states;
- event dispatch into the symbolic VM (boot / timer / reception handlers);
- failure-model application at reception (symbolic drops etc.);
- transmissions routed through the pluggable state mapper;
- growth sampling, state/memory/runtime caps (the paper aborts COB at the
  machine's memory limit — the caps reproduce that behaviour), and a final
  run report.
"""

from __future__ import annotations

import itertools
import warnings
from typing import Dict, List, Optional, Tuple, Union

from ..lang.bytecode import CompiledProgram
from ..lang.compiler import compile_source
from ..net.medium import make_medium
from ..net.packet import Packet
from ..net.topology import Topology
from ..obs.events import TraceEmitter
from ..obs.metrics import report_snapshot
from ..obs.profile import PhaseProfiler
from ..oslib.kernel import HANDLER_BOOT, HANDLER_RECV, HANDLER_TIMER, NodeOS
from ..sim.clock import VirtualClock
from ..sim.queue import EventQueue
from ..solver import Solver
from ..vm.executor import Executor
from ..vm.state import CellValue, Event, ExecutionState, Status
from .config import EngineConfig
from .mapping import StateMapper
from .reduce import StateReducer
from .stats import Sample, StatsRecorder, estimate_state_bytes

__all__ = ["SDEEngine", "RunReport", "PresetValue"]

#: the exact DeprecationWarning text of the legacy-kwargs shim; the
#: pytest ``filterwarnings`` entry in pyproject.toml is scoped to it.
LEGACY_KWARGS_MESSAGE = (
    "passing engine options as SDEEngine keyword arguments is deprecated;"
    " build an EngineConfig and pass SDEEngine(program, topology, mapper,"
    " config)"
)

# A preset global: one value for all nodes, or an explicit per-node mapping.
PresetValue = Union[int, Dict[int, int]]


class RunReport:
    """Everything a benchmark or test wants to know about one SDE run."""

    def __init__(self, engine: "SDEEngine") -> None:
        self.algorithm = engine.mapper.name
        self.aborted = engine.aborted
        self.abort_reason = engine.abort_reason
        self.runtime_seconds = engine.stats.elapsed()
        self.events_executed = engine.events_executed
        self.instructions = engine.executor.instructions_executed
        self.total_states = len(engine.states)
        self.active_states = sum(1 for s in engine.states.values() if s.is_active())
        self.error_states = [
            s for s in engine.states.values() if s.status == Status.ERROR
        ]
        self.group_count = engine.mapper.group_count()
        self.mapping_stats = engine.mapper.stats.as_dict()
        self.solver_queries = engine.solver.queries
        self.samples: List[Sample] = list(engine.stats.samples)
        self.virtual_ms = engine.clock.now
        self.accounted_bytes = (self.samples[-1].accounted_bytes if self.samples else 0)
        # -- observability extras (the metrics-snapshot contract) ----------
        self.phases = engine.profiler.snapshot()
        self.cache_stats = engine.solver.cache_stats()
        self.solver_stats = engine.solver.stats_dict()
        self.net_stats = engine.medium.stats_dict()
        self.histograms = {
            "solver.query.conjuncts": engine.solver.conjunct_histogram.data(),
        }
        # -- resilience extras ---------------------------------------------
        self.checkpoints_written = getattr(engine, "checkpoints_written", 0)
        self.resumed = getattr(engine, "resumed", False)
        # -- symmetry/POR reduction (repro.core.reduce) ---------------------
        self.reduce_stats = (
            engine.reducer.stats_dict() if engine.reducer is not None else {}
        )
        self.metrics = report_snapshot(self)

    def peak_states(self) -> int:
        return max((s.total_states for s in self.samples), default=self.total_states)

    def peak_accounted_bytes(self) -> int:
        return max((s.accounted_bytes for s in self.samples), default=0)

    def summary(self) -> str:
        status = "ABORTED" if self.aborted else "completed"
        lines = [
            f"[{self.algorithm}] {status} after {self.runtime_seconds:.2f}s"
            + (f" ({self.abort_reason})" if self.aborted else ""),
            f"  virtual time     : {self.virtual_ms} ms",
            f"  events executed  : {self.events_executed}",
            f"  instructions     : {self.instructions}",
            f"  states (total)   : {self.total_states}",
            f"  dscenarios/dstates: {self.group_count}",
            f"  accounted memory : {self.accounted_bytes / 1e6:.2f} MB",
            f"  error states     : {len(self.error_states)}",
            f"  solver queries   : {self.solver_queries}",
        ]
        for name, data in self.phases.items():
            lines.append(
                f"  phase {name:<11}: {data['seconds']:.3f}s"
                f" ({data['count']} enters)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"RunReport({self.algorithm}, states={self.total_states},"
            f" groups={self.group_count}, aborted={self.aborted})"
        )


class SDEEngine:
    """Symbolic distributed execution of one scenario."""

    def __init__(
        self,
        program: Union[str, CompiledProgram],
        topology: Topology,
        mapper: StateMapper,
        config: Optional[Union[EngineConfig, int]] = None,
        *,
        solver: Optional[Solver] = None,
        trace: Optional[TraceEmitter] = None,
        **legacy,
    ) -> None:
        config = self._coerce_config(config, legacy)
        if isinstance(program, str):
            program = compile_source(program)
        self.config = config
        self.program = program
        self.topology = topology
        self.mapper = mapper
        medium_params = dict(config.medium_params or {})
        medium_params.setdefault("latency_ms", config.latency_ms)
        self.medium = make_medium(config.medium, topology, **medium_params)
        self.clock = VirtualClock(config.horizon_ms)
        self.solver = solver if solver is not None else config.make_solver()
        self.executor = Executor(
            program,
            self.solver,
            host=NodeOS(self),
            max_steps_per_event=config.max_steps_per_event,
            fuse_ops=config.fuse_ops,
        )
        self.failure_models = list(config.failure_models)
        self.preset_globals = dict(config.preset_globals or {})
        self.boot_times = (
            list(config.boot_times)
            if config.boot_times is not None
            else [0] * topology.node_count
        )
        if len(self.boot_times) != topology.node_count:
            raise ValueError("boot_times must list one time per node")
        self.max_states = config.max_states
        self.max_accounted_bytes = config.max_accounted_bytes
        self.max_wall_seconds = config.max_wall_seconds
        self.check_invariants = config.check_invariants

        self.states: Dict[int, ExecutionState] = {}
        self.packets: Dict[int, Packet] = {}  # pid -> packet (for reports)
        self.scheduler: EventQueue[int] = EventQueue()
        self.events_executed = 0
        self.aborted = False
        self.abort_reason = ""
        self._broadcast_ids = itertools.count(1)
        self._started = False
        # Checkpointing (see repro.core.resilience): with a path set, the
        # run loop snapshots itself every N events / T wall seconds so a
        # killed run can continue via `repro run --resume`.
        self.checkpoint_path = config.checkpoint_path
        self.checkpoint_every_events = config.checkpoint_every_events
        self.checkpoint_every_seconds = config.checkpoint_every_seconds
        self.checkpoints_written = 0
        self.resumed = False
        self._last_checkpoint_events = 0
        self._last_checkpoint_elapsed = 0.0
        self.stats = StatsRecorder(
            len(program.code),
            sample_every_events=config.sample_every_events,
        )
        # Observability: `trace is None` means tracing off — every emit
        # site guards on that, so the disabled path allocates nothing.
        self.trace = trace
        self.profiler = PhaseProfiler()
        self._phase_execute = self.profiler.phase("execute")
        self._phase_map = self.profiler.phase("map")
        self.medium.trace = trace
        self.solver.attach_observability(trace, self.profiler)
        mapper.bind(self._register_state, trace=trace)
        # Symmetry/POR reduction (repro.core.reduce): built only when a
        # reduction flag is set, so default runs carry zero overhead.
        self.reducer: Optional[StateReducer] = None
        if config.symmetry or config.por:
            self.reducer = StateReducer(
                topology,
                self.program,
                symmetry=config.symmetry,
                por=config.por,
                trace=trace,
                medium=self.medium,
            )
        self._reduce_candidates: List[ExecutionState] = []
        self._mapping_twins: List[ExecutionState] = []
        self._mapping_active = False

    @staticmethod
    def _coerce_config(
        config: Optional[Union[EngineConfig, int]], legacy: Dict[str, object]
    ) -> EngineConfig:
        """Accept an :class:`EngineConfig` or the legacy keyword form.

        The legacy form — ``horizon_ms`` as the fourth positional argument
        and/or engine options as keywords — still works but warns; it is
        exercised only by its dedicated deprecation test (the suite turns
        this warning into an error everywhere else).
        """
        if isinstance(config, EngineConfig):
            if legacy:
                raise TypeError(
                    "cannot mix EngineConfig with legacy keyword arguments"
                    f" {sorted(legacy)}"
                )
            return config
        fields = dict(legacy)
        if config is not None:  # legacy positional horizon_ms
            fields.setdefault("horizon_ms", config)
        if "horizon_ms" not in fields:
            raise TypeError("SDEEngine needs an EngineConfig (or at least horizon_ms)")
        warnings.warn(LEGACY_KWARGS_MESSAGE, DeprecationWarning, stacklevel=3)
        return EngineConfig(**fields)

    # -- EngineServices (used by NodeOS) ---------------------------------------

    @property
    def node_count(self) -> int:
        return self.topology.node_count

    def guest_unicast(
        self, sender: ExecutionState, dest: int, payload: List[CellValue]
    ) -> None:
        from ..vm.syscalls import SyscallAbort

        if dest == sender.node:
            raise SyscallAbort("unicast to self")
        for node, deliver_at in self.medium.plan_unicast(
            sender, dest, len(payload)
        ):
            self._transmit(sender, node, payload, 0, deliver_at)

    def guest_broadcast(self, sender: ExecutionState, payload: List[CellValue]) -> None:
        broadcast_id = next(self._broadcast_ids)
        # Broadcast = a series of unicasts to every neighbour (footnote 1).
        for node, deliver_at in self.medium.plan_broadcast(
            sender, len(payload)
        ):
            self._transmit(sender, node, payload, broadcast_id, deliver_at)

    def _transmit(
        self,
        sender: ExecutionState,
        dest_node: int,
        payload: List[CellValue],
        broadcast_id: int,
        deliver_at: int,
    ) -> None:
        packet = Packet(
            sender.node, dest_node, tuple(payload), sender.clock, broadcast_id
        )
        self.packets[packet.pid] = packet
        with self._phase_map:
            self._mapping_active = True
            try:
                receivers = self.mapper.map_transmission(sender, dest_node)
            finally:
                self._mapping_active = False
        sender.record_sent(packet.pid, dest_node)
        if self.trace is not None:
            self.trace.emit(
                "packet.send",
                src=sender.node,
                dest=dest_node,
                t=sender.clock,
                # Boolean, not the group id: broadcast ids are allocated
                # from a watermarked counter and differ across workers.
                bcast=broadcast_id is not None,
                pid=packet.pid,
            )
        for receiver in receivers:
            receiver.record_received(packet.pid, sender.node)
            receiver.push_event(deliver_at, Event.RECV, packet)
            self._schedule(receiver)
            if self.trace is not None:
                self.trace.emit(
                    "packet.deliver",
                    node=receiver.node,
                    src=sender.node,
                    t=deliver_at,
                    pid=packet.pid,
                    sid=receiver.sid,
                )
        if self.reducer is not None and self._mapping_twins:
            self._reduce_mapping_twins(receivers, packet)

    def _reduce_mapping_twins(
        self, receivers: List[ExecutionState], packet: Packet
    ) -> None:
        """Sleep redundant non-receiving twins created by this mapping.

        Mapper spawns during ``map_transmission`` that are *not* in the
        receiver list exist only to pair other scenario combinations with
        the non-delivery of this packet (SDS target twins, COW bystander
        duplicates).  When such a twin's canonical form is already covered
        and the delivery is independent of its pending events, exploring
        it cannot reach a new configuration — the partial-order sleep.
        """
        twins, self._mapping_twins = self._mapping_twins, []
        receiving = {receiver.sid for receiver in receivers}
        for twin in twins:
            if twin.sid in receiving:
                self._reduce_candidates.append(twin)
                continue
            if self.reducer.observe_twin(twin, packet):
                twin.status = Status.PRUNED
                if self.trace is not None:
                    self.trace.emit(
                        "reduce.sleep",
                        node=twin.node,
                        t=twin.clock,
                        sid=twin.sid,
                    )

    # -- setup --------------------------------------------------------------------

    def setup(self) -> None:
        """Create the k boot states, preset globals, schedule boot events."""
        if self._started:
            raise RuntimeError("engine already set up")
        self._started = True
        if self.trace is not None:
            self.trace.emit(
                "run.start",
                algorithm=self.mapper.name,
                nodes=self.topology.node_count,
            )
        initial: List[ExecutionState] = []
        for node in self.topology.nodes():
            state = self.executor.make_initial_state(node)
            self._apply_presets(state)
            state.push_event(self.boot_times[node], Event.BOOT, None)
            initial.append(state)
            self.states[state.sid] = state
        self.mapper.register_initial(initial)
        for state in initial:
            self._schedule(state)

    def _apply_presets(self, state: ExecutionState) -> None:
        for name, preset in self.preset_globals.items():
            if name not in self.program.globals_layout:
                raise KeyError(f"program has no global {name!r} to preset")
            address, size = self.program.globals_layout[name]
            value = preset.get(state.node, 0) if isinstance(preset, dict) else preset
            if size != 1:
                raise ValueError(f"cannot preset array global {name!r}")
            state.memory[address] = value & 0xFFFFFFFF

    # -- the main loop ----------------------------------------------------------------

    def run(self) -> RunReport:
        self.run_until()
        self._sample_and_check_caps(force=True)
        if self.trace is not None:
            self.trace.emit(
                "run.end",
                algorithm=self.mapper.name,
                events=self.events_executed,
            )
        return RunReport(self)

    def run_until(
        self,
        split_ms: Optional[int] = None,
        split_events: Optional[int] = None,
    ) -> None:
        """Drive the event loop, optionally stopping at a split point.

        With ``split_ms`` set, no event scheduled after that virtual time is
        consumed — the pending entries stay queued, so the run can be
        snapshotted (:meth:`scheduler_snapshot`) and resumed elsewhere.
        ``split_events`` bounds the number of events executed the same way.
        With neither bound this is the complete run loop.
        """
        if not self._started:
            self.setup()
        if self.reducer is not None and not self.reducer.seeded:
            # Resumed checkpoints / restored worker partitions inherit
            # states that must count as covered, never be parked.
            self.reducer.seed(self.states.values())
        while True:
            if (split_events is not None and self.events_executed >= split_events):
                break  # event-count split point reached
            entry = self.scheduler.pop(self._entry_valid, max_time=split_ms)
            if entry is None:
                break  # no runnable state left (or virtual-time split hit)
            event_time, sid = entry
            if self.clock.expired(event_time):
                break  # simulation horizon reached
            state = self.states[sid]
            event = state.pop_event()
            self.clock.advance_to(event_time)
            state.clock = event_time
            with self._phase_execute:
                self._dispatch(state, event)
            if self.reducer is not None:
                self._apply_reduction()
            self.events_executed += 1
            if self._checkpoint_due():
                self.write_checkpoint()
            if self.stats.should_sample(self.events_executed):
                self._sample_and_check_caps()
            if self.check_invariants:
                self.mapper.check_invariants()
            if self.aborted:
                break

    # -- checkpointing (repro.core.resilience) ---------------------------------

    def _checkpoint_due(self) -> bool:
        if self.checkpoint_path is None:
            return False
        if (
            self.checkpoint_every_events is not None
            and self.events_executed - self._last_checkpoint_events
            >= self.checkpoint_every_events
        ):
            return True
        return (
            self.checkpoint_every_seconds is not None
            and self.stats.elapsed() - self._last_checkpoint_elapsed
            >= self.checkpoint_every_seconds
        )

    def write_checkpoint(self, path: Optional[str] = None) -> str:
        """Snapshot the full engine to disk (atomic, checksummed).

        Safe between events: every state is quiescent and the scheduler
        snapshot preserves the sequential pop order, the same property the
        parallel runner's split point relies on.
        """
        from .resilience import save_checkpoint

        target = path if path is not None else self.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured")
        save_checkpoint(self, target)
        self.checkpoints_written += 1
        self._last_checkpoint_events = self.events_executed
        self._last_checkpoint_elapsed = self.stats.elapsed()
        if self.trace is not None:
            self.trace.emit(
                "checkpoint.write",
                events=self.events_executed,
                path=str(target),
            )
        return str(target)

    def scheduler_snapshot(self) -> List[Tuple[int, int]]:
        """Pending work as ``(time, sid)`` pairs in deterministic pop order.

        Exactly one entry per runnable state — the first *valid* heap entry,
        in heap order — so re-pushing the pairs into a fresh
        :class:`EventQueue` reproduces this engine's scheduling order (ties
        at equal times pop in the captured sequence).
        """
        out: List[Tuple[int, int]] = []
        seen = set()
        for event_time, _, sid in self.scheduler.entries():
            if sid in seen:
                continue
            if self._entry_valid(event_time, sid):
                seen.add(sid)
                out.append((event_time, sid))
        return out

    def _entry_valid(self, event_time: int, sid: int) -> bool:
        # PRUNED states stay schedulable: their events must surface so the
        # reducer can decide wake-vs-sleep per delivery (_dispatch_pruned).
        state = self.states.get(sid)
        return (
            state is not None
            and (state.status == Status.IDLE or state.status == Status.PRUNED)
            and state.peek_event_time() == event_time
        )

    def _schedule(self, state: ExecutionState) -> None:
        if state.events and state.status in (Status.IDLE, Status.PRUNED):
            self.scheduler.push(state.peek_event_time(), state.sid)

    def _register_state(self, state: ExecutionState) -> None:
        """Spawn callback for mappers and failure models."""
        self.states[state.sid] = state
        self._schedule(state)
        if self.reducer is not None:
            if self._mapping_active:
                self._mapping_twins.append(state)
            else:
                self._reduce_candidates.append(state)

    # -- event dispatch ---------------------------------------------------------------

    def _dispatch(self, state: ExecutionState, event: Event) -> None:
        if state.status == Status.PRUNED:
            self._dispatch_pruned(state, event)
            return
        if event.kind == Event.BOOT:
            self._run_handler(state, HANDLER_BOOT, ())
        elif event.kind == Event.TIMER:
            if NodeOS.timer_event_is_live(state, event) and self.program.has_handler(
                HANDLER_TIMER
            ):
                self._run_handler(state, HANDLER_TIMER, (event.data,))
            else:
                self._schedule(state)  # stale timer: just keep going
        elif event.kind == Event.RECV:
            self._dispatch_reception(state, event.data)
        else:  # pragma: no cover - exhaustive over event kinds
            raise AssertionError(f"unknown event kind {event.kind!r}")

    def _dispatch_pruned(self, state: ExecutionState, event: Event) -> None:
        """An event surfaced on a parked state: wake or swallow.

        The reducer wakes the state for a reception whose configuration ⊕
        delivery class no active state has covered (restoring exactness
        for reception-driven divergence); everything else is slept.
        """
        if self.reducer.on_pruned_event(state, event) == "wake":
            state.status = Status.IDLE
            if self.trace is not None:
                self.trace.emit(
                    "reduce.wake", node=state.node, t=state.clock, sid=state.sid
                )
            self._dispatch(state, event)
        else:
            self._schedule(state)  # keep draining the parked queue

    def _run_handler(
        self, state: ExecutionState, handler: str, args: Tuple[int, ...]
    ) -> List[ExecutionState]:
        if not self.program.has_handler(handler):
            self._schedule(state)
            return [state]
        results = self.executor.run_event(
            state, handler, args, on_fork=self._on_local_fork
        )
        for result in results:
            self.states.setdefault(result.sid, result)
            self._schedule(result)
            if self.trace is not None and not result.is_active():
                self.trace.emit(
                    "state.terminate",
                    node=result.node,
                    t=result.clock,
                    status=result.status,
                    sid=result.sid,
                )
        if self.reducer is not None:
            self._reduce_candidates.extend(results)
        return results

    def _on_local_fork(
        self, parent: ExecutionState, children: List[ExecutionState]
    ) -> None:
        for child in children:
            self.states[child.sid] = child
            if self.trace is not None:
                self.trace.emit(
                    "state.fork",
                    node=parent.node,
                    t=parent.clock,
                    reason="local",
                    parent=parent.sid,
                    child=child.sid,
                )
        self.mapper.on_local_fork(parent, children)

    def _dispatch_reception(self, state: ExecutionState, packet: Packet) -> None:
        if self.reducer is not None:
            # Mark (configuration ⊕ delivery) covered by an active state,
            # so parked alpha-twins of this state can sleep through the
            # same delivery class instead of waking.
            self.reducer.record_delivery(state, packet)
        # Failure models first: they may fork the state (symbolic drop /
        # duplicate / reboot decisions).  Those forks are node-local
        # branches: COB reacts by forking dscenarios.
        plans = [(state, 1, False)]
        for model in self.failure_models:
            plans, forks = model.apply(plans, packet)
            for parent, twin in forks:
                self._register_state(twin)
                if self.trace is not None:
                    self.trace.emit(
                        "state.fork",
                        node=parent.node,
                        t=parent.clock,
                        reason="failure",
                        parent=parent.sid,
                        child=twin.sid,
                    )
                self.mapper.on_local_fork(parent, [twin])
        for variant, deliveries, reboot in plans:
            if reboot:
                self._reboot(variant)
            elif deliveries == 0:
                self._schedule(variant)  # packet dropped: nothing to run
            else:
                self._deliver_to_handler(variant, packet, deliveries)

    def _deliver_to_handler(
        self, state: ExecutionState, packet: Packet, deliveries: int
    ) -> None:
        wave = [state]
        for _ in range(deliveries):
            next_wave: List[ExecutionState] = []
            for current in wave:
                if not current.is_active():
                    continue
                current.current_packet = packet
                results = self._run_handler(
                    current, HANDLER_RECV, (packet.src, len(packet))
                )
                for result in results:
                    result.current_packet = None
                    next_wave.append(result)
            wave = next_wave

    def _reboot(self, state: ExecutionState) -> None:
        """Crash-and-reboot: wipe RAM, cancel timers, re-run on_boot."""
        if self.trace is not None:
            self.trace.emit(
                "state.reboot", node=state.node, t=state.clock, sid=state.sid
            )
        state.memory = [0] * self.program.memory_size
        for address, value in self.program.initializers:
            state.memory[address] = value & 0xFFFFFFFF
        self._apply_presets(state)
        for timer_id in list(state.timer_generations):
            state.timer_generations[timer_id] += 1
        state.push_event(state.clock, Event.BOOT, None)
        self._schedule(state)

    # -- symmetry/POR reduction (repro.core.reduce) -----------------------------------

    def _apply_reduction(self) -> None:
        """Park post-dispatch duplicates under the canonical seen-set.

        Runs after each event completes — never mid-delivery-wave, so a
        multi-delivery plan always finishes on live states.  Candidates
        are every state touched or created by the dispatch; a candidate
        whose canonical form is already covered is parked (not dropped:
        it stays a dstate member and can be woken by an uncovered
        delivery).
        """
        candidates, self._reduce_candidates = self._reduce_candidates, []
        reducer = self.reducer
        if not reducer.enabled:
            return
        for state in candidates:
            if reducer.observe(state):
                state.status = Status.PRUNED
                if self.trace is not None:
                    self.trace.emit(
                        "reduce.prune",
                        node=state.node,
                        t=state.clock,
                        sid=state.sid,
                    )

    # -- sampling & caps --------------------------------------------------------------

    def _sample_and_check_caps(self, force: bool = False) -> Optional[Sample]:
        sample = self.stats.record(
            self.states.values(),
            self.clock.now,
            self.events_executed,
            self.mapper.group_count(),
        )
        if self.aborted:
            return sample
        if self.max_states is not None and sample.total_states > self.max_states:
            self._abort(f"state cap exceeded ({sample.total_states}"
                        f" > {self.max_states})")
        elif (
            self.max_accounted_bytes is not None
            and sample.accounted_bytes > self.max_accounted_bytes
        ):
            self._abort(
                f"memory cap exceeded ({sample.accounted_bytes}"
                f" > {self.max_accounted_bytes} bytes)"
            )
        elif (
            self.max_wall_seconds is not None
            and self.stats.elapsed() > self.max_wall_seconds
        ):
            self._abort(f"wall-clock cap exceeded ({self.max_wall_seconds}s)")
        return sample

    def _abort(self, reason: str) -> None:
        # Mirrors the paper's Table I: "COB ... aborted" at the memory cap.
        self.aborted = True
        self.abort_reason = reason

    # -- conveniences for tests/examples ----------------------------------------------

    def states_of_node(self, node: int) -> List[ExecutionState]:
        return [s for s in self.states.values() if s.node == node]

    def state_census(self) -> Dict[int, int]:
        """States per node — the quickest way to see where growth happens
        (on-path nodes and their overhearing neighbours dominate)."""
        census: Dict[int, int] = {node: 0 for node in self.topology.nodes()}
        for state in self.states.values():
            census[state.node] += 1
        return census

    def error_states(self) -> List[ExecutionState]:
        return [s for s in self.states.values() if s.status == Status.ERROR]

    def total_accounted_bytes(self) -> int:
        return sum(estimate_state_bytes(s) for s in self.states.values())
