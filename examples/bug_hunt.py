#!/usr/bin/env python3
"""Bug hunting with SDE: find a real distributed bug and replay it.

The guest program is a collection protocol whose sink filters duplicates
with ``seq == expected`` — correct as long as nothing is ever lost.  A
symbolic packet drop at any relay makes the sink see a sequence gap, after
which the buggy filter discards every later (perfectly fresh) reading.
This is exactly the class of "insidious interaction bug" KleeNet was built
to find: no single node misbehaves; only a particular failure pattern
across nodes triggers it.

SDE explores all drop patterns at once, hits the guest ``assert``, and the
solver turns the failing path condition into a concrete failure scenario —
which this script then replays deterministically to confirm.

Run: ``python examples/bug_hunt.py``
"""

from repro.api import Scenario, Topology, build_engine
from repro.core import iter_dscenarios, testcase_for_dscenario
from repro.expr import pretty
from repro.net.failures import standard_failure_suite
from repro.workloads import first_collect_packet
from repro.workloads.programs import buggy_dedup_program


def build_scenario(k: int = 4, sends: int = 3) -> Scenario:
    topology = Topology.line(k)
    sink = k - 1
    source = 0
    return Scenario(
        name="buggy-dedup",
        program=buggy_dedup_program(),
        topology=topology,
        horizon_ms=(sends + 1) * 1000,
        failure_factory=lambda: standard_failure_suite(
            [n for n in topology.nodes() if n != source],
            packet_filter=first_collect_packet,
        ),
        preset_globals={
            "rime_next_hop": topology.next_hop_table(sink),
            "rime_sink": sink,
            "rime_source": source,
            "send_period": 1000,
            "sends_left": {source: sends},
        },
    )


def main() -> int:
    print("hunting for interaction bugs in the dedup filter ...\n")
    engine = build_engine(build_scenario(), "sds", check_invariants=True)
    report = engine.run()
    print(
        f"explored: {report.total_states} states, {report.group_count}"
        f" dstates, {report.events_executed} events"
    )
    print(f"defects found: {len(report.error_states)}\n")
    if not report.error_states:
        print("no bugs found (unexpected - the bug is seeded!)")
        return 1

    # A distributed bug needs a *distributed* test case: the defect shows
    # at the sink, but the drop decision that causes it lives in another
    # node's state.  Solve each error state's enclosing dscenario jointly.
    for index, error_state in enumerate(report.error_states):
        members = next(
            m
            for m in iter_dscenarios(engine.mapper)
            if any(s is error_state for s in m.values())
        )
        testcase = testcase_for_dscenario(members, engine.solver)
        print(f"--- defect {index + 1} -----------------------------------")
        print(
            f"  kind : {error_state.error.kind}"
            f" (code {error_state.error.code})"
        )
        print(f"  where: node {error_state.node}, t={error_state.clock}ms")
        print("  joint path condition of the dscenario:")
        for node in sorted(members):
            for constraint in members[node].constraints:
                print(f"    [node {node}] {pretty(constraint)}")
        print("  replayable failure pattern (one concrete dscenario):")
        for name in sorted(testcase.assignments):
            print(f"    {name} = {testcase.assignments[name]}")
        print()

    # Deterministic replay: re-run the scenario with every failure decision
    # forced to the solved concrete value — no symbolic machinery, one
    # state per node, and the same defect at the same place.
    print("replaying each defect concretely (forced failure decisions) ...")
    from repro.core import replay_testcase

    all_reproduced = True
    for index, error_state in enumerate(report.error_states):
        members = next(
            m
            for m in iter_dscenarios(engine.mapper)
            if any(s is error_state for s in m.values())
        )
        testcase = testcase_for_dscenario(members, engine.solver)
        replay = replay_testcase(build_scenario(), testcase)
        reproduced = (
            len(replay.error_states) == 1
            and replay.error_states[0].error.code == error_state.error.code
            and replay.error_states[0].node == error_state.node
            and replay.total_states == 4  # concrete: never forked
        )
        print(
            f"  defect {index + 1}: reproduced={reproduced}"
            f" (replay explored {replay.total_states} states"
            f" vs {report.total_states} symbolic)"
        )
        all_reproduced &= reproduced

    # Coverage: how much of the guest program did the hunt exercise?
    from repro.vm import coverage_report

    print()
    print(coverage_report(engine.program, engine.executor.visited_pcs).render())
    return 0 if all_reproduced else 1


if __name__ == "__main__":
    raise SystemExit(main())
