"""Interval constraint propagation (HC4-style narrowing).

Given a conjunction of boolean constraints asserted *true* and a current
interval domain per variable, :func:`propagate` shrinks the domains to a
fixpoint (or detects emptiness).  Soundness contract: a value is only removed
from a domain if **no** satisfying assignment of the conjunction uses it.
The search in :mod:`repro.solver.search` relies on exactly this property for
completeness.

Narrowing is two-phase per constraint:

1. *forward*: evaluate interval approximations bottom-up
   (:func:`repro.expr.interval.interval_eval`);
2. *backward*: starting from the requirement that the root comparison holds,
   push required intervals down to the leaves, intersecting variable domains.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..expr import (
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolNot,
    BoolOr,
    BVBinary,
    BVConcat,
    BVConst,
    BVExpr,
    BVExtend,
    BVExtract,
    BVIte,
    BVUnary,
    BVVar,
    Cmp,
    Interval,
    interval_eval,
    mask,
    not_,
    to_unsigned,
)
from ..expr.interval import cond_verdict, signed_extrema

__all__ = ["propagate", "Infeasible", "narrow_with_constraint"]

# Propagation is a contracting fixpoint, so it terminates on its own; the cap
# only bounds pathological slow convergence (e.g. x < y < x+1 chains).
_MAX_ROUNDS = 64


class Infeasible(Exception):
    """The conjunction has no solution under the given domains."""


Domains = Dict[BVVar, Interval]


def propagate(constraints: Iterable[BoolExpr], domains: Domains) -> bool:
    """Narrow ``domains`` in place to a fixpoint.

    Returns True if any domain changed.  Raises :class:`Infeasible` when a
    domain becomes empty or a constraint is definitely false.
    """
    constraints = list(constraints)
    changed_any = False
    for _ in range(_MAX_ROUNDS):
        changed = False
        for constraint in constraints:
            if narrow_with_constraint(constraint, domains):
                changed = True
        if not changed:
            break
        changed_any = True
    return changed_any


def narrow_with_constraint(constraint: BoolExpr, domains: Domains) -> bool:
    """Narrow domains using a single constraint asserted true."""
    if isinstance(constraint, BoolConst):
        if not constraint.value:
            raise Infeasible("constant-false constraint")
        return False
    if isinstance(constraint, BoolAnd):
        changed = False
        for operand in constraint.operands:
            if narrow_with_constraint(operand, domains):
                changed = True
        return changed
    if isinstance(constraint, BoolOr):
        return _narrow_or(constraint, domains)
    if isinstance(constraint, BoolNot):
        inner = constraint.operand
        # The builder rewrites negated comparisons away; what remains is
        # not(and/or/var-less) — handle not(or) = and of negations cheaply.
        if isinstance(inner, BoolOr):
            changed = False
            for operand in inner.operands:
                if narrow_with_constraint(not_(operand), domains):
                    changed = True
            return changed
        if _definitely(inner, domains) is True:
            raise Infeasible("negated constraint definitely holds")
        return False
    if isinstance(constraint, Cmp):
        return _narrow_cmp(constraint, domains)
    raise TypeError(f"unexpected constraint node {type(constraint).__name__}")


def _definitely(constraint: BoolExpr, domains: Domains) -> Optional[bool]:
    """Decide a constraint from intervals alone: True/False/None (unknown)."""
    return cond_verdict(constraint, domains)


def _narrow_or(constraint: BoolOr, domains: Domains) -> bool:
    """Unit propagation on disjunctions.

    If all but one disjunct are definitely false, the survivor must hold.
    """
    alive: List[BoolExpr] = []
    for operand in constraint.operands:
        verdict = _definitely(operand, domains)
        if verdict is True:
            return False
        if verdict is None:
            alive.append(operand)
            if len(alive) > 1:
                return False
    if not alive:
        raise Infeasible("all disjuncts definitely false")
    return narrow_with_constraint(alive[0], domains)


# ---------------------------------------------------------------------------
# Comparison narrowing
# ---------------------------------------------------------------------------


def _narrow_cmp(constraint: Cmp, domains: Domains) -> bool:
    left_expr, right_expr = constraint.left, constraint.right
    width = left_expr.width
    left = interval_eval(left_expr, domains)
    right = interval_eval(right_expr, domains)
    if left.is_empty() or right.is_empty():
        raise Infeasible("empty operand interval")
    op = constraint.op

    if op == "eq":
        both = left.meet(right)
        if both.is_empty():
            raise Infeasible("eq over disjoint intervals")
        changed = _require(left_expr, both, domains)
        return _require(right_expr, both, domains) or changed
    if op == "ne":
        changed = False
        if right.is_singleton():
            changed = _require_not_value(left_expr, right.lo, domains) or changed
        if left.is_singleton():
            changed = _require_not_value(right_expr, left.lo, domains) or changed
        if (
            left.is_singleton()
            and right.is_singleton()
            and left.lo == right.lo
        ):
            raise Infeasible("ne over equal singletons")
        return changed
    if op in ("ult", "ule"):
        slack = 0 if op == "ule" else 1
        new_left = Interval(left.lo, right.hi - slack)
        new_right = Interval(left.lo + slack, right.hi)
        changed = _require(left_expr, new_left, domains)
        return _require(right_expr, new_right, domains) or changed
    if op in ("slt", "sle"):
        slack = 0 if op == "sle" else 1
        lmin, _lmax = signed_extrema(left, width)
        _rmin, rmax = signed_extrema(right, width)
        changed = _require_signed_range(
            left_expr, lmin, rmax - slack, width, domains
        )
        return (
            _require_signed_range(
                right_expr, lmin + slack, rmax, width, domains
            )
            or changed
        )
    raise TypeError(f"unknown cmp op {op}")


def _require_signed_range(
    expr: BVExpr, smin: int, smax: int, width: int, domains: Domains
) -> bool:
    """Require ``smin <= signed(expr) <= smax``.

    The allowed set maps to at most two unsigned intervals (a non-negative
    prefix and a negative suffix).  The current forward interval is met
    with both pieces; the hull of the surviving pieces is required — sound,
    and empty survival is a definite contradiction.
    """
    half = 1 << (width - 1)
    if smin > smax:
        raise Infeasible("empty signed range")
    pieces = []
    nonneg_lo, nonneg_hi = max(smin, 0), min(smax, half - 1)
    if nonneg_lo <= nonneg_hi:
        pieces.append(Interval(nonneg_lo, nonneg_hi))
    neg_lo, neg_hi = max(smin, -half), min(smax, -1)
    if neg_lo <= neg_hi:
        pieces.append(
            Interval(to_unsigned(neg_lo, width), to_unsigned(neg_hi, width))
        )
    current = interval_eval(expr, domains)
    surviving = [
        piece.meet(current) for piece in pieces
        if not piece.meet(current).is_empty()
    ]
    if not surviving:
        raise Infeasible("signed range excludes all values")
    hull = surviving[0]
    for piece in surviving[1:]:
        hull = hull.join(piece)
    if hull == current:
        return False
    return _require(expr, hull, domains)


def _require_not_value(expr: BVExpr, value: int, domains: Domains) -> bool:
    """Require ``expr != value``: only prunes when value sits on a boundary."""
    current = interval_eval(expr, domains)
    if current.is_singleton() and current.lo == value:
        raise Infeasible("expression forced to excluded value")
    if current.lo == value:
        return _require(expr, Interval(value + 1, current.hi), domains)
    if current.hi == value:
        return _require(expr, Interval(current.lo, value - 1), domains)
    return False


# ---------------------------------------------------------------------------
# Backward interval requirement through bitvector operators
# ---------------------------------------------------------------------------


def _require(expr: BVExpr, required: Interval, domains: Domains) -> bool:
    """Require ``expr``'s value to lie in ``required``; narrow leaf domains.

    Returns True when a variable domain changed; raises Infeasible when the
    requirement is unsatisfiable.
    """
    required = required.meet(Interval.top(expr.width))
    if required.is_empty():
        raise Infeasible("empty requirement")

    if isinstance(expr, BVConst):
        if expr.value not in required:
            raise Infeasible("constant outside requirement")
        return False

    if not isinstance(expr, BVVar):
        # The node's value always lies in its forward interval; meeting the
        # requirement with it both detects infeasibility early and keeps the
        # inverted operand bounds tight.
        required = required.meet(interval_eval(expr, domains))
        if required.is_empty():
            raise Infeasible("requirement outside forward interval")

    if isinstance(expr, BVVar):
        current = domains.get(expr, Interval.top(expr.width))
        narrowed = current.meet(required)
        if narrowed.is_empty():
            raise Infeasible(f"domain of {expr.name} emptied")
        if narrowed != current:
            domains[expr] = narrowed
            return True
        return False

    if isinstance(expr, BVBinary):
        return _require_binary(expr, required, domains)

    if isinstance(expr, BVUnary):
        operand = interval_eval(expr.operand, domains)
        w = expr.width
        if expr.op == "bvnot":
            # not x in [lo,hi]  <=>  x in [mask-hi, mask-lo]
            return _require(
                expr.operand,
                Interval(mask(w) - required.hi, mask(w) - required.lo),
                domains,
            )
        # neg x = 0 - x: invert only when x's interval avoids the wrap at 0.
        if expr.op == "neg" and operand.lo > 0:
            top = mask(w) + 1
            return _require(
                expr.operand,
                Interval(top - required.hi, top - required.lo),
                domains,
            )
        return False

    if isinstance(expr, BVIte):
        then_itv = interval_eval(expr.then, domains)
        orelse_itv = interval_eval(expr.orelse, domains)
        then_ok = not then_itv.meet(required).is_empty()
        orelse_ok = not orelse_itv.meet(required).is_empty()
        if not then_ok and not orelse_ok:
            raise Infeasible("both ite branches outside requirement")
        if then_ok and not orelse_ok:
            changed = narrow_with_constraint(_as_true(expr.cond), domains)
            return _require(expr.then, required, domains) or changed
        if orelse_ok and not then_ok:
            changed = narrow_with_constraint(not_(_as_true(expr.cond)), domains)
            return _require(expr.orelse, required, domains) or changed
        return False

    if isinstance(expr, BVExtract):
        if expr.low == 0:
            operand_itv = interval_eval(expr.operand, domains)
            if operand_itv.hi <= mask(expr.width):
                return _require(expr.operand, required, domains)
        return False

    if isinstance(expr, BVExtend):
        if not expr.signed:
            inner_top = Interval.top(expr.operand.width)
            return _require(expr.operand, required.meet(inner_top), domains)
        return False

    if isinstance(expr, BVConcat):
        lw = expr.low_part.width
        changed = False
        high_req = Interval(required.lo >> lw, required.hi >> lw)
        changed = _require(expr.high, high_req, domains) or changed
        if high_req.is_singleton():
            base = high_req.lo << lw
            low_req = Interval(
                max(0, required.lo - base), min(mask(lw), required.hi - base)
            )
            changed = _require(expr.low_part, low_req, domains) or changed
        return changed

    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _as_true(cond: BoolExpr) -> BoolExpr:
    return cond


def _require_binary(expr: BVBinary, required: Interval, domains: Domains) -> bool:
    left = interval_eval(expr.left, domains)
    right = interval_eval(expr.right, domains)
    w = expr.width
    op = expr.op
    top_val = mask(w) + 1

    if op == "add":
        # Invert only when neither forward direction wraps.
        if left.hi + right.hi <= mask(w):
            changed = _require(
                expr.left,
                Interval(required.lo - right.hi, required.hi - right.lo),
                domains,
            )
            return (
                _require(
                    expr.right,
                    Interval(required.lo - left.hi, required.hi - left.lo),
                    domains,
                )
                or changed
            )
        return False

    if op == "sub":
        if left.lo - right.hi >= 0:
            changed = _require(
                expr.left,
                Interval(required.lo + right.lo, required.hi + right.hi),
                domains,
            )
            return (
                _require(
                    expr.right,
                    Interval(left.lo - required.hi, left.hi - required.lo),
                    domains,
                )
                or changed
            )
        return False

    if op == "mul":
        if isinstance(expr.right, BVConst) and expr.right.value != 0:
            c = expr.right.value
            if left.hi * c <= mask(w):
                lo = (required.lo + c - 1) // c
                hi = required.hi // c
                return _require(expr.left, Interval(lo, hi), domains)
        return False

    if op == "udiv":
        if isinstance(expr.right, BVConst) and expr.right.value != 0:
            c = expr.right.value
            return _require(
                expr.left,
                Interval(required.lo * c, required.hi * c + c - 1),
                domains,
            )
        return False

    if op == "shl":
        if isinstance(expr.right, BVConst) and expr.right.value < w:
            c = expr.right.value
            if left.hi << c <= mask(w):
                lo = (required.lo + (1 << c) - 1) >> c
                hi = required.hi >> c
                return _require(expr.left, Interval(lo, hi), domains)
        return False

    if op == "lshr":
        if isinstance(expr.right, BVConst) and expr.right.value < w:
            c = expr.right.value
            lo = required.lo << c
            hi = min(mask(w), (required.hi << c) | ((1 << c) - 1))
            return _require(expr.left, Interval(lo, hi), domains)
        return False

    if op == "bvand":
        if isinstance(expr.right, BVConst):
            # x & m >= lo implies x >= lo (bits can only be cleared).
            if required.lo > 0:
                return _require(
                    expr.left, Interval(required.lo, mask(w)), domains
                )
        return False

    if op == "bvor":
        # x | m <= hi implies x <= hi (bits can only be set).
        return _require(expr.left, Interval(0, required.hi), domains)

    if op == "bvxor":
        if isinstance(expr.right, BVConst) and required.is_singleton():
            return _require(
                expr.left, Interval.of(required.lo ^ expr.right.value), domains
            )
        return False

    if op == "urem":
        if isinstance(expr.right, BVConst) and expr.right.value != 0:
            c = expr.right.value
            if required.lo > 0 and left.hi < c:
                # x % c == x when x < c
                return _require(expr.left, required, domains)
        return False

    # sdiv/srem/ashr and variable-amount shifts: no backward narrowing;
    # the search resolves these by splitting.
    del top_val
    return False
