"""Regenerate Table I: the 100-node grid under COB / COW / SDS.

Usage::

    python -m repro.bench.table1 [nodes]          # default 100
    SDE_FULL=1 python -m repro.bench.table1       # paper-scale parameters

Default scale trims the simulated time so the whole table regenerates in a
few minutes of wall clock; COB gets a state cap and is reported "aborted"
when it blows through it — exactly how the paper reports COB's row.
"""

from __future__ import annotations

import sys
from typing import List

from ..workloads.grid import paper_grid_scenario
from .report import render_table1
from .runner import BenchRow, full_scale, run_algorithms

__all__ = ["table1_rows", "main"]

#: COB state cap, mirroring the paper's ~40 GB memory cap that stopped COB
#: at 1,025,700 states.
COB_STATE_CAP = 1_000_000
COB_WALL_CAP_SECONDS = 180.0
FULL_COB_WALL_CAP_SECONDS = 3600.0


def table1_rows(nodes: int = 100) -> List[BenchRow]:
    """Run the Table I experiment and return one row per algorithm."""
    if full_scale():
        sim_seconds = 10
        cob_wall = FULL_COB_WALL_CAP_SECONDS
    else:
        sim_seconds = 10 if nodes <= 49 else 6
        cob_wall = COB_WALL_CAP_SECONDS

    def factory():
        return paper_grid_scenario(
            nodes,
            sim_seconds=sim_seconds,
            sample_every_events=256,
        )

    return run_algorithms(
        factory,
        cob_max_states=COB_STATE_CAP,
        cob_max_wall_seconds=cob_wall,
    )


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    nodes = int(argv[0]) if argv else 100
    rows = table1_rows(nodes)
    print(
        render_table1(
            rows,
            f"Table I — {nodes}-node scenario with symbolic packet drops",
        )
    )
    print()
    print("paper (Table I, 100 nodes):")
    print("  COB 9h:39m (aborted) / 1,025,700 states / 38.1 GB")
    print("  COW 1h:38m           /    30,464 states /  3.4 GB")
    print("  SDS 19m              /     4,159 states /  1.6 GB")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
