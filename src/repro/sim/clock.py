"""Virtual time for the simulation.

Time is integral milliseconds.  The clock only moves forward, and only when
the engine dispatches an event — symbolic execution of an event handler is
instantaneous in virtual time, exactly like KleeNet's event semantics ("in
each step KleeNet executes an event of a node and advances the time to the
next event in the queue").
"""

from __future__ import annotations

__all__ = ["VirtualClock", "MS", "SECONDS"]

MS = 1
SECONDS = 1000


class VirtualClock:
    """Monotonic virtual clock with a simulation horizon."""

    def __init__(self, horizon: int) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self._now = 0
        self.horizon = horizon

    @property
    def now(self) -> int:
        return self._now

    def advance_to(self, time: int) -> None:
        if time < self._now:
            raise ValueError(
                f"virtual time cannot move backwards ({self._now} -> {time})"
            )
        self._now = time

    def expired(self, time: int) -> bool:
        """True when ``time`` lies beyond the simulation horizon."""
        return time > self.horizon

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now}ms, horizon={self.horizon}ms)"
