"""NSL — the Node Scripting Language guest programs are written in.

A C-like language compiled to a stack bytecode executed by the symbolic VM
(:mod:`repro.vm`).  This package is the stand-in for KleeNet's
C-via-LLVM-bitcode pipeline: node software is *unmodified* NSL source;
symbolic behaviour enters only through the ``symbolic()`` intrinsic and the
engine's failure models.
"""

from .builtins import BUILTINS, check_arity, is_builtin  # noqa: F401
from .bytecode import CompiledProgram, FuncInfo, Instr, Op, disassemble  # noqa: F401
from .compiler import compile_program, compile_source  # noqa: F401
from .errors import CompileError, LexError, ParseError, SemanticError  # noqa: F401
from .lexer import Token, tokenize  # noqa: F401
from .nodes import Program  # noqa: F401
from .parser import parse  # noqa: F401
from .stdlib import NSL_STDLIB, with_stdlib  # noqa: F401
