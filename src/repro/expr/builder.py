"""Smart constructors for expressions.

These are the only functions the rest of the system uses to build
expressions.  They constant-fold eagerly, apply cheap local algebraic
rewrites, and keep boolean connectives in a canonical n-ary form so that
path constraints stay small.  Aggressive folding matters: in the SDE
workloads most operands are concrete (only failure decisions and selected
packet bytes are symbolic), so the vast majority of guest arithmetic reduces
to plain integers and never reaches the solver.
"""

from __future__ import annotations

from typing import Iterable, Union

from .ast import (
    BVBinary,
    BVConcat,
    BVConst,
    BVExpr,
    BVExtend,
    BVExtract,
    BVIte,
    BVUnary,
    BVVar,
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolNot,
    BoolOr,
    Cmp,
    mask,
    to_signed,
)

__all__ = [
    "bv",
    "var",
    "add",
    "sub",
    "mul",
    "udiv",
    "urem",
    "sdiv",
    "srem",
    "bvand",
    "bvor",
    "bvxor",
    "shl",
    "lshr",
    "ashr",
    "neg",
    "bvnot",
    "ite",
    "extract",
    "zext",
    "sext",
    "concat",
    "truncate",
    "eq",
    "ne",
    "ult",
    "ule",
    "ugt",
    "uge",
    "slt",
    "sle",
    "sgt",
    "sge",
    "true",
    "false",
    "bool_const",
    "not_",
    "and_",
    "or_",
    "implies",
    "as_bv",
]

TRUE = BoolConst(True)
FALSE = BoolConst(False)


def true() -> BoolConst:
    return TRUE


def false() -> BoolConst:
    return FALSE


def bool_const(value: bool) -> BoolConst:
    return TRUE if value else FALSE


def bv(value: int, width: int = 32) -> BVConst:
    """A constant bitvector (value is truncated to ``width`` bits)."""
    return BVConst(value, width)


def var(name: str, width: int = 32) -> BVVar:
    """A fresh-or-interned symbolic variable."""
    return BVVar(name, width)


def as_bv(value: Union[int, BVExpr], width: int = 32) -> BVExpr:
    """Coerce a Python int to a constant; pass expressions through."""
    if isinstance(value, int):
        return BVConst(value, width)
    return value


def _both_const(a: BVExpr, b: BVExpr) -> bool:
    return isinstance(a, BVConst) and isinstance(b, BVConst)


def _check_widths(a: BVExpr, b: BVExpr) -> None:
    if a.width != b.width:
        raise ValueError(f"width mismatch: {a.width} vs {b.width}")


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


def add(a: BVExpr, b: BVExpr) -> BVExpr:
    _check_widths(a, b)
    w = a.width
    if _both_const(a, b):
        return BVConst(a.value + b.value, w)
    # Canonical order: constant on the right.
    if isinstance(a, BVConst):
        a, b = b, a
    if isinstance(b, BVConst) and b.value == 0:
        return a
    # (x + c1) + c2  ->  x + (c1+c2)
    if (
        isinstance(b, BVConst)
        and isinstance(a, BVBinary)
        and a.op == "add"
        and isinstance(a.right, BVConst)
    ):
        return add(a.left, BVConst(a.right.value + b.value, w))
    return BVBinary("add", a, b)


def sub(a: BVExpr, b: BVExpr) -> BVExpr:
    _check_widths(a, b)
    w = a.width
    if _both_const(a, b):
        return BVConst(a.value - b.value, w)
    if isinstance(b, BVConst):
        if b.value == 0:
            return a
        # x - c  ->  x + (-c): reuse add's reassociation rules.
        return add(a, BVConst(-b.value, w))
    if a is b:
        return BVConst(0, w)
    return BVBinary("sub", a, b)


def mul(a: BVExpr, b: BVExpr) -> BVExpr:
    _check_widths(a, b)
    w = a.width
    if _both_const(a, b):
        return BVConst(a.value * b.value, w)
    if isinstance(a, BVConst):
        a, b = b, a
    if isinstance(b, BVConst):
        if b.value == 0:
            return BVConst(0, w)
        if b.value == 1:
            return a
    return BVBinary("mul", a, b)


def udiv(a: BVExpr, b: BVExpr) -> BVExpr:
    _check_widths(a, b)
    w = a.width
    if isinstance(b, BVConst) and b.value == 0:
        # Division by zero is trapped by the VM before building the
        # expression; for the algebra we define x /u 0 = all-ones (SMT-LIB).
        return BVConst(mask(w), w)
    if _both_const(a, b):
        return BVConst(a.value // b.value, w)
    if isinstance(b, BVConst) and b.value == 1:
        return a
    return BVBinary("udiv", a, b)


def urem(a: BVExpr, b: BVExpr) -> BVExpr:
    _check_widths(a, b)
    w = a.width
    if isinstance(b, BVConst) and b.value == 0:
        return a  # SMT-LIB: x %u 0 = x
    if _both_const(a, b):
        return BVConst(a.value % b.value, w)
    if isinstance(b, BVConst) and b.value == 1:
        return BVConst(0, w)
    return BVBinary("urem", a, b)


def sdiv(a: BVExpr, b: BVExpr) -> BVExpr:
    _check_widths(a, b)
    w = a.width
    if _both_const(a, b):
        bs = to_signed(b.value, w)
        if bs == 0:
            return BVConst(mask(w), w)
        as_ = to_signed(a.value, w)
        # C-style truncation toward zero.
        q = abs(as_) // abs(bs)
        if (as_ < 0) != (bs < 0):
            q = -q
        return BVConst(q, w)
    if isinstance(b, BVConst) and to_signed(b.value, w) == 1:
        return a
    return BVBinary("sdiv", a, b)


def srem(a: BVExpr, b: BVExpr) -> BVExpr:
    _check_widths(a, b)
    w = a.width
    if _both_const(a, b):
        bs = to_signed(b.value, w)
        if bs == 0:
            return a
        as_ = to_signed(a.value, w)
        r = abs(as_) % abs(bs)
        if as_ < 0:
            r = -r
        return BVConst(r, w)
    return BVBinary("srem", a, b)


def neg(a: BVExpr) -> BVExpr:
    if isinstance(a, BVConst):
        return BVConst(-a.value, a.width)
    if isinstance(a, BVUnary) and a.op == "neg":
        return a.operand
    return BVUnary("neg", a)


# ---------------------------------------------------------------------------
# Bitwise and shifts
# ---------------------------------------------------------------------------


def bvand(a: BVExpr, b: BVExpr) -> BVExpr:
    _check_widths(a, b)
    w = a.width
    if _both_const(a, b):
        return BVConst(a.value & b.value, w)
    if isinstance(a, BVConst):
        a, b = b, a
    if isinstance(b, BVConst):
        if b.value == 0:
            return BVConst(0, w)
        if b.value == mask(w):
            return a
    if a is b:
        return a
    return BVBinary("bvand", a, b)


def bvor(a: BVExpr, b: BVExpr) -> BVExpr:
    _check_widths(a, b)
    w = a.width
    if _both_const(a, b):
        return BVConst(a.value | b.value, w)
    if isinstance(a, BVConst):
        a, b = b, a
    if isinstance(b, BVConst):
        if b.value == 0:
            return a
        if b.value == mask(w):
            return BVConst(mask(w), w)
    if a is b:
        return a
    return BVBinary("bvor", a, b)


def bvxor(a: BVExpr, b: BVExpr) -> BVExpr:
    """XOR with full AC canonicalization.

    XOR trees are flattened, constants folded, and repeated operands
    cancelled pairwise (x ^ x = 0), then rebuilt as a left-leaning chain
    over hash-sorted operands with any constant last.  This makes
    algebraically equal XOR combinations *structurally* equal — e.g.
    ``(a^d)^(b^d)`` interns to the same node as ``a^b`` — which both keeps
    path constraints small and lets the solver discharge XOR identities
    without search.
    """
    _check_widths(a, b)
    w = a.width
    constant = 0
    counts: dict = {}
    stack = [a, b]
    while stack:
        term = stack.pop()
        if isinstance(term, BVBinary) and term.op == "bvxor":
            stack.append(term.left)
            stack.append(term.right)
        elif isinstance(term, BVConst):
            constant ^= term.value
        else:
            counts[term] = counts.get(term, 0) + 1
    remaining = [term for term, count in counts.items() if count % 2]
    remaining.sort(key=lambda e: e._hash)
    if not remaining:
        return BVConst(constant, w)
    expr = remaining[0]
    for term in remaining[1:]:
        expr = BVBinary("bvxor", expr, term)
    if constant:
        expr = BVBinary("bvxor", expr, BVConst(constant, w))
    return expr


def bvnot(a: BVExpr) -> BVExpr:
    if isinstance(a, BVConst):
        return BVConst(~a.value, a.width)
    if isinstance(a, BVUnary) and a.op == "bvnot":
        return a.operand
    return BVUnary("bvnot", a)


def shl(a: BVExpr, b: BVExpr) -> BVExpr:
    _check_widths(a, b)
    w = a.width
    if isinstance(b, BVConst):
        if b.value == 0:
            return a
        if b.value >= w:
            return BVConst(0, w)
        if isinstance(a, BVConst):
            return BVConst(a.value << b.value, w)
    return BVBinary("shl", a, b)


def lshr(a: BVExpr, b: BVExpr) -> BVExpr:
    _check_widths(a, b)
    w = a.width
    if isinstance(b, BVConst):
        if b.value == 0:
            return a
        if b.value >= w:
            return BVConst(0, w)
        if isinstance(a, BVConst):
            return BVConst(a.value >> b.value, w)
    return BVBinary("lshr", a, b)


def ashr(a: BVExpr, b: BVExpr) -> BVExpr:
    _check_widths(a, b)
    w = a.width
    if isinstance(b, BVConst):
        if b.value == 0:
            return a
        if isinstance(a, BVConst):
            shift = min(b.value, w - 1)
            return BVConst(to_signed(a.value, w) >> shift, w)
    return BVBinary("ashr", a, b)


# ---------------------------------------------------------------------------
# Structure
# ---------------------------------------------------------------------------


def ite(cond: BoolExpr, then: BVExpr, orelse: BVExpr) -> BVExpr:
    _check_widths(then, orelse)
    if isinstance(cond, BoolConst):
        return then if cond.value else orelse
    if then is orelse:
        return then
    return BVIte(cond, then, orelse)


def extract(a: BVExpr, low: int, width: int) -> BVExpr:
    if low < 0 or low + width > a.width:
        raise ValueError(f"extract [{low}:{low + width}) out of {a.width} bits")
    if low == 0 and width == a.width:
        return a
    if isinstance(a, BVConst):
        return BVConst(a.value >> low, width)
    if isinstance(a, BVExtract):
        return extract(a.operand, a.low + low, width)
    if isinstance(a, BVExtend) and not a.signed and low + width <= a.operand.width:
        return extract(a.operand, low, width)
    if isinstance(a, BVExtend) and not a.signed and low >= a.operand.width:
        return BVConst(0, width)
    if isinstance(a, BVConcat):
        lw = a.low_part.width
        if low + width <= lw:
            return extract(a.low_part, low, width)
        if low >= lw:
            return extract(a.high, low - lw, width)
    return BVExtract(a, low, width)


def zext(a: BVExpr, width: int) -> BVExpr:
    if width < a.width:
        raise ValueError(f"zext narrows {a.width} -> {width}")
    if width == a.width:
        return a
    if isinstance(a, BVConst):
        return BVConst(a.value, width)
    if isinstance(a, BVExtend) and not a.signed:
        return zext(a.operand, width)
    return BVExtend(a, width, signed=False)


def sext(a: BVExpr, width: int) -> BVExpr:
    if width < a.width:
        raise ValueError(f"sext narrows {a.width} -> {width}")
    if width == a.width:
        return a
    if isinstance(a, BVConst):
        return BVConst(to_signed(a.value, a.width), width)
    return BVExtend(a, width, signed=True)


def concat(high: BVExpr, low: BVExpr) -> BVExpr:
    if isinstance(high, BVConst) and isinstance(low, BVConst):
        return BVConst((high.value << low.width) | low.value, high.width + low.width)
    if isinstance(high, BVConst) and high.value == 0:
        return zext(low, high.width + low.width)
    return BVConcat(high, low)


def truncate(a: BVExpr, width: int) -> BVExpr:
    """Narrow to the low ``width`` bits (no-op when already narrower-or-equal)."""
    if width >= a.width:
        return a
    return extract(a, 0, width)


# ---------------------------------------------------------------------------
# Comparisons
# ---------------------------------------------------------------------------

_CMP_FOLD = {
    "eq": lambda a, b, w: a == b,
    "ne": lambda a, b, w: a != b,
    "ult": lambda a, b, w: a < b,
    "ule": lambda a, b, w: a <= b,
    "slt": lambda a, b, w: to_signed(a, w) < to_signed(b, w),
    "sle": lambda a, b, w: to_signed(a, w) <= to_signed(b, w),
}

def _cmp(op: str, a: BVExpr, b: BVExpr) -> BoolExpr:
    _check_widths(a, b)
    if _both_const(a, b):
        return bool_const(_CMP_FOLD[op](a.value, b.value, a.width))
    if a is b:
        return bool_const(op in ("eq", "ule", "sle"))
    # Keep equalities canonical: constant on the right.
    if op in ("eq", "ne") and isinstance(a, BVConst):
        a, b = b, a
    # Comparisons against booleanized values recover the boolean: the VM
    # materializes comparison results as ite(c, 1, 0), and the subsequent
    # branch tests that cell against zero.  Folding here keeps path
    # constraints in terms of the original condition c.
    if op in ("eq", "ne") and isinstance(b, BVConst):
        folded = _cmp_of_ite(op, a, b)
        if folded is not None:
            return folded
    return Cmp(op, a, b)


def _cmp_of_ite(op: str, a: BVExpr, b: BVConst):
    if not isinstance(a, BVIte):
        return None
    then, orelse = a.then, a.orelse
    if not (isinstance(then, BVConst) and isinstance(orelse, BVConst)):
        return None
    then_matches = then.value == b.value
    orelse_matches = orelse.value == b.value
    if op == "ne":
        then_matches, orelse_matches = not then_matches, not orelse_matches
    if then_matches and orelse_matches:
        return TRUE
    if then_matches:
        return a.cond
    if orelse_matches:
        return not_(a.cond)
    return FALSE


def eq(a: BVExpr, b: BVExpr) -> BoolExpr:
    return _cmp("eq", a, b)


def ne(a: BVExpr, b: BVExpr) -> BoolExpr:
    return _cmp("ne", a, b)


def ult(a: BVExpr, b: BVExpr) -> BoolExpr:
    return _cmp("ult", a, b)


def ule(a: BVExpr, b: BVExpr) -> BoolExpr:
    return _cmp("ule", a, b)


def ugt(a: BVExpr, b: BVExpr) -> BoolExpr:
    return _cmp("ult", b, a)


def uge(a: BVExpr, b: BVExpr) -> BoolExpr:
    return _cmp("ule", b, a)


def slt(a: BVExpr, b: BVExpr) -> BoolExpr:
    return _cmp("slt", a, b)


def sle(a: BVExpr, b: BVExpr) -> BoolExpr:
    return _cmp("sle", a, b)


def sgt(a: BVExpr, b: BVExpr) -> BoolExpr:
    return _cmp("slt", b, a)


def sge(a: BVExpr, b: BVExpr) -> BoolExpr:
    return _cmp("sle", b, a)


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------


# not(a < b) == b <= a, not(a <= b) == b < a: negation stays in CMP_OPS by
# swapping operands, so path constraints never contain negated comparisons.
_CMP_NEG = {
    "eq": ("ne", False),
    "ne": ("eq", False),
    "ult": ("ule", True),
    "ule": ("ult", True),
    "slt": ("sle", True),
    "sle": ("slt", True),
}


def not_(a: BoolExpr) -> BoolExpr:
    if isinstance(a, BoolConst):
        return bool_const(not a.value)
    if isinstance(a, BoolNot):
        return a.operand
    if isinstance(a, Cmp):
        op, swap = _CMP_NEG[a.op]
        left, right = (a.right, a.left) if swap else (a.left, a.right)
        return Cmp(op, left, right)
    return BoolNot(a)


def _flatten(cls, operands: Iterable[BoolExpr]):
    for op in operands:
        if isinstance(op, cls):
            yield from op.operands
        else:
            yield op


def and_(*operands: BoolExpr) -> BoolExpr:
    flat = []
    seen = set()
    for op in _flatten(BoolAnd, operands):
        if isinstance(op, BoolConst):
            if not op.value:
                return FALSE
            continue
        if op not in seen:
            seen.add(op)
            flat.append(op)
    for op in flat:
        if not_(op) in seen:
            return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=lambda e: e._hash)
    return BoolAnd(tuple(flat))


def or_(*operands: BoolExpr) -> BoolExpr:
    flat = []
    seen = set()
    for op in _flatten(BoolOr, operands):
        if isinstance(op, BoolConst):
            if op.value:
                return TRUE
            continue
        if op not in seen:
            seen.add(op)
            flat.append(op)
    for op in flat:
        if not_(op) in seen:
            return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=lambda e: e._hash)
    return BoolOr(tuple(flat))


def implies(a: BoolExpr, b: BoolExpr) -> BoolExpr:
    return or_(not_(a), b)
