"""Section III-D: attainable savings of the equal-packet optimization.

The paper sketches (but does not implement) merging transmissions whose
packets are equal in content/time and originate from a sending state and
its rivals.  ``repro.core.optimize`` measures exactly how many mapping
invocations such an optimizer could have skipped on a finished run.
"""

import pytest

from repro.api import build_engine
from repro.core import analyze_equal_packets
from repro.workloads import grid_scenario, line_scenario


@pytest.mark.parametrize(
    "name,factory",
    [
        ("grid4", lambda: grid_scenario(4, sim_seconds=6)),
        ("grid5", lambda: grid_scenario(5, sim_seconds=6)),
        ("line5", lambda: line_scenario(5, sim_seconds=5)),
    ],
)
def test_equal_packet_savings(once, benchmark, name, factory):
    def measure():
        engine = build_engine(factory(), "sds")
        engine.run()
        return engine, analyze_equal_packets(engine.states, engine.packets)

    engine, report = once(measure)
    # The structured collect scenarios re-send identical readings from
    # sibling lineages, so the optimizer always has something to merge —
    # and never everything (the first transmission of each group stays).
    assert 0 < report.mergeable_transmissions < report.total_transmissions
    benchmark.extra_info["scenario"] = name
    benchmark.extra_info["transmissions"] = report.total_transmissions
    benchmark.extra_info["mergeable"] = report.mergeable_transmissions
    benchmark.extra_info["savings"] = round(report.savings_fraction(), 3)
    benchmark.extra_info["merge_groups"] = len(report.groups)
