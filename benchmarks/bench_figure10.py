"""Figure 10: state growth (a/c/e) and memory growth (b/d/f) over time for
the 25-, 49- and 100-node scenarios under all three algorithms.

Checked shape properties per subfigure pair:

- all curves grow monotonically;
- at every scenario size the final ordering is SDS <= COW <= COB in both
  states and accounted memory;
- the COW/SDS gap widens with network size ("with growing network size,
  the performance gain of SDS grows"), and COB is capped/aborted at the
  largest size exactly like the paper's Figure 10(e/f).
"""

import pytest

from repro.bench.runner import full_scale, run_one
from repro.workloads import paper_grid_scenario

if full_scale():
    _PARAMS = {
        25: dict(sim=10, cob_states=1_200_000, cob_wall=3600.0),
        49: dict(sim=10, cob_states=1_200_000, cob_wall=3600.0),
        100: dict(sim=10, cob_states=1_200_000, cob_wall=3600.0),
    }
else:
    _PARAMS = {
        25: dict(sim=6, cob_states=120_000, cob_wall=60.0),
        49: dict(sim=4, cob_states=120_000, cob_wall=60.0),
        100: dict(sim=3, cob_states=120_000, cob_wall=60.0),
    }

_final = {}


def _run_size(nodes):
    params = _PARAMS[nodes]
    rows = {}
    for algorithm in ("sds", "cow", "cob"):
        scenario = paper_grid_scenario(
            nodes, sim_seconds=params["sim"], sample_every_events=16
        )
        caps = {}
        if algorithm == "cob":
            caps = dict(
                max_states=params["cob_states"],
                max_wall_seconds=params["cob_wall"],
            )
        rows[algorithm] = run_one(scenario, algorithm, **caps)
    return rows


@pytest.mark.parametrize("nodes", [25, 49, 100])
def test_figure10_growth(once, benchmark, nodes):
    rows = once(_run_size, nodes)

    for algorithm, row in rows.items():
        states_series = [s.total_states for s in row.samples]
        memory_series = [s.accounted_bytes for s in row.samples]
        assert states_series == sorted(states_series), f"{algorithm} shrank"
        # Memory is dominated by state growth but can dip slightly as event
        # queues drain; require the overall trend only.
        assert memory_series[-1] >= memory_series[0]
        benchmark.extra_info[f"{algorithm}_states"] = row.states
        benchmark.extra_info[f"{algorithm}_memory"] = row.accounted_bytes
        benchmark.extra_info[f"{algorithm}_aborted"] = row.aborted

    sds, cow, cob = rows["sds"], rows["cow"], rows["cob"]
    assert sds.states <= cow.states <= cob.states
    assert sds.accounted_bytes <= cow.accounted_bytes <= cob.accounted_bytes
    assert not sds.aborted and not cow.aborted

    _final[nodes] = (cow.states / max(sds.states, 1), cob.aborted)
    if len(_final) == 3:
        # The COW/SDS factor grows with network size (the key SDE claim).
        factors = [_final[n][0] for n in (25, 49, 100)]
        assert factors[0] < factors[2], f"gap did not widen: {factors}"
        print()
        print("COW/SDS state factors by size:", {
            n: round(_final[n][0], 2) for n in (25, 49, 100)
        })
        print("COB aborted by size:", {n: _final[n][1] for n in (25, 49, 100)})
