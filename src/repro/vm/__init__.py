"""The symbolic virtual machine (KLEE stand-in).

Executes compiled NSL bytecode over states whose memory cells may hold
symbolic expressions, forking on symbolic control flow and producing error
states for detected defects.
"""

from .coverage import CoverageReport, FunctionCoverage, coverage_report  # noqa: F401
from .errors import ErrorKind, GuestError  # noqa: F401
from .executor import Executor, NullHost, SyscallHost  # noqa: F401
from .state import CellValue, Event, ExecutionState, Status  # noqa: F401
from .syscalls import SyscallAbort  # noqa: F401
