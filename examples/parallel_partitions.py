#!/usr/bin/env python3
"""Parallel execution of independent partitions (the paper's Section VI).

"In the future, we plan to parallelize SDE's implementation ... we have to
identify the sets of states which can be safely offloaded on other cores."

Dstates that share no execution state never interact, so each connected
component of the dstate/state graph can run on its own core.  This script
runs the grid scenario under COW and SDS twice — sequentially, then with
:class:`repro.core.parallel.ParallelRunner` on worker processes — and
shows (1) the partition structure and ideal speedup it allows, (2) the
measured wall-clock of the real parallel run, and (3) that the merged
parallel report is *identical* to the sequential one.

It also exposes a real trade-off: SDS's superposition makes states span
dstates, fusing partitions that COW keeps separate.

Run: ``python examples/parallel_partitions.py [side] [workers]``
"""

import sys
import time

from repro.api import ParallelRunner, build_engine
from repro.core import partition_groups, speedup_bound
from repro.workloads import grid_scenario

SIM_SECONDS = 6
SPLIT_MS = 2000


def main() -> int:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    print(f"{side}x{side} grid collection scenario, {workers} workers\n")
    for algorithm in ("cow", "sds"):
        scenario = grid_scenario(side, sim_seconds=SIM_SECONDS)
        t0 = time.perf_counter()
        engine = build_engine(scenario, algorithm)
        report = engine.run()
        sequential_s = time.perf_counter() - t0

        partitions = partition_groups(engine.mapper)
        bound = speedup_bound(partitions)
        sizes = sorted(
            (p.state_count() for p in partitions), reverse=True
        )

        t1 = time.perf_counter()
        parallel = ParallelRunner(
            grid_scenario(side, sim_seconds=SIM_SECONDS),
            algorithm,
            workers=workers,
            split_ms=SPLIT_MS,
        ).run()
        parallel_s = time.perf_counter() - t1

        identical = (
            parallel.total_states == report.total_states
            and parallel.group_count == report.group_count
            and parallel.events_executed == report.events_executed
            and parallel.state_census() == engine.state_census()
        )
        print(f"[{algorithm}] {report.total_states} states in"
              f" {report.group_count} dstates")
        print(f"  independent partitions : {len(partitions)}")
        print(f"  partition sizes (top 8): {sizes[:8]}")
        print(f"  ideal parallel speedup : {bound:.2f}x")
        print(f"  sequential wall-clock  : {sequential_s:.2f}s")
        print(f"  parallel wall-clock    : {parallel_s:.2f}s"
              f"  (x{sequential_s / max(parallel_s, 1e-9):.2f} measured,"
              f" x{parallel.projected:.2f} projected on {workers} workers,"
              f" {parallel.partition_count} partitions shipped)")
        print(f"  merged == sequential   : {identical}")
        print()
    print(
        "COW fragments into one partition per dstate (embarrassingly\n"
        "parallel, but over a larger state set); SDS's shared bystanders\n"
        "fuse partitions - compactness traded against offloadability.\n"
        "Either way the merged report is worker-count independent."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
