"""Distributed exploration: partitioner, coordinator, and steal protocol.

The contracts pinned here (see docs/DISTRIBUTED.md):

1. A distributed run — any worker count, stealing on or off, transports
   inline or multiprocess — merges to exactly the sequential run: same
   semantic counters, same state census, same canonical trace multiset.
2. Jobs are self-contained: a pickled job round-trips through bytes and
   replays its subtree in a fresh engine with no access to the
   coordinator's memory.
3. The deepening loop stops when the component graph has fractured into
   enough balanced partitions, and degrades gracefully when it cannot:
   a frontier that drains before fracturing (or an explicit cut depth
   past the end of the run) yields a sequential-prefix-only report.
4. Steal grants move work atomically (partial + kept + stolen in one
   reply); a donor with fewer than two live partitions denies; stale
   replies are dropped whole; killed workers retry through the same
   typed-failure path as ``ParallelRunner``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.api import Scenario, Topology, build_engine
from repro.core.distributed import (
    DistributedRunner,
    InlineTransport,
    PathPrefix,
    Transport,
    _Coordinator,
    _split_for_steal,
    deepen_until_partitioned,
)
from repro.core.parallel import (
    restore_worker_engine,
    snapshot_assignment_tasks,
)
from repro.core.partition import partition_groups, steal_split
from repro.core.resilience import RetryPolicy, WorkerFailure
from repro.obs import TraceEmitter, diff_traces, validate_trace

SYMBOLIC_PING = """
var seen;
func on_boot() { timer_set(0, 40 + node_id() * 7); }
func on_timer(tid) {
    var buf[1];
    buf[0] = symbolic("reading", 8);
    bc_send(buf, 1);
}
func on_recv(src, len) {
    var v = recv_byte(0);
    if (v > 128) { v -= 128; }
    if (v > 64) { v -= 64; }
    if (v > 32) { seen += 1; } else { seen += 2; }
}
"""

FAST = RetryPolicy(
    max_retries=2,
    backoff_base_seconds=0.001,
    poll_interval_seconds=0.02,
)


def _scenario():
    """A 2-node symbolic flood: one connected SDS component that
    fractures within ~20 events — heavy enough to partition, light
    enough for tier-1."""
    return Scenario(
        name="symbolic-ping",
        program=SYMBOLIC_PING,
        topology=Topology.full_mesh(2),
        horizon_ms=150,
    )


def _sequential(trace=None):
    engine = build_engine(_scenario(), "sds", trace=trace)
    report = engine.run()
    return engine, report


def _assert_matches_sequential(report, seq_engine, seq_report):
    assert report.total_states == seq_report.total_states
    assert report.group_count == seq_report.group_count
    assert report.events_executed == seq_report.events_executed
    assert report.instructions == seq_report.instructions
    assert report.solver_queries == seq_report.solver_queries
    assert report.state_census() == seq_engine.state_census()


class TestDeepening:
    def test_connected_frontier_fractures_with_depth(self):
        engine = build_engine(_scenario(), "sds")
        partitions = deepen_until_partitioned(
            engine, min_partitions=4, probe_events=2
        )
        assert len(partitions) >= 4
        assert engine.events_executed > 0
        assert not engine.aborted

    def test_drained_frontier_returns_empty(self):
        # min_partitions above what the scenario ever fractures into:
        # the probe runs the engine dry and reports what it found.
        engine = build_engine(_scenario(), "sds")
        partitions = deepen_until_partitioned(
            engine, min_partitions=10_000, probe_limit_events=None
        )
        assert not engine.scheduler_snapshot()
        assert len(partitions) >= 1  # terminal components, all quiescent


class TestJobRoundTrip:
    def test_pickled_job_replays_its_subtree(self):
        engine = build_engine(_scenario(), "sds")
        partitions = deepen_until_partitioned(
            engine, min_partitions=4, probe_events=2
        )
        bundle = [partitions[0]]
        tasks, _ = snapshot_assignment_tasks(engine, [bundle], trace=False)
        payload = pickle.dumps(tasks[0])

        restored = restore_worker_engine(pickle.loads(payload))
        assert len(restored.states) == partitions[0].state_count()
        restored.run()
        assert restored.events_executed > 0
        assert not restored.aborted

    def test_path_prefix_pickles(self):
        engine = build_engine(_scenario(), "sds")
        partitions = deepen_until_partitioned(
            engine, min_partitions=4, probe_events=2
        )
        tasks, _ = snapshot_assignment_tasks(
            engine, [partitions[:2]], trace=False
        )
        from repro.core.distributed import _path_prefix

        prefix = _path_prefix(engine, partitions[:2])
        clone = pickle.loads(pickle.dumps(prefix))
        assert clone.depth == engine.events_executed
        assert clone.groups == sum(p.group_count() for p in partitions[:2])
        assert clone.states == sum(p.state_count() for p in partitions[:2])
        assert clone.conjuncts == prefix.conjuncts


class TestDistributedEqualsSequential:
    def test_one_worker_uses_inline_transport(self):
        seq_engine, seq_report = _sequential()
        report = DistributedRunner(
            _scenario(), "sds", workers=1, probe_events=2
        ).run()
        assert report.transport_name == "InlineTransport"
        assert report.jobs_dispatched == 1
        _assert_matches_sequential(report, seq_engine, seq_report)

    @pytest.mark.parametrize("steal", [False, True])
    def test_multiprocess_workers_match(self, steal):
        seq_engine, seq_report = _sequential()
        report = DistributedRunner(
            _scenario(),
            "sds",
            workers=3,
            min_partitions=4,
            probe_events=2,
            steal=steal,
            retry_policy=FAST,
        ).run()
        _assert_matches_sequential(report, seq_engine, seq_report)
        assert report.jobs_dispatched >= 2

    def test_trace_multiset_equals_sequential(self):
        seq_trace = TraceEmitter()
        _sequential(trace=seq_trace)
        dist_trace = TraceEmitter()
        report = DistributedRunner(
            _scenario(),
            "sds",
            workers=2,
            probe_events=2,
            trace=dist_trace,
            retry_policy=FAST,
        ).run()
        assert not report.aborted
        assert validate_trace(dist_trace.events) == []
        diff = diff_traces(seq_trace.events, dist_trace.events)
        assert diff.equal, diff.render(limit=5)
        kinds = {event["ev"] for event in dist_trace.events}
        assert "worker.partition.start" in kinds
        assert "worker.job.dispatch" in kinds
        assert "worker.merge" in kinds

    def test_explicit_cut_depth_past_run_end(self):
        # The whole run happens in the "prefix": no jobs, no transport
        # work, and the report is exactly the sequential one.
        seq_engine, seq_report = _sequential()
        report = DistributedRunner(
            _scenario(), "sds", workers=4, partition_depth=10**6
        ).run()
        assert report.jobs_dispatched == 0
        assert report.partition_count == 0
        _assert_matches_sequential(report, seq_engine, seq_report)

    def test_distributed_metrics_counters_present(self):
        report = DistributedRunner(
            _scenario(), "sds", workers=1, probe_events=2
        ).run()
        counters = report.metrics["counters"]
        assert counters["distributed.jobs"] == 1
        assert counters["distributed.partition_depth"] == report.partition_depth
        assert "distributed.steals.granted" in counters


class TestStealSplit:
    def test_single_partition_donor_denies(self):
        engine = build_engine(_scenario(), "sds")
        partitions = deepen_until_partitioned(
            engine, min_partitions=4, probe_events=2
        )
        bundle = [partitions[0]]
        tasks, _ = snapshot_assignment_tasks(engine, [bundle], trace=False)
        task = pickle.loads(pickle.dumps(tasks[0]))
        worker = restore_worker_engine(task)
        # One partition, still runnable: nothing to split off.
        assert _split_for_steal(worker, task, 0, 0) is None

    def test_drained_donor_denies(self):
        engine = build_engine(_scenario(), "sds")
        partitions = deepen_until_partitioned(
            engine, min_partitions=4, probe_events=2
        )
        tasks, _ = snapshot_assignment_tasks(
            engine, [partitions], trace=False
        )
        task = pickle.loads(pickle.dumps(tasks[0]))
        worker = restore_worker_engine(task)
        worker.run()  # final partition state: nothing runnable anywhere
        assert _split_for_steal(worker, task, 0, 0) is None

    def test_split_conserves_states(self):
        engine = build_engine(_scenario(), "sds")
        partitions = deepen_until_partitioned(
            engine, min_partitions=4, probe_events=2
        )
        tasks, _ = snapshot_assignment_tasks(
            engine, [partitions], trace=False
        )
        task = pickle.loads(pickle.dumps(tasks[0]))
        worker = restore_worker_engine(task)
        split = _split_for_steal(worker, task, 0, 123)
        assert split is not None
        partial, kept_payload, stolen_jobs = split
        assert partial.total_states == 0
        assert partial.accounted_bytes == 123
        kept_task = pickle.loads(kept_payload)
        kept_engine = restore_worker_engine(kept_task)
        stolen_states = sum(prefix.states for _, prefix in stolen_jobs)
        assert len(kept_engine.states) + stolen_states == len(worker.states)

    def test_steal_split_balances_by_weight(self):
        engine = build_engine(_scenario(), "sds")
        partitions = deepen_until_partitioned(
            engine, min_partitions=4, probe_events=2
        )
        kept, stolen = steal_split(partitions)
        assert kept and stolen
        assert len(kept) + len(stolen) == len(partitions)
        kept_w = sum(p.state_count() for p in kept)
        stolen_w = sum(p.state_count() for p in stolen)
        assert kept_w >= stolen_w  # donor keeps the heavier-or-equal half


class _Prefix:
    def __init__(self, states=1):
        self.states = states


class ScriptedTransport(Transport):
    """A deterministic two-worker transport driven by the test.

    ``send`` records outgoing messages; the script maps each send to the
    replies the fake workers produce, which ``recv`` then serves.
    """

    def __init__(self, worker_count=2):
        self._worker_count = worker_count
        self.sent = []
        self.replies = []
        self.script = []  # callables: (worker, message) -> [replies]
        self._alive = [True] * worker_count
        self.restarts = []

    @property
    def worker_count(self):
        return self._worker_count

    def start(self):
        pass

    def send(self, worker, message):
        self.sent.append((worker, message))
        if self.script:
            handler = self.script.pop(0)
            self.replies.extend(handler(worker, message))

    def recv(self, timeout):
        return self.replies.pop(0) if self.replies else None

    def alive(self, worker):
        return self._alive[worker]

    def restart(self, worker):
        self.restarts.append(worker)
        self._alive[worker] = True

    def stop(self):
        pass


class TestCoordinatorProtocol:
    def _coordinator(self, transport, jobs, **kwargs):
        return _Coordinator(
            transport,
            jobs,
            policy=kwargs.pop("policy", FAST),
            steal=kwargs.pop("steal", True),
            run_inline=kwargs.pop("run_inline", None),
            sleep=lambda _s: None,
            **kwargs,
        )

    def test_steal_denied_during_final_partition(self):
        transport = ScriptedTransport()
        jobs = [(b"j0", _Prefix(4)), (b"j1", _Prefix(4))]

        def on_dispatch_j0(worker, message):
            assert message[0] == "job"
            return []  # worker 0 keeps running

        def on_dispatch_j1(worker, message):
            return [("done", worker, message[1], f"result-{message[1]}")]

        def on_steal(worker, message):
            assert message == ("steal",)
            # Donor is down to its last live partition: deny, then finish.
            return [
                ("steal_deny", worker, 0),
                ("done", worker, 0, "result-0"),
            ]

        transport.script = [on_dispatch_j0, on_dispatch_j1, on_steal]
        coordinator = self._coordinator(transport, jobs)
        coordinator.run()
        assert coordinator.steal_stats.requested == 1
        assert coordinator.steal_stats.denied == 1
        assert coordinator.steal_stats.granted == 0
        assert sorted(coordinator.results) == ["result-0", "result-1"]
        assert coordinator.retries == 0

    def test_steal_grant_enqueues_stolen_jobs(self):
        transport = ScriptedTransport()
        jobs = [(b"j0", _Prefix(8)), (b"j1", _Prefix(2))]

        def on_dispatch_j0(worker, message):
            return []

        def on_dispatch_j1(worker, message):
            return [("done", worker, message[1], "result-1")]

        def on_steal(worker, message):
            return [
                (
                    "steal_reply",
                    worker,
                    0,
                    "partial-0",
                    b"kept-half",
                    [(b"stolen-half", _Prefix(3))],
                ),
                ("done", worker, 0, "result-0"),
            ]

        def on_dispatch_stolen(worker, message):
            assert message[2] == b"stolen-half"
            return [("done", worker, message[1], "result-2")]

        transport.script = [
            on_dispatch_j0,
            on_dispatch_j1,
            on_steal,
            on_dispatch_stolen,
        ]
        coordinator = self._coordinator(transport, jobs)
        coordinator.run()
        assert coordinator.steal_stats.granted == 1
        # Donor's retry payload switched to the kept half.
        assert coordinator.payloads[0] == b"kept-half"
        assert sorted(coordinator.results) == [
            "partial-0",
            "result-0",
            "result-1",
            "result-2",
        ]

    def test_stale_steal_reply_dropped_whole(self):
        # The donor died *after* sending a steal reply that arrives after
        # its job was already requeued: accepting the partial or the
        # stolen half would double-count the replayed subtree.
        transport = ScriptedTransport()
        jobs = [(b"j0", _Prefix(4))]
        coordinator = self._coordinator(transport, jobs, steal=False)
        coordinator.transport.start()
        idle = {0, 1}
        coordinator._dispatch(idle)
        coordinator._busy.pop(0)  # presumed dead; job requeued elsewhere
        coordinator._handle(
            (
                "steal_reply",
                0,
                0,
                "stale-partial",
                b"stale-kept",
                [(b"stale-stolen", _Prefix(2))],
            ),
            idle,
        )
        assert coordinator.results == []
        assert coordinator.steal_stats.granted == 0
        assert coordinator._outstanding == 1

    def test_worker_death_retries_through_typed_failure(self):
        transport = ScriptedTransport()
        jobs = [(b"j0", _Prefix(4))]

        attempts = []

        def on_dispatch(worker, message):
            attempts.append(message[3])
            if len(attempts) == 1:
                transport._alive[worker] = False  # die without reporting
                return []
            return [("done", worker, message[1], "result-0")]

        transport.script = [on_dispatch, on_dispatch]
        coordinator = self._coordinator(transport, jobs, steal=False)
        coordinator.run()
        assert attempts == [0, 1]
        assert transport.restarts == [0]
        assert coordinator.retries == 1
        assert coordinator.results == ["result-0"]

    def test_exhausted_job_raises_typed_failure(self):
        transport = ScriptedTransport(worker_count=1)
        jobs = [(b"j0", _Prefix(4))]

        def always_fail(worker, message):
            return [
                (
                    "fail",
                    worker,
                    message[1],
                    WorkerFailure(
                        task_index=message[1],
                        kind="exception",
                        message="boom",
                        exc_type="RuntimeError",
                    ),
                )
            ]

        transport.script = [always_fail, always_fail, always_fail]

        def inline_fails(job_id, payload):
            raise RuntimeError("inline boom")

        coordinator = self._coordinator(
            transport, jobs, steal=False, run_inline=inline_fails
        )
        with pytest.raises(Exception) as excinfo:
            coordinator.run()
        assert "inline boom" in str(excinfo.value)

    def test_allow_partial_degrades_to_failed_jobs(self):
        import dataclasses

        transport = ScriptedTransport(worker_count=1)
        jobs = [(b"j0", _Prefix(4))]

        def always_fail(worker, message):
            return [
                (
                    "fail",
                    worker,
                    message[1],
                    WorkerFailure(
                        task_index=message[1], kind="exception", message="boom"
                    ),
                )
            ]

        transport.script = [always_fail, always_fail, always_fail]

        def inline_fails(job_id, payload):
            raise RuntimeError("inline boom")

        policy = dataclasses.replace(FAST, allow_partial=True)
        coordinator = self._coordinator(
            transport, jobs, steal=False, run_inline=inline_fails, policy=policy
        )
        coordinator.run()
        assert len(coordinator.failed) == 1
        assert coordinator.failed[0].state_count == 4


class TestChaos:
    def test_chaos_killed_workers_recover_and_match(self, monkeypatch):
        # Every job's first subprocess attempt dies mid-run (including
        # mid-steal-protocol); the retry path must still converge to the
        # sequential result.
        monkeypatch.setenv("SDE_CHAOS_KILL_WORKER", "1")
        seq_engine, seq_report = _sequential()
        report = DistributedRunner(
            _scenario(), "sds", workers=2, probe_events=2, retry_policy=FAST
        ).run()
        assert report.retries >= 1
        assert not report.failed_partitions
        _assert_matches_sequential(report, seq_engine, seq_report)

    def test_inline_transport_never_chaos_kills(self, monkeypatch):
        monkeypatch.setenv("SDE_CHAOS_KILL_WORKER", "1")
        seq_engine, seq_report = _sequential()
        report = DistributedRunner(
            _scenario(), "sds", workers=1, probe_events=2
        ).run()
        assert isinstance(report.transport_name, str)
        _assert_matches_sequential(report, seq_engine, seq_report)


class TestCLI:
    def test_run_distributed_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        assert (
            main(
                [
                    "run",
                    "flood:3",
                    "--sim-seconds",
                    "2",
                    "--distributed",
                    "--workers",
                    "2",
                    "--json",
                    str(out),
                ]
            )
            == 0
        )
        captured = capsys.readouterr().out
        assert "distributed:" in captured
        import json

        report = json.loads(out.read_text())
        assert report["total_states"] > 0
