"""The solver facade used by the virtual machine and test-case generator.

:class:`Solver` decides satisfiability of conjunctions of boolean
expressions over fixed-width bitvector variables.  Pipeline per query:

1. flatten/simplify the conjunction (constant conjuncts short-circuit);
2. split into independent groups (:mod:`repro.solver.independence`);
3. per group: consult the cache, otherwise run propagation + search;
4. merge the per-group models.

The procedure is sound and complete for the expression language of
:mod:`repro.expr`; a per-query node budget guards against adversarial
blow-ups and raises rather than silently mis-answering.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..expr import BoolAnd, BoolConst, BoolExpr, and_, not_
from ..obs.metrics import Histogram
from .cache import SolverCache
from .independence import partition
from .model import Model
from .search import SearchBudgetExceeded, search

__all__ = ["Solver", "SolverError", "UnsatisfiableError", "SearchBudgetExceeded"]


class SolverError(Exception):
    """Base class for solver failures."""


class UnsatisfiableError(SolverError):
    """A model was requested for an unsatisfiable constraint set."""


class Solver:
    """Satisfiability oracle with caching.

    A single instance is shared by all execution states of an SDE run (the
    cache thrives on the cross-state query overlap that forking produces).
    """

    def __init__(
        self,
        use_cache: bool = True,
        max_nodes: int = 200_000,
    ) -> None:
        self._cache = SolverCache() if use_cache else None
        self._max_nodes = max_nodes
        self.queries = 0
        self.sat_results = 0
        self.unsat_results = 0
        #: query-size distribution, part of the run's metrics snapshot
        self.conjunct_histogram = Histogram("solver.query.conjuncts")
        # Observability wiring (attach_observability); None = off.
        self.trace = None
        self._phase_solve = None

    def attach_observability(self, trace, profiler) -> None:
        """Adopt an engine's trace emitter and phase profiler."""
        self.trace = trace
        self._phase_solve = profiler.phase("solve") if profiler else None

    # -- public API ---------------------------------------------------------

    def check(self, constraints: Iterable[BoolExpr]) -> Optional[Model]:
        """Return a satisfying :class:`Model`, or None if unsatisfiable.

        Variables not mentioned by ``constraints`` are unconstrained; models
        omit them (consumers default omitted inputs to zero).
        """
        if self._phase_solve is not None:
            with self._phase_solve:
                return self._check(constraints)
        return self._check(constraints)

    def _check(self, constraints: Iterable[BoolExpr]) -> Optional[Model]:
        self.queries += 1
        conjuncts = self._normalize(constraints)
        size = 0 if conjuncts is None else len(conjuncts)
        self.conjunct_histogram.observe(size)
        if conjuncts is None:
            self.unsat_results += 1
            self._emit_query(size, "unsat")
            return None
        if not conjuncts:
            self.sat_results += 1
            self._emit_query(size, "sat")
            return Model({})

        merged = Model({})
        for group, group_vars in partition(conjuncts):
            result = self._solve_group(group, group_vars)
            if result is None:
                self.unsat_results += 1
                self._emit_query(size, "unsat")
                return None
            merged = merged.merged_with(result)
        self.sat_results += 1
        self._emit_query(size, "sat")
        return merged

    def _emit_query(self, conjuncts: int, result: str) -> None:
        if self.trace is not None:
            self.trace.emit(
                "solver.query", conjuncts=conjuncts, result=result
            )

    def is_satisfiable(self, constraints: Iterable[BoolExpr]) -> bool:
        return self.check(constraints) is not None

    def may_be_true(
        self, constraints: Sequence[BoolExpr], condition: BoolExpr
    ) -> bool:
        """Can ``condition`` hold under ``constraints``?"""
        return self.is_satisfiable(list(constraints) + [condition])

    def must_be_true(
        self, constraints: Sequence[BoolExpr], condition: BoolExpr
    ) -> bool:
        """Does ``constraints`` entail ``condition``?"""
        return not self.is_satisfiable(list(constraints) + [not_(condition)])

    def get_model(self, constraints: Iterable[BoolExpr]) -> Model:
        model = self.check(constraints)
        if model is None:
            raise UnsatisfiableError("no model exists")
        return model

    def iter_models(
        self, constraints: Iterable[BoolExpr], limit: Optional[int] = None
    ):
        """Yield distinct models of ``constraints`` (all of them if finite).

        Classic blocking-clause enumeration: after each model, a disjunct
        requiring some constrained variable to differ is appended.
        Variables the constraints do not mention are left out (they would
        make the model space astronomically large and aren't meaningful).
        Used for exhaustive failure-pattern enumeration in reports.
        """
        from ..expr import bv as _bv
        from ..expr import ne as _ne
        from ..expr import or_ as _or

        worklist = list(constraints)
        variables = sorted(
            {v for c in worklist for v in c.variables()},
            key=lambda v: v.name,
        )
        produced = 0
        while limit is None or produced < limit:
            model = self.check(worklist)
            if model is None:
                return
            yield model.restricted_to(variables)
            produced += 1
            if not variables:
                return  # ground constraints: exactly one (empty) model
            worklist.append(
                _or(
                    *(
                        _ne(v, _bv(model.get(v.name, 0), v.width))
                        for v in variables
                    )
                )
            )

    def cache_stats(self) -> Optional[dict]:
        # NB: `if self._cache` would be False for an *empty* cache (it has
        # __len__); only a disabled cache should report None.
        return self._cache.stats.as_dict() if self._cache is not None else None

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _normalize(
        constraints: Iterable[BoolExpr],
    ) -> Optional[List[BoolExpr]]:
        """Flatten into a conjunct list; None signals definite unsat."""
        combined = and_(*constraints)
        if isinstance(combined, BoolConst):
            return [] if combined.value else None
        if isinstance(combined, BoolAnd):
            return list(combined.operands)
        return [combined]

    def _solve_group(
        self, group: List[BoolExpr], group_vars: frozenset
    ) -> Optional[Model]:
        if self._cache is not None:
            key = SolverCache.key(group)
            hit, cached = self._cache.lookup(key, group_vars)
            if hit:
                if self.trace is not None:
                    # Outcome is cache-state dependent, hence a volatile
                    # field; the *count* of lookups is deterministic.
                    self.trace.emit(
                        "solver.cache", outcome=self._cache.last_outcome
                    )
                return cached
        if self.trace is not None:
            self.trace.emit(
                "solver.cache",
                outcome="miss" if self._cache is not None else "disabled",
            )
        result = search(group, group_vars, max_nodes=self._max_nodes)
        if self._cache is not None:
            self._cache.store(key, result)
        return result
