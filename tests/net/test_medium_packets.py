"""Medium and packet behaviour."""

from repro.expr import var
from repro.net import IdealMedium, Packet, Topology


class TestPacket:
    def test_unique_ids(self):
        a = Packet(0, 1, (1,), 0)
        b = Packet(0, 1, (1,), 0)
        assert a.pid != b.pid
        assert a != b

    def test_equality_by_pid(self):
        a = Packet(0, 1, (1,), 0)
        assert a == a
        assert hash(a) == hash(a)

    def test_len_is_payload_cells(self):
        assert len(Packet(0, 1, (1, 2, 3), 0)) == 3

    def test_symbolic_payload_detection(self):
        concrete = Packet(0, 1, (1, 2), 0)
        symbolic = Packet(0, 1, (1, var("n0.x")), 0)
        assert not concrete.is_symbolic()
        assert symbolic.is_symbolic()

    def test_payload_tuple_immutable(self):
        packet = Packet(0, 1, [1, 2], 0)
        assert isinstance(packet.payload, tuple)

    def test_broadcast_leg_flag(self):
        leg = Packet(0, 1, (1,), 0, broadcast_id=5)
        assert "bcast-leg" in repr(leg)


class TestIdealMedium:
    def test_unicast_to_neighbor(self):
        medium = IdealMedium(Topology.line(3))
        assert medium.unicast_targets(0, 1) == [1]

    def test_unicast_out_of_range_lost(self):
        medium = IdealMedium(Topology.line(3))
        assert medium.unicast_targets(0, 2) == []
        assert medium.undeliverable == 1

    def test_broadcast_reaches_all_neighbors(self):
        medium = IdealMedium(Topology.grid(3))
        assert medium.broadcast_targets(4) == [1, 3, 5, 7]

    def test_latency(self):
        medium = IdealMedium(Topology.line(2), latency_ms=5)
        assert medium.delivery_time(100) == 105

    def test_zero_latency_allowed(self):
        assert IdealMedium(Topology.line(2), latency_ms=0).delivery_time(7) == 7

    def test_negative_latency_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            IdealMedium(Topology.line(2), latency_ms=-1)

    def test_stats(self):
        medium = IdealMedium(Topology.line(3))
        medium.unicast_targets(0, 1)
        medium.broadcast_targets(1)
        stats = medium.stats_dict()
        assert stats["unicasts_sent"] == 1
        assert stats["broadcasts_sent"] == 1
        assert stats["undeliverable"] == 0

    def test_node_symmetric(self):
        assert IdealMedium(Topology.line(3)).node_symmetric()
