"""The node operating system (Contiki stand-in).

Contiki applications are event-driven processes: run-to-completion handlers
woken by timers and packet arrivals.  :class:`NodeOS` reproduces that model
as the syscall host between guest NSL code and the SDE engine:

- guest handlers: ``on_boot()``, ``on_timer(id)``, ``on_recv(src, len)``;
- timers via ``timer_set``/``timer_stop`` (etimer-like, one-shot, re-armed
  by the handler — Contiki idiom);
- communication via ``uc_send``/``bc_send`` (Rime-like primitives; the
  engine performs state mapping on each transmission);
- the packet being handled is exposed through ``recv_len``/``recv_src``/
  ``recv_byte``/``recv_copy`` while ``on_recv`` runs.

The OS is stateless per se — all per-node state lives in the execution
state, so forking a state forks "the OS" with it for free.
"""

from __future__ import annotations

from typing import List, Protocol

from ..vm.errors import ErrorKind
from ..vm.executor import SyscallHost
from ..vm.state import CellValue, Event, ExecutionState
from ..vm.syscalls import SyscallAbort

__all__ = ["NodeOS", "EngineServices", "HANDLER_BOOT", "HANDLER_TIMER", "HANDLER_RECV"]

HANDLER_BOOT = "on_boot"
HANDLER_TIMER = "on_timer"
HANDLER_RECV = "on_recv"


class EngineServices(Protocol):
    """What the OS needs from the SDE engine."""

    node_count: int

    def guest_unicast(
        self, state: ExecutionState, dest: int, payload: List[CellValue]
    ) -> None: ...

    def guest_broadcast(
        self, state: ExecutionState, payload: List[CellValue]
    ) -> None: ...


def _concrete(value: CellValue, what: str) -> int:
    if not isinstance(value, int):
        raise SyscallAbort(f"{what} must be concrete, got a symbolic value")
    return value


class NodeOS(SyscallHost):
    """Per-run OS instance shared by all states (it holds no node state)."""

    def __init__(self, engine: EngineServices) -> None:
        self._engine = engine

    # -- syscall dispatch -----------------------------------------------------

    def syscall(self, state: ExecutionState, name: str, args):
        handler = getattr(self, f"_sys_{name}", None)
        if handler is None:
            raise SyscallAbort(f"unknown syscall {name!r}")
        return handler(state, args)

    # -- identity / time --------------------------------------------------------

    def _sys_node_id(self, state, args):
        return state.node

    def _sys_node_count(self, state, args):
        return self._engine.node_count

    def _sys_time(self, state, args):
        return state.clock

    # -- timers ------------------------------------------------------------------

    def _sys_timer_set(self, state, args):
        timer_id = _concrete(args[0], "timer id")
        delay = _concrete(args[1], "timer delay")
        if delay < 0 or delay > 0x7FFFFFFF:
            raise SyscallAbort(f"timer delay {delay} out of range")
        generation = state.timer_generations.get(timer_id, 0) + 1
        state.timer_generations[timer_id] = generation
        state.push_event(
            state.clock + delay, Event.TIMER, timer_id, generation
        )
        return 0

    def _sys_timer_stop(self, state, args):
        timer_id = _concrete(args[0], "timer id")
        # Bumping the generation invalidates any pending expiry event.
        state.timer_generations[timer_id] = (
            state.timer_generations.get(timer_id, 0) + 1
        )
        return 0

    @staticmethod
    def timer_event_is_live(state: ExecutionState, event: Event) -> bool:
        """Does this TIMER event still correspond to the armed timer?"""
        return state.timer_generations.get(event.data, 0) == event.generation

    # -- transmission ----------------------------------------------------------------

    def _read_buffer(self, state, address_cell, length_cell) -> List[CellValue]:
        address = _concrete(address_cell, "buffer address")
        length = _concrete(length_cell, "buffer length")
        if length < 0 or length > 128:
            raise SyscallAbort(f"payload length {length} out of range")
        if address + length > len(state.memory):
            raise SyscallAbort(
                "payload buffer outside memory", ErrorKind.OUT_OF_BOUNDS
            )
        return list(state.memory[address : address + length])

    def _sys_uc_send(self, state, args):
        dest = _concrete(args[0], "unicast destination")
        if dest < 0 or dest >= self._engine.node_count:
            raise SyscallAbort(f"unicast destination {dest} does not exist")
        payload = self._read_buffer(state, args[1], args[2])
        self._engine.guest_unicast(state, dest, payload)
        return 0

    def _sys_bc_send(self, state, args):
        payload = self._read_buffer(state, args[0], args[1])
        self._engine.guest_broadcast(state, payload)
        return 0

    # -- reception accessors -------------------------------------------------------------

    def _current_packet(self, state):
        packet = state.current_packet
        if packet is None:
            raise SyscallAbort("recv_* used outside an on_recv handler")
        return packet

    def _sys_recv_len(self, state, args):
        return len(self._current_packet(state))

    def _sys_recv_src(self, state, args):
        return self._current_packet(state).src

    def _sys_recv_byte(self, state, args):
        packet = self._current_packet(state)
        index = _concrete(args[0], "payload index")
        if index < 0 or index >= len(packet):
            raise SyscallAbort(
                f"recv_byte({index}) outside payload of {len(packet)}",
                ErrorKind.OUT_OF_BOUNDS,
            )
        return packet.payload[index]

    def _sys_recv_copy(self, state, args):
        packet = self._current_packet(state)
        address = _concrete(args[0], "buffer address")
        offset = _concrete(args[1], "payload offset")
        length = _concrete(args[2], "copy length")
        if offset < 0 or length < 0 or offset + length > len(packet):
            raise SyscallAbort(
                "recv_copy range outside payload", ErrorKind.OUT_OF_BOUNDS
            )
        if address + length > len(state.memory):
            raise SyscallAbort(
                "recv_copy target outside memory", ErrorKind.OUT_OF_BOUNDS
            )
        for position in range(length):
            state.memory[address + position] = packet.payload[offset + position]
        return length
