"""Figure 5 — sender / targets / rivals / bystanders classification.

"An exemplary network with four nodes in a line setup during SDE using the
COW state mapping algorithm.  There are two dstates in the system and the
left execution state in dstate 1 on node 1 is about to send a packet to
node 2.  As node 2 of dstate 1 has two execution states, the sender has two
targets.  The other two states on the sender's node are its rivals.  The
four states on node 3 and 4 are bystanders."

We build exactly that configuration and check the classification, then the
SDS variant with direct vs super rivals (Figure 8's legend).
"""

from repro.core import COWMapper, SDSMapper

from .helpers import MapperHarness


class TestFigure5COW:
    def _build(self):
        """Recreate Figure 5's dstate 1: two states on nodes 1 and 2, one
        on nodes 3 and 4 (paper counts nodes from 1; we use 0..3)."""
        harness = MapperHarness(COWMapper(), node_count=4)
        sender = harness.initial[0]
        rival = harness.branch(sender)[0]         # second state on node 0
        second_target = harness.branch(harness.initial[1])[0]
        return harness, sender, rival, second_target

    def test_roles_match_figure(self):
        harness, sender, rival, second_target = self._build()
        targets, rivals, bystanders = harness.mapper.classify_roles(
            sender, dest_node=1
        )
        assert set(map(id, targets)) == {
            id(harness.initial[1]),
            id(second_target),
        }
        assert rivals == [rival]
        assert {b.node for b in bystanders} == {2, 3}
        assert len(bystanders) == 2

    def test_classification_is_read_only(self):
        harness, sender, _, _ = self._build()
        before = harness.mapper.group_count()
        harness.mapper.classify_roles(sender, dest_node=1)
        assert harness.mapper.group_count() == before

    def test_multiple_rivals(self):
        harness = MapperHarness(COWMapper(), node_count=3)
        sender = harness.initial[0]
        harness.branch(sender, ways=3)
        _, rivals, _ = harness.mapper.classify_roles(sender, 1)
        assert len(rivals) == 2

    def test_no_rivals_for_lone_sender(self):
        harness = MapperHarness(COWMapper(), node_count=3)
        targets, rivals, bystanders = harness.mapper.classify_roles(
            harness.initial[0], 1
        )
        assert rivals == []
        assert len(targets) == 1
        assert len(bystanders) == 1


class TestSDSRoles:
    def test_direct_rivals_only(self):
        harness = MapperHarness(SDSMapper(), node_count=4)
        sender = harness.initial[0]
        harness.branch(sender)
        targets, direct, super_rivals, bystanders = (
            harness.mapper.classify_roles(sender, 1)
        )
        assert len(targets) == 1
        assert len(direct) == 1
        assert super_rivals == []
        assert len(bystanders) == 2

    def test_super_rivals_detected(self):
        """After a conflicted transmission, the displaced target twin lives
        in a dstate without the sender: its sender-node virtuals are
        super-rivals for the next transmission."""
        harness = MapperHarness(SDSMapper(), node_count=4)
        sender = harness.initial[0]
        rival = harness.branch(sender)[0]
        harness.transmit(sender, 1)  # forks target; sender secedes
        # Sender transmits again: its dstate holds the receiving target;
        # the twin (with `rival`) lives elsewhere -> no super rivals from
        # the sender's perspective because the twin is NOT its target now.
        targets, direct, super_rivals, _ = harness.mapper.classify_roles(
            sender, 1
        )
        assert len(targets) == 1
        assert direct == []
        assert super_rivals == []
        # From the *rival's* perspective the roles mirror.
        targets_r, direct_r, super_r, _ = harness.mapper.classify_roles(
            rival, 1
        )
        assert len(targets_r) == 1
        assert direct_r == [] and super_r == []

    def test_figure8_mixed_configuration(self):
        """A sender in superposition with a target shared across dstates:
        both direct and super rivals appear."""
        harness = MapperHarness(SDSMapper(), node_count=4)
        node0 = harness.initial[0]
        harness.branch(node0)
        harness.transmit(node0, 1)
        # Node 3 (bystander, in superposition over both dstates) branches:
        # its sibling is a direct rival in both dstates.
        node3 = harness.initial[3]
        harness.branch(node3)
        targets, direct, super_rivals, bystanders = (
            harness.mapper.classify_roles(node3, 1)
        )
        # Targets: the receiving state (in node0's dstate) and the twin
        # (in the rival's dstate).
        assert len(targets) == 2
        assert len(direct) == 2  # sibling's virtuals in both dstates
        assert {b.node for b in bystanders} == {0, 2}
        harness.check()
