"""Workload/scenario construction tests + end-to-end protocol behaviour."""

import pytest

from repro import build_engine, run_scenario
from repro.lang import compile_source
from repro.net import Packet
from repro.oslib import HEADER_CELLS, KIND_COLLECT
from repro.workloads import (
    PAPER_SIZES,
    branch_storm_program,
    collect_program,
    first_collect_packet,
    flood_scenario,
    grid_scenario,
    line_scenario,
    paper_grid_scenario,
)


class TestScenarioConstruction:
    def test_paper_sizes(self):
        assert PAPER_SIZES == {25: 5, 49: 7, 100: 10}
        for nodes in PAPER_SIZES:
            scenario = paper_grid_scenario(nodes)
            assert scenario.topology.node_count == nodes

    def test_unknown_paper_size_rejected(self):
        with pytest.raises(ValueError):
            paper_grid_scenario(64)

    def test_grid_presets(self):
        scenario = grid_scenario(4, sim_seconds=5)
        presets = scenario.preset_globals
        assert presets["rime_sink"] == 0
        assert presets["rime_source"] == 15
        assert presets["sends_left"] == {15: 4}
        # next hops point from source toward sink
        assert presets["rime_next_hop"][15] in (11, 14)

    def test_grid_program_compiles(self):
        program = compile_source(collect_program())
        for handler in ("on_boot", "on_timer", "on_recv"):
            assert program.has_handler(handler)

    def test_line_requires_two_nodes(self):
        with pytest.raises(ValueError):
            line_scenario(1)

    def test_flood_requires_two_nodes(self):
        with pytest.raises(ValueError):
            flood_scenario(1)

    def test_branch_storm_depth(self):
        source = branch_storm_program(3)
        assert source.count("symbolic(") == 3
        with pytest.raises(ValueError):
            branch_storm_program(0)


class TestFirstPacketFilter:
    def _packet(self, kind, seq):
        payload = [0] * HEADER_CELLS
        payload[0] = kind
        payload[3] = seq
        return Packet(1, 0, tuple(payload), 0)

    def test_matches_first_collect_packet(self):
        assert first_collect_packet(self._packet(KIND_COLLECT, 0))

    def test_rejects_later_sequences(self):
        assert not first_collect_packet(self._packet(KIND_COLLECT, 1))

    def test_rejects_other_kinds(self):
        assert not first_collect_packet(self._packet(7, 0))

    def test_rejects_short_payload(self):
        assert not first_collect_packet(Packet(1, 0, (KIND_COLLECT,), 0))

    def test_symbolic_cells_never_match(self):
        from repro.expr import var

        payload = [KIND_COLLECT, 0, 0, var("s", 32), 0]
        assert not first_collect_packet(Packet(1, 0, tuple(payload), 0))


class TestCollectProtocolEndToEnd:
    """The Rime-like collect stack actually delivers data multi-hop."""

    def test_no_failures_full_delivery(self):
        scenario = line_scenario(4, sim_seconds=4, drop_nodes=())
        engine = build_engine(scenario, "sds")
        engine.run()
        program = engine.program
        sink = 3
        (sink_state,) = engine.states_of_node(sink)
        delivered = sink_state.memory[program.global_address("delivered")]
        # 3 sends over 4 simulated seconds, all delivered.
        assert delivered == 3

    def test_hop_counter_increments(self):
        scenario = line_scenario(4, sim_seconds=2, drop_nodes=())
        engine = build_engine(scenario, "sds")
        engine.run()
        # Inspect the final delivery packet: hops == path length - 1 legs
        # forwarded (source leg has hops 0, each relay +1).
        collect_packets = [
            p
            for p in engine.packets.values()
            if len(p.payload) >= HEADER_CELLS
            and p.payload[0] == KIND_COLLECT
            and p.dest == 3
        ]
        assert collect_packets
        assert max(p.payload[4] for p in collect_packets) == 2

    def test_drop_reduces_delivery(self):
        scenario = line_scenario(3, sim_seconds=3, drop_nodes=[1])
        engine = build_engine(scenario, "sds")
        engine.run()
        program = engine.program
        delivered = {
            s.memory[program.global_address("delivered")]
            for s in engine.states_of_node(2)
        }
        # One world lost the first packet at the relay, one got everything.
        assert delivered == {1, 2}

    def test_forward_counters_on_path(self):
        scenario = grid_scenario(3, sim_seconds=2, drop_budget=0)
        scenario.failure_factory = tuple  # no failures at all
        engine = build_engine(scenario, "sds")
        report = engine.run()
        assert report.total_states == 9  # one state per node, no forks
        program = engine.program
        forwarded_total = sum(
            s.memory[program.global_address("forwarded")]
            for s in engine.states.values()
        )
        # 1 packet, route 8->...->0 has 3 intermediate hops in a 3x3 grid.
        route = engine.topology.route(8, 0)
        assert forwarded_total == len(route) - 2

    def test_flood_everyone_hears(self):
        scenario = flood_scenario(3, rounds=1, drop_nodes=())
        engine = build_engine(scenario, "sds")
        engine.run()
        program = engine.program
        heard = [
            s.memory[program.global_address("heard")]
            for s in engine.states.values()
        ]
        assert heard == [2, 2, 2]  # each node hears the other two


class TestScenarioReuse:
    def test_scenario_compiles_once(self):
        scenario = line_scenario(3)
        first = scenario.compiled()
        second = scenario.compiled()
        assert first is second

    def test_runs_are_independent(self):
        scenario_factory = lambda: line_scenario(3, sim_seconds=2)
        a = run_scenario(scenario_factory(), "sds")
        b = run_scenario(scenario_factory(), "sds")
        assert a.total_states == b.total_states
        assert a.group_count == b.group_count
