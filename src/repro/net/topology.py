"""Network topologies for SDE scenarios.

Wraps a :mod:`networkx` graph with the derived data the engine and workloads
need: neighbour sets, static next-hop routing toward a sink (the paper's
grid scenarios use preconfigured static routes), and the classification of
nodes into on-path / neighbour-of-path / bystander roles that drives the
symbolic-failure configuration (cf. the paper's Figure 9, where six grid
corners are bystanders).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

import networkx as nx

__all__ = ["Topology"]


class Topology:
    """An undirected connectivity graph over nodes ``0..k-1``."""

    def __init__(self, graph: nx.Graph, name: str = "custom") -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("topology must contain at least one node")
        expected = set(range(graph.number_of_nodes()))
        if set(graph.nodes) != expected:
            raise ValueError("nodes must be labelled 0..k-1")
        self.graph = graph
        self.name = name
        self._neighbors: Dict[int, Tuple[int, ...]] = {
            node: tuple(sorted(graph.neighbors(node))) for node in graph.nodes
        }

    # -- constructors ---------------------------------------------------------

    @classmethod
    def line(cls, k: int) -> "Topology":
        """Nodes 0-1-2-...-(k-1) in a chain."""
        return cls(nx.path_graph(k), name=f"line-{k}")

    @classmethod
    def grid(cls, width: int, height: Optional[int] = None) -> "Topology":
        """A width x height lattice, row-major labels (the paper's layout)."""
        height = width if height is None else height
        graph = nx.Graph()
        graph.add_nodes_from(range(width * height))
        for row in range(height):
            for col in range(width):
                node = row * width + col
                if col + 1 < width:
                    graph.add_edge(node, node + 1)
                if row + 1 < height:
                    graph.add_edge(node, node + width)
        topology = cls(graph, name=f"grid-{width}x{height}")
        topology.width = width
        topology.height = height
        return topology

    @classmethod
    def ring(cls, k: int) -> "Topology":
        """Nodes 0-1-...-(k-1)-0 in a cycle (dihedral symmetry group)."""
        if k < 3:
            raise ValueError("a ring needs at least 3 nodes")
        return cls(nx.cycle_graph(k), name=f"ring-{k}")

    @classmethod
    def star(cls, k: int) -> "Topology":
        """Node 0 is the hub; 1..k-1 are leaves."""
        return cls(nx.star_graph(k - 1), name=f"star-{k}")

    @classmethod
    def full_mesh(cls, k: int) -> "Topology":
        """Every node hears every other node (the paper's worst case)."""
        return cls(nx.complete_graph(k), name=f"mesh-{k}")

    @classmethod
    def fat_tree(cls, pods: int = 2, leaf_fanout: int = 2) -> "Topology":
        """A small folded-Clos fat tree: 2 cores, one aggregation switch
        per pod, ``leaf_fanout`` leaves per pod.

        Labels are deterministic: cores 0-1, then aggregations 2..pods+1,
        then leaves row-major by pod.  Cross-pod leaf traffic needs four
        hops (leaf - agg - core - agg - leaf), so this topology only
        delivers end-to-end on a routed medium
        (:class:`repro.net.realistic.RealisticMedium`).
        """
        if pods < 1:
            raise ValueError("a fat tree needs at least one pod")
        if leaf_fanout < 1:
            raise ValueError("each pod needs at least one leaf")
        graph = nx.Graph()
        cores = (0, 1)
        aggregations = tuple(2 + pod for pod in range(pods))
        leaf_base = 2 + pods
        graph.add_nodes_from(range(leaf_base + pods * leaf_fanout))
        for aggregation in aggregations:
            for core in cores:
                graph.add_edge(core, aggregation)
        for pod, aggregation in enumerate(aggregations):
            for leaf in range(leaf_fanout):
                graph.add_edge(
                    aggregation, leaf_base + pod * leaf_fanout + leaf
                )
        return cls(graph, name=f"fat-tree-{pods}x{leaf_fanout}")

    @classmethod
    def random_connected(cls, k: int, degree: int = 3, seed: int = 7) -> "Topology":
        """A random connected graph (regular-ish) for randomized tests."""
        attempt = seed
        while True:
            graph = nx.random_regular_graph(min(degree, k - 1), k, seed=attempt)
            if nx.is_connected(graph):
                return cls(graph, name=f"random-{k}-d{degree}-s{seed}")
            attempt += 1

    # -- queries -----------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    def nodes(self) -> range:
        return range(self.node_count)

    def neighbors(self, node: int) -> Tuple[int, ...]:
        return self._neighbors[node]

    def are_neighbors(self, a: int, b: int) -> bool:
        return b in self._neighbors[a]

    def shortest_path(self, src: int, dest: int) -> List[int]:
        return nx.shortest_path(self.graph, src, dest)

    def diameter(self) -> int:
        return nx.diameter(self.graph)

    # -- routing ------------------------------------------------------------------

    def next_hop_table(self, sink: int) -> Dict[int, int]:
        """Static routing: next hop toward ``sink`` for every node.

        Deterministic (among equal-length paths the lowest-id parent wins),
        which matches the "preconfigured data path" of the paper's grid
        scenario.
        """
        table: Dict[int, int] = {sink: sink}
        frontier = [sink]
        visited = {sink}
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for neighbor in self._neighbors[node]:
                    if neighbor not in visited:
                        visited.add(neighbor)
                        table[neighbor] = node
                        next_frontier.append(neighbor)
            frontier = sorted(next_frontier)
        return table

    def route(self, src: int, sink: int) -> List[int]:
        """The static route src -> sink induced by :meth:`next_hop_table`."""
        table = self.next_hop_table(sink)
        path = [src]
        while path[-1] != sink:
            path.append(table[path[-1]])
        return path

    def path_roles(
        self, src: int, sink: int
    ) -> Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]:
        """Classify nodes for a src->sink flow.

        Returns ``(on_path, path_neighbors, bystanders)``: nodes on the
        static route; nodes that overhear it (neighbours of on-path nodes);
        and everything else — the paper's gray-shaded corner nodes in
        Figure 9.
        """
        on_path = frozenset(self.route(src, sink))
        neighbors = set()
        for node in on_path:
            neighbors.update(self._neighbors[node])
        path_neighbors = frozenset(neighbors - on_path)
        bystanders = frozenset(
            set(self.nodes()) - on_path - path_neighbors
        )
        return on_path, path_neighbors, bystanders

    def __repr__(self) -> str:
        return (
            f"Topology({self.name}: {self.node_count} nodes,"
            f" {self.graph.number_of_edges()} edges)"
        )
