"""Quorum (majority-ack) replication — a consensus-class write path.

One writer replicates a value to every other node and *commits* once a
majority of the cluster (itself included) has acknowledged:

- the writer unicasts ``WRITE`` to every replica;
- each replica stores the value and unicasts ``ACK`` back;
- at ``quorum`` acks the writer unicasts ``COMMIT`` to every replica;
- a replica applying ``COMMIT`` asserts it actually holds the value
  (**code 55**) — the classic commit-without-data hole.

The protocol is unicast-heavy and point-to-point, which is exactly what
the routed :class:`~repro.net.realistic.RealisticMedium` exists for: on a
ring, writer-to-replica traffic crosses multiple hops, so the workload
defaults to ``medium="realistic"``.  (The ideal medium delivers unicasts
one hop only; combining it with a ring is rejected loudly rather than
reporting a vacuous pass.)

Majority quorums tolerate a minority of silent replicas — that is the
point of the design, and also its audit surface.  With a symbolic drop of
the ``WRITE`` at one replica, SDE finds the world where the writer still
reaches quorum through the others and the victim applies a commit for a
value it never received (assert 55).  Without failures the run is
violation free.
"""

from __future__ import annotations

from typing import Optional

from ..core.scenario import Scenario
from ..net.failures import SymbolicPacketDrop
from ..net.packet import Packet
from ..net.topology import Topology

__all__ = ["QUORUM_APP", "quorum_scenario", "write_packet"]

#: payload[0] tags: 1 = WRITE, 2 = ACK, 3 = COMMIT.
KIND_WRITE = 1
KIND_ACK = 2
KIND_COMMIT = 3

QUORUM_APP = """
// ---- majority-ack replication ----
var is_writer = 0;     // preset: 1 on the writer node
var quorum = 0;        // preset: acks needed to commit (writer included)
var write_at = 0;      // preset: when the writer starts (ms)
var value = 0;         // the replicated value (0 = not received)
var acks = 0;          // writer: acks counted so far
var committed = 0;     // writer: 1 once quorum reached
var applied = 0;       // replica: 1 once commit applied

func on_boot() {
    if (is_writer == 1) {
        timer_set(0, write_at);
    }
}

func on_timer(tid) {
    value = 7;
    acks = 1;  // the writer's own copy counts toward the quorum
    var buf[2];
    buf[0] = 1;
    buf[1] = value;
    for (var peer = 0; peer < node_count(); peer += 1) {
        if (peer != node_id()) {
            uc_send(peer, buf, 2);
        }
    }
}

func on_recv(src, len) {
    var kind = recv_byte(0);
    if (kind == 1) {
        // WRITE: store and acknowledge.
        value = recv_byte(1);
        var buf[2];
        buf[0] = 2;
        buf[1] = node_id();
        uc_send(src, buf, 2);
        return;
    }
    if (kind == 2) {
        // ACK (writer only): count toward the quorum, commit once there.
        if (committed == 0) {
            acks += 1;
            if (acks >= quorum) {
                committed = 1;
                var buf[2];
                buf[0] = 3;
                buf[1] = 0;
                for (var peer = 0; peer < node_count(); peer += 1) {
                    if (peer != node_id()) {
                        uc_send(peer, buf, 2);
                    }
                }
            }
        }
        return;
    }
    // COMMIT: applying a value we never received is the safety violation.
    assert(value > 0, 55);
    applied = 1;
}
"""


def write_packet(packet: Packet) -> bool:
    """Failure filter: only WRITE legs may be dropped."""
    return len(packet.payload) == 2 and packet.payload[0] == KIND_WRITE


def quorum_scenario(
    size: int = 4,
    topology: str = "ring",
    write_at_ms: int = 10,
    failures: bool = True,
    medium: str = "realistic",
    medium_params: Optional[dict] = None,
    sim_seconds: int = 1,
) -> Scenario:
    """Replicate one write from node 0 across ``size`` nodes.

    With ``failures=True`` a budget-1 symbolic drop targets the ``WRITE``
    at the replica farthest from the writer; the majority quorum commits
    through the remaining replicas and the victim trips assert 55.
    """
    if size < 3:
        raise ValueError("quorum replication needs at least 3 nodes")
    if topology == "ring":
        topo = Topology.ring(size)
    elif topology == "mesh":
        topo = Topology.full_mesh(size)
    else:
        raise ValueError(f"unsupported quorum topology {topology!r}")
    if medium == "ideal" and topology == "ring":
        raise ValueError(
            "the ideal medium delivers unicasts one hop only; quorum on a"
            " ring needs medium='realistic' (or topology='mesh')"
        )
    victim = size // 2  # farthest from the writer on a ring

    def failure_factory():
        if not failures:
            return ()
        return (
            SymbolicPacketDrop(
                nodes=[victim], budget=1, packet_filter=write_packet
            ),
        )

    return Scenario(
        name=f"quorum-{topo.name}",
        program=QUORUM_APP,
        topology=topo,
        horizon_ms=sim_seconds * 1000,
        failure_factory=failure_factory,
        preset_globals={
            "is_writer": {0: 1},
            "quorum": size // 2 + 1,
            "write_at": write_at_ms,
        },
        latency_ms=1,
        medium=medium,
        medium_params=dict(medium_params or {}),
    )
