"""The stable public API of the reproduction, in one place.

Everything an example, benchmark, or downstream script should need is
importable from here::

    from repro.api import Scenario, EngineConfig, run_scenario

    report = run_scenario(my_scenario, "sds", solver_optimize=False)

The deep module paths (``repro.core.engine``, ``repro.solver.core``, ...)
remain importable but are internal: their layout may shift between
versions, while this facade's ``__all__`` is the compatibility contract.

The facade groups four things:

- **scenario construction** — :class:`Scenario`, :class:`Topology`, the
  workload registry (:func:`make_workload` / :func:`register_workload`),
  and the network-medium registry (:func:`make_medium` /
  :func:`register_medium` / :func:`available_media`, with the built-in
  :class:`IdealMedium` and :class:`RealisticMedium`; see
  ``docs/NETWORK.md``);
- **engine configuration and runs** — :class:`EngineConfig`,
  :func:`build_engine`, :func:`run_scenario`, :class:`SDEEngine`,
  :class:`ParallelRunner`, :class:`DistributedRunner` (with the
  :class:`Transport` backends), :func:`resume_engine`, and the mapper registry
  (:func:`make_mapper` / :func:`register_mapper`);
- **the solver surface** — :class:`Solver`, :class:`ConstraintSet`,
  :class:`Model` (see ``docs/SOLVER.md`` for the pipeline);
- **state-space reduction** — :func:`automorphisms`,
  :func:`canonical_violations`, :func:`analyze_recv_handler`,
  :class:`StateReducer` (see ``docs/REDUCTION.md``; enabled per run via
  ``EngineConfig(symmetry=..., por=...)``);
- **reports and observability** — :class:`RunReport`,
  :func:`save_report` / :func:`load_report`, :class:`TraceEmitter`;
- **the job service** — :class:`SDEService`, :class:`ServiceLimits`,
  :class:`SubmissionSpec`, :class:`RunStore` (``repro serve``; see
  ``docs/SERVICE.md`` for the HTTP contract and lifecycle).
"""

from __future__ import annotations

from .core.config import EngineConfig
from .core.distributed import (
    DistributedReport,
    DistributedRunner,
    InlineTransport,
    MultiprocessTransport,
    Transport,
)
from .core.engine import RunReport, SDEEngine
from .core.parallel import ParallelReport, ParallelRunner
from .core.reduce import (
    StateReducer,
    analyze_recv_handler,
    automorphisms,
    canonical_violations,
)
from .core.reporting import load_report_dict, report_to_dict, save_report
from .core.resilience import resume_engine
from .core.scenario import (
    ALGORITHMS,
    Scenario,
    available_algorithms,
    build_engine,
    make_mapper,
    register_mapper,
    run_scenario,
)
from .net.medium import (
    IdealMedium,
    Medium,
    available_media,
    make_medium,
    register_medium,
)
from .net.realistic import RealisticMedium
from .net.topology import Topology
from .obs.events import TraceEmitter, load_trace
from .service import (
    JobRecord,
    RunStore,
    SDEService,
    ServiceLimits,
    SpecError,
    SubmissionSpec,
    serve_main,
)
from .solver import ConstraintSet, Model, Solver
from .workloads import (
    WORKLOADS,
    available_workloads,
    make_workload,
    register_workload,
)

#: canonical name for reading a saved report back (the underlying helper
#: returns the raw dict — reports are plain data once serialized).
load_report = load_report_dict

__all__ = [
    # scenario construction
    "Scenario",
    "Topology",
    "WORKLOADS",
    "available_workloads",
    "make_workload",
    "register_workload",
    # network media
    "Medium",
    "IdealMedium",
    "RealisticMedium",
    "available_media",
    "make_medium",
    "register_medium",
    # engine configuration and runs
    "EngineConfig",
    "SDEEngine",
    "build_engine",
    "run_scenario",
    "ParallelRunner",
    "ParallelReport",
    "DistributedRunner",
    "DistributedReport",
    "Transport",
    "InlineTransport",
    "MultiprocessTransport",
    "resume_engine",
    "ALGORITHMS",
    "available_algorithms",
    "make_mapper",
    "register_mapper",
    # solver surface
    "Solver",
    "ConstraintSet",
    "Model",
    # state-space reduction
    "StateReducer",
    "analyze_recv_handler",
    "automorphisms",
    "canonical_violations",
    # reports and observability
    "RunReport",
    "report_to_dict",
    "save_report",
    "load_report",
    "load_report_dict",
    "TraceEmitter",
    "load_trace",
    # the job service
    "SDEService",
    "ServiceLimits",
    "SubmissionSpec",
    "SpecError",
    "RunStore",
    "JobRecord",
    "serve_main",
]
