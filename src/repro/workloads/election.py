"""Leader election on rings and meshes (a consensus-class workload).

A deterministic bully-style election in guest NSL:

- every node gossips the highest node id it has heard (one staggered
  broadcast round, lowest id first, so the maximum propagates along the
  stagger order);
- at announce time a node that still believes *itself* to be the maximum
  declares leadership and floods a LEADER announcement (flood-once, like
  the dissemination workload);
- two safety assertions make split brain observable to SDE:

  - **code 40** — a self-declared leader hears a *different* leader's
    announcement (two leaders coexist);
  - **code 41** — a node hears announcements from two different leaders.

Under no failures exactly one node (the maximum id) declares and the run
is violation free.  Under a symbolic drop of the maximum's id-gossip at
its stagger predecessor (the runner-up believer), SDE finds the world
where a second node self-declares — classic election split brain.  The
scenario factory wires that minimal drop by default so the violating and
certified configurations differ only in ``failures=``.
"""

from __future__ import annotations

from functools import partial
from typing import Optional

from ..core.scenario import Scenario
from ..net.failures import SymbolicPacketDrop
from ..net.packet import Packet
from ..net.topology import Topology

__all__ = ["ELECTION_APP", "election_scenario", "id_gossip_from_max"]

#: payload[0] tags: 1 = id gossip, 2 = leader announcement.
KIND_ID = 1
KIND_LEADER = 2

ELECTION_APP = """
// ---- staggered max-id leader election ----
var stagger = 0;       // preset: per-node gossip offset (ms)
var announce_at = 0;   // preset: when believers declare leadership (ms)
var best = 0;          // highest node id heard so far
var leader = 0;        // 1 once this node declared itself leader
var heard_leader = 0;  // announced leader id + 1 (0 = none yet)

func on_boot() {
    best = node_id();
    timer_set(0, stagger * (node_id() + 1));
    timer_set(1, announce_at + node_id());
}

func on_timer(tid) {
    var buf[2];
    if (tid == 0) {
        // One gossip round: tell the neighbourhood the best id we know.
        buf[0] = 1;
        buf[1] = best;
        bc_send(buf, 2);
        return;
    }
    if (best == node_id()) {
        // Nobody outranked us: declare and flood the announcement.
        leader = 1;
        buf[0] = 2;
        buf[1] = node_id();
        bc_send(buf, 2);
    }
}

func on_recv(src, len) {
    var kind = recv_byte(0);
    var value = recv_byte(1);
    if (kind == 1) {
        if (value > best) {
            best = value;
        }
        return;
    }
    // Leader announcement.  Split brain is a safety violation:
    assert(!(leader == 1 && value != node_id()), 40);
    assert(!(heard_leader > 0 && heard_leader != value + 1), 41);
    if (heard_leader == 0) {
        heard_leader = value + 1;
        var buf[2];
        buf[0] = 2;
        buf[1] = value;
        bc_send(buf, 2);  // flood-once relay
    }
}
"""


def id_gossip_from_max(packet: Packet, max_id: int) -> bool:
    """Failure filter: only the maximum id's gossip leg may be dropped."""
    return (
        len(packet.payload) == 2
        and packet.payload[0] == KIND_ID
        and packet.payload[1] == max_id
    )


def election_scenario(
    size: int = 5,
    topology: str = "ring",
    stagger_ms: int = 50,
    failures: bool = True,
    medium: str = "ideal",
    medium_params: Optional[dict] = None,
    sim_seconds: Optional[int] = None,
) -> Scenario:
    """Elect a leader among ``size`` nodes on a ``ring`` or ``mesh``.

    With ``failures=True`` a budget-1 symbolic drop targets the maximum
    id's gossip at its stagger predecessor — the one reception whose loss
    leaves a second believer standing at announce time.  The same drop is
    effective on both supported topologies.
    """
    if size < 3:
        raise ValueError("election needs at least 3 nodes")
    if topology == "ring":
        topo = Topology.ring(size)
    elif topology == "mesh":
        topo = Topology.full_mesh(size)
    else:
        raise ValueError(f"unsupported election topology {topology!r}")
    max_id = size - 1
    announce_at = stagger_ms * (size + 2)
    if sim_seconds is None:
        sim_seconds = max(1, (announce_at + size * 20) // 1000 + 1)

    def failure_factory():
        if not failures:
            return ()
        return (
            SymbolicPacketDrop(
                nodes=[max_id - 1],
                budget=1,
                packet_filter=partial(id_gossip_from_max, max_id=max_id),
            ),
        )

    return Scenario(
        name=f"election-{topo.name}",
        program=ELECTION_APP,
        topology=topo,
        horizon_ms=sim_seconds * 1000,
        failure_factory=failure_factory,
        preset_globals={
            "stagger": stagger_ms,
            "announce_at": announce_at,
        },
        latency_ms=1,
        medium=medium,
        medium_params=dict(medium_params or {}),
    )
