"""Unit tests for smart-constructor folding and rewrites."""

from repro.expr import (
    BVConst,
    Cmp,
    add,
    and_,
    ashr,
    bv,
    bvand,
    bvnot,
    bvor,
    bvxor,
    concat,
    eq,
    extract,
    false,
    implies,
    ite,
    lshr,
    mul,
    ne,
    neg,
    not_,
    or_,
    sdiv,
    sext,
    sge,
    sgt,
    shl,
    sle,
    slt,
    srem,
    sub,
    true,
    truncate,
    udiv,
    uge,
    ugt,
    ule,
    ult,
    urem,
    var,
    zext,
)

X = var("x")
Y = var("y")


class TestArithmeticFolding:
    def test_add_consts(self):
        assert add(bv(2), bv(3)) is bv(5)

    def test_add_wraps(self):
        assert add(bv(0xFFFFFFFF), bv(1)) is bv(0)

    def test_add_zero_identity(self):
        assert add(X, bv(0)) is X
        assert add(bv(0), X) is X

    def test_add_reassociates_constants(self):
        e = add(add(X, bv(3)), bv(4))
        assert e is add(X, bv(7))

    def test_sub_consts(self):
        assert sub(bv(5), bv(3)) is bv(2)
        assert sub(bv(0), bv(1)) is bv(0xFFFFFFFF)

    def test_sub_self_is_zero(self):
        assert sub(X, X) is bv(0)

    def test_sub_becomes_add_of_negated_const(self):
        e = sub(add(X, bv(10)), bv(4))
        assert e is add(X, bv(6))

    def test_mul_consts_and_identities(self):
        assert mul(bv(6), bv(7)) is bv(42)
        assert mul(X, bv(1)) is X
        assert mul(X, bv(0)) is bv(0)
        assert mul(bv(1), X) is X

    def test_udiv(self):
        assert udiv(bv(10), bv(3)) is bv(3)
        assert udiv(X, bv(1)) is X
        # SMT-LIB: division by zero yields all-ones
        assert udiv(bv(10), bv(0)) is bv(0xFFFFFFFF)

    def test_urem(self):
        assert urem(bv(10), bv(3)) is bv(1)
        assert urem(X, bv(1)) is bv(0)
        assert urem(X, bv(0)) is X

    def test_sdiv_truncates_toward_zero(self):
        minus7 = bv(-7)
        assert sdiv(minus7, bv(2)) is bv(-3)
        assert sdiv(bv(7), bv(-2)) is bv(-3)

    def test_srem_sign_follows_dividend(self):
        assert srem(bv(-7), bv(2)) is bv(-1)
        assert srem(bv(7), bv(-2)) is bv(1)

    def test_neg(self):
        assert neg(bv(5)) is bv(-5)
        assert neg(neg(X)) is X


class TestBitwiseFolding:
    def test_and(self):
        assert bvand(bv(0b1100), bv(0b1010)) is bv(0b1000)
        assert bvand(X, bv(0)) is bv(0)
        assert bvand(X, bv(0xFFFFFFFF)) is X
        assert bvand(X, X) is X

    def test_or(self):
        assert bvor(bv(0b1100), bv(0b1010)) is bv(0b1110)
        assert bvor(X, bv(0)) is X
        assert bvor(X, bv(0xFFFFFFFF)) is bv(0xFFFFFFFF)
        assert bvor(X, X) is X

    def test_xor(self):
        assert bvxor(bv(0b1100), bv(0b1010)) is bv(0b0110)
        assert bvxor(X, bv(0)) is X
        assert bvxor(X, X) is bv(0)

    def test_not(self):
        assert bvnot(bv(0)) is bv(0xFFFFFFFF)
        assert bvnot(bvnot(X)) is X

    def test_shifts_const(self):
        assert shl(bv(1), bv(4)) is bv(16)
        assert lshr(bv(16), bv(4)) is bv(1)
        assert shl(X, bv(0)) is X
        assert lshr(X, bv(0)) is X

    def test_shift_overflow_is_zero(self):
        assert shl(X, bv(32)) is bv(0)
        assert lshr(X, bv(99)) is bv(0)

    def test_ashr_sign_fills(self):
        assert ashr(bv(-8), bv(1)) is bv(-4)
        assert ashr(bv(-1), bv(31)) is bv(-1)
        assert ashr(bv(-1), bv(999)) is bv(-1)


class TestStructureFolding:
    def test_ite_const_cond(self):
        assert ite(true(), X, Y) is X
        assert ite(false(), X, Y) is Y

    def test_ite_same_branches(self):
        assert ite(eq(X, bv(0)), Y, Y) is Y

    def test_extract_full_is_identity(self):
        assert extract(X, 0, 32) is X

    def test_extract_const(self):
        assert extract(bv(0xABCD, 32), 8, 8) is bv(0xAB, 8)
        assert extract(bv(0xABCD, 32), 0, 8) is bv(0xCD, 8)

    def test_extract_of_extract(self):
        inner = extract(X, 8, 16)
        assert extract(inner, 4, 8) is extract(X, 12, 8)

    def test_extract_through_zext(self):
        small = var("b", 8)
        widened = zext(small, 32)
        assert extract(widened, 0, 8) is small
        assert extract(widened, 16, 8) is bv(0, 8)

    def test_zext_sext_of_const(self):
        assert zext(bv(0xFF, 8), 32) is bv(0xFF, 32)
        assert sext(bv(0xFF, 8), 32) is bv(0xFFFFFFFF, 32)

    def test_zext_collapses(self):
        small = var("b", 8)
        assert zext(zext(small, 16), 32) is zext(small, 32)

    def test_concat_consts(self):
        assert concat(bv(0xAB, 8), bv(0xCD, 8)) is bv(0xABCD, 16)

    def test_concat_zero_high_is_zext(self):
        small = var("b", 8)
        assert concat(bv(0, 8), small) is zext(small, 16)

    def test_truncate(self):
        assert truncate(bv(0x1FF, 32), 8) is bv(0xFF, 8)
        b = var("b", 8)
        assert truncate(b, 8) is b


class TestComparisonFolding:
    def test_const_comparisons(self):
        assert eq(bv(1), bv(1)) is true()
        assert ne(bv(1), bv(1)) is false()
        assert ult(bv(1), bv(2)) is true()
        assert ule(bv(2), bv(2)) is true()

    def test_signed_comparisons_fold(self):
        assert slt(bv(-1), bv(0)) is true()
        assert ult(bv(-1), bv(0)) is false()  # 0xFFFFFFFF >u 0
        assert sle(bv(-128, 8), bv(127, 8)) is true()

    def test_same_operand(self):
        assert eq(X, X) is true()
        assert ne(X, X) is false()
        assert ult(X, X) is false()
        assert ule(X, X) is true()

    def test_reversed_forms(self):
        assert ugt(X, Y) is ult(Y, X)
        assert uge(X, Y) is ule(Y, X)
        assert sgt(X, Y) is slt(Y, X)
        assert sge(X, Y) is sle(Y, X)

    def test_eq_canonicalizes_const_right(self):
        e = eq(bv(5), X)
        assert isinstance(e, Cmp)
        assert isinstance(e.right, BVConst)


class TestBooleanConnectives:
    def test_and_identities(self):
        p = eq(X, bv(0))
        assert and_() is true()
        assert and_(p) is p
        assert and_(p, true()) is p
        assert and_(p, false()) is false()
        assert and_(p, p) is p

    def test_and_flattens(self):
        p, q, r = eq(X, bv(0)), eq(Y, bv(1)), ult(X, Y)
        assert and_(and_(p, q), r) is and_(p, q, r)

    def test_and_detects_complement(self):
        p = eq(X, bv(0))
        assert and_(p, not_(p)) is false()

    def test_or_identities(self):
        p = eq(X, bv(0))
        assert or_() is false()
        assert or_(p) is p
        assert or_(p, false()) is p
        assert or_(p, true()) is true()
        assert or_(p, not_(p)) is true()

    def test_not_cancels(self):
        p = ult(X, Y)
        assert not_(not_(p)) is p

    def test_not_of_cmp_stays_positive(self):
        # Negations of comparisons canonicalize into swapped comparisons,
        # so path constraints never contain BoolNot over Cmp.
        assert not_(eq(X, bv(3))) is ne(X, bv(3))
        assert not_(ult(X, Y)) is ule(Y, X)
        assert not_(sle(X, Y)) is slt(Y, X)

    def test_implies(self):
        p, q = eq(X, bv(0)), eq(Y, bv(0))
        assert implies(p, q) is or_(not_(p), q)
        assert implies(true(), q) is q
        assert implies(false(), q) is true()

    def test_and_is_order_insensitive(self):
        p, q = eq(X, bv(0)), ult(Y, bv(9))
        assert and_(p, q) is and_(q, p)
