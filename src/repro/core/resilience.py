"""Fault tolerance for SDE runs: supervision, retry, checkpoint/resume.

The paper's headline experiments run for hours (Table I's COB run went
9h39m before aborting at the memory cap).  At that scale three failure
modes dominate, and this module answers each:

1. **Worker loss** — a partition worker OOM-killed or SIGKILL'd dies
   without enqueueing a result.  :class:`WorkerSupervisor` replaces the
   parallel runner's blocking queue drain with a bounded poll that
   detects dead processes (``Process.is_alive()`` + exitcode), enforces a
   per-partition wall-clock budget, and classifies every failure in a
   typed :class:`WorkerFailure` that preserves the original traceback.
2. **Transient failures** — failed partitions are requeued with
   deterministic seeded exponential backoff (:class:`RetryPolicy`; no
   wall-clock reads feed any retry *decision*), and the final attempt for
   crash/exception failures runs in-process, which is immune to process
   loss.  With ``allow_partial`` the run degrades gracefully: exhausted
   partitions are reported (with enough information to rerun them)
   instead of aborting the whole run.
3. **Run loss** — :func:`save_checkpoint` serializes a mid-run engine
   (mapper payload, scheduler entries, id watermarks, counters, metrics
   baselines, trace position) to disk atomically with a versioned header
   and an integrity checksum; :func:`resume_engine` rebuilds the engine
   so the completed run's report is identical to an uninterrupted one on
   every deterministic field.

The checkpoint payload deliberately reuses the picklable snapshot
machinery built for parallel execution (``snapshot_groups`` /
``restore_groups``, scheduler snapshots, id watermarks): a checkpoint is
morally a :class:`~repro.core.parallel.WorkerTask` covering *all*
partitions, plus the counter baselines a worker does not need because the
merge re-adds them.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import queue as queue_module
import random
import time as _time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.fileio import atomic_write_bytes

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "RetryPolicy",
    "WorkerFailure",
    "WorkerSupervisor",
    "WorkerTaskError",
    "chaos_kill_probability",
    "chaos_kill_requested",
    "load_checkpoint",
    "raise_worker_failure",
    "resume_engine",
    "save_checkpoint",
]


# ---------------------------------------------------------------------------
# Failure classification
# ---------------------------------------------------------------------------

#: kinds a worker attempt can fail with
FAILURE_KINDS = ("crash", "exception", "timeout")


class WorkerFailure:
    """One classified partition failure — picklable and JSON-able.

    ``kind`` is ``"crash"`` (process died without reporting), ``"exception"``
    (worker raised; ``exc_type``/``traceback`` carry the original), or
    ``"timeout"`` (per-partition wall-clock budget exceeded).  The record
    keeps the partition's group indices and state count so an exhausted
    partition can be re-run later from the same snapshot.
    """

    __slots__ = (
        "task_index",
        "kind",
        "exc_type",
        "message",
        "traceback",
        "exitcode",
        "attempts",
        "group_indices",
        "state_count",
    )

    def __init__(
        self,
        task_index: int,
        kind: str,
        message: str,
        exc_type: str = "",
        traceback: str = "",
        exitcode: Optional[int] = None,
        attempts: int = 0,
        group_indices: Tuple[int, ...] = (),
        state_count: int = 0,
    ) -> None:
        if kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {kind!r}")
        self.task_index = task_index
        self.kind = kind
        self.exc_type = exc_type
        self.message = message
        self.traceback = traceback
        self.exitcode = exitcode
        self.attempts = attempts
        self.group_indices = tuple(group_indices)
        self.state_count = state_count

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    def as_dict(self) -> dict:
        """JSON form used by report serialization."""
        return {
            "task_index": self.task_index,
            "kind": self.kind,
            "exc_type": self.exc_type,
            "message": self.message,
            "traceback": self.traceback,
            "exitcode": self.exitcode,
            "attempts": self.attempts,
            "group_indices": list(self.group_indices),
            "state_count": self.state_count,
        }

    def describe(self) -> str:
        origin = f" [{self.exc_type}]" if self.exc_type else ""
        return (
            f"partition {self.task_index} {self.kind}{origin} after"
            f" {self.attempts} attempt(s): {self.message}"
        )

    def __repr__(self) -> str:
        return (
            f"WorkerFailure(task={self.task_index}, kind={self.kind},"
            f" attempts={self.attempts})"
        )


class WorkerTaskError(RuntimeError):
    """A partition exhausted its retries (and the run is not --allow-partial).

    ``failure`` is the final :class:`WorkerFailure`; the original worker
    traceback is chained as ``__cause__`` so pytest/tracebacks show it.
    """

    def __init__(self, failure: WorkerFailure) -> None:
        super().__init__(failure.describe())
        self.failure = failure


class _RemoteTraceback(Exception):
    """Carrier for a worker's formatted traceback (chained as __cause__)."""

    def __init__(self, text: str) -> None:
        super().__init__(f"\n--- worker traceback ---\n{text}")


def raise_worker_failure(failure: WorkerFailure) -> None:
    """Raise :class:`WorkerTaskError`, chaining the worker traceback."""
    error = WorkerTaskError(failure)
    if failure.traceback:
        raise error from _RemoteTraceback(failure.traceback)
    raise error


def chaos_kill_probability() -> float:
    """Parse ``SDE_CHAOS_KILL_WORKER`` as a kill probability in [0, 1].

    Accepted forms, in order of precedence:

    - unset / ``"0"`` / ``"false"`` / ``"no"`` — chaos off (``0.0``);
    - a float literal — clamped into ``[0.0, 1.0]`` (``"0.3"`` means 30%
      of attempts die, the sustained partial-failure load the service
      chaos gate runs under);
    - any other truthy string (``"1"``, ``"yes"``, ``"banana"``) — the
      historical all-or-nothing form, meaning ``1.0``.
    """
    value = os.environ.get("SDE_CHAOS_KILL_WORKER", "").strip().lower()
    if value in ("", "0", "false", "no"):
        return 0.0
    try:
        probability = float(value)
    except ValueError:
        return 1.0
    return min(max(probability, 0.0), 1.0)


def chaos_kill_requested(attempt: int = 0, token: str = "") -> bool:
    """Fault-injection hook: should this worker attempt die right now?

    When triggered, the attempt dies via ``os._exit`` before enqueueing a
    result — indistinguishable from an OOM-kill from the supervisor's
    point of view.  Three regimes, per :func:`chaos_kill_probability`:

    - probability ``0.0`` — never kill;
    - probability ``1.0`` (any plain-truthy value) — kill exactly the
      *first* attempt (``attempt == 0``); retries run normally, so a
      chaos run must complete with results identical to an unfaulted
      run.  CI's ``fault-smoke`` job is built on this.
    - fractional probability — a **deterministic seeded coin** per
      ``(token, attempt)``: independent attempts of the same task get
      independent verdicts, and a rerun with the same tokens makes
      identical kill decisions (no wall-clock or global-RNG reads).  A
      task whose every retry loses the coin toss legitimately exhausts
      its retries — graceful degradation is part of what the chaos gate
      exercises.
    """
    probability = chaos_kill_probability()
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return attempt == 0
    rng = random.Random(f"chaos:{token}:{attempt}")
    return rng.random() < probability


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How failed partitions are retried.

    All retry *decisions* are pure functions of (seed, task, attempt) —
    no wall-clock reads — so a rerun makes identical choices.  The only
    clock use is the optional per-partition wall budget, which is
    explicitly a wall-clock cap, and the backoff *sleeps* themselves.
    """

    #: retries after the first attempt; total attempts = max_retries + 1
    max_retries: int = 2
    #: first retry delay; doubles (factor) per further retry
    backoff_base_seconds: float = 0.05
    backoff_factor: float = 2.0
    #: deterministic jitter fraction added on top of the exponential delay
    backoff_jitter: float = 0.25
    #: seeds the jitter PRNG (never wall-clock)
    seed: int = 0
    #: result-queue poll granularity; bounds worker-death detection latency
    poll_interval_seconds: float = 0.05
    #: per-partition wall-clock budget; None disables timeout detection
    task_timeout_seconds: Optional[float] = None
    #: report exhausted partitions instead of raising
    allow_partial: bool = False

    def backoff_seconds(self, task_index: int, attempt: int) -> float:
        """Deterministic exponential backoff with seeded jitter."""
        if attempt <= 0:
            return 0.0
        base = self.backoff_base_seconds * (self.backoff_factor ** (attempt - 1))
        rng = random.Random(f"{self.seed}:{task_index}:{attempt}")
        return base * (1.0 + self.backoff_jitter * rng.random())


# ---------------------------------------------------------------------------
# Worker supervision
# ---------------------------------------------------------------------------


class _Attempt:
    """One in-flight subprocess attempt at a partition."""

    __slots__ = ("task_index", "process", "attempt", "deadline")

    def __init__(self, task_index, process, attempt, deadline) -> None:
        self.task_index = task_index
        self.process = process
        self.attempt = attempt
        self.deadline = deadline


class WorkerSupervisor:
    """Drives partition tasks to completion across worker failures.

    Replaces the old blocking ``for _ in processes: queue.get()`` drain,
    which deadlocked forever if any worker died without reporting and
    threw away all completed partitions on the first worker exception.

    ``payloads`` maps task index -> pickled task bytes; ``entry`` is the
    subprocess target ``(payload, queue, attempt, task_index)``;
    ``run_inline`` executes a payload in the current process (the final
    fallback for crash/exception failures — immune to process loss);
    ``task_meta`` maps task index -> ``(group_indices, state_count)`` for
    failure records.
    """

    def __init__(
        self,
        payloads: Dict[int, bytes],
        context,
        entry: Callable,
        run_inline: Callable[[bytes], object],
        policy: RetryPolicy,
        task_meta: Optional[Dict[int, Tuple[Tuple[int, ...], int]]] = None,
        trace=None,
        sleep: Callable[[float], None] = _time.sleep,
    ) -> None:
        self.payloads = dict(payloads)
        self.context = context
        self.entry = entry
        self.run_inline = run_inline
        self.policy = policy
        self.task_meta = dict(task_meta or {})
        self.trace = trace
        self.sleep = sleep

        self.queue = context.Queue()
        self.results: List[object] = []
        self.failed: List[WorkerFailure] = []
        self.retries = 0
        self._running: Dict[int, _Attempt] = {}
        self._attempts: Dict[int, int] = {index: 0 for index in self.payloads}
        self._resolved: set = set()

    # -- public ------------------------------------------------------------

    def run(self) -> Tuple[List[object], List[WorkerFailure], int]:
        """Execute every task; returns (results, failed, retry count).

        Raises :class:`WorkerTaskError` when a partition exhausts its
        retries and the policy does not allow partial results.  Remaining
        workers are terminated on the way out in that case.
        """
        try:
            for index in sorted(self.payloads):
                self._launch(index, attempt=0)
            while len(self._resolved) < len(self.payloads):
                if not self._drain_one(self.policy.poll_interval_seconds):
                    self._scan_processes()
            return self.results, self.failed, self.retries
        finally:
            self._shutdown()

    # -- internals ----------------------------------------------------------

    def _launch(self, index: int, attempt: int) -> None:
        process = self.context.Process(
            target=self.entry,
            args=(self.payloads[index], self.queue, attempt, index),
        )
        process.start()
        deadline = None
        if self.policy.task_timeout_seconds is not None:
            deadline = _time.monotonic() + self.policy.task_timeout_seconds
        self._running[index] = _Attempt(index, process, attempt, deadline)

    def _drain_one(self, timeout: float) -> bool:
        """Handle one queued outcome; False when the queue stayed empty."""
        try:
            blob = self.queue.get(timeout=timeout)
        except queue_module.Empty:
            return False
        outcome = pickle.loads(blob)
        if isinstance(outcome, WorkerFailure):
            if outcome.task_index not in self._resolved:
                self._handle_failure(outcome.task_index, outcome)
        else:
            index = outcome.index
            if index not in self._resolved:
                self._resolved.add(index)
                self.results.append(outcome)
                attempt = self._running.pop(index, None)
                if attempt is not None:
                    attempt.process.join()
        return True

    def _scan_processes(self) -> None:
        """Detect dead and over-budget workers (bounded, never blocking)."""
        now = _time.monotonic()
        for index, attempt in list(self._running.items()):
            if index in self._resolved:
                continue
            process = attempt.process
            if not process.is_alive():
                # The feeder thread flushes before exit, so a result from
                # this worker would already be queued; drain once more
                # before declaring the worker lost.
                if self._drain_one(self.policy.poll_interval_seconds):
                    return  # re-scan next loop iteration with fresh state
                process.join()
                self._handle_failure(
                    index,
                    self._make_failure(
                        index,
                        "crash",
                        f"worker process died without reporting a result"
                        f" (exitcode {process.exitcode})",
                        exitcode=process.exitcode,
                    ),
                )
            elif attempt.deadline is not None and now > attempt.deadline:
                process.terminate()
                process.join()
                self._handle_failure(
                    index,
                    self._make_failure(
                        index,
                        "timeout",
                        f"partition exceeded its wall-clock budget of"
                        f" {self.policy.task_timeout_seconds}s",
                        exitcode=process.exitcode,
                    ),
                )

    def _make_failure(self, index, kind, message, **extra) -> WorkerFailure:
        groups, states = self.task_meta.get(index, ((), 0))
        return WorkerFailure(
            task_index=index,
            kind=kind,
            message=message,
            group_indices=groups,
            state_count=states,
            **extra,
        )

    def _handle_failure(self, index: int, failure: WorkerFailure) -> None:
        self._running.pop(index, None)
        self._attempts[index] += 1
        failure.attempts = self._attempts[index]
        if not failure.group_indices and index in self.task_meta:
            groups, states = self.task_meta[index]
            failure.group_indices = groups
            failure.state_count = states
        if self.trace is not None:
            self.trace.emit(
                "worker.crash",
                task=index,
                kind=failure.kind,
                exitcode=failure.exitcode,
                attempt=failure.attempts,
            )
        if failure.attempts > self.policy.max_retries:
            self._exhaust(index, failure)
            return
        self.retries += 1
        delay = self.policy.backoff_seconds(index, failure.attempts)
        if delay > 0:
            self.sleep(delay)
        if self.trace is not None:
            self.trace.emit("worker.retry", task=index, attempt=failure.attempts)
        final = failure.attempts == self.policy.max_retries
        if final and failure.kind != "timeout":
            # Last chance: run in the supervisor's own process.  This is
            # deterministic (same pickle round-trip as workers=1) and
            # cannot be lost to a worker death.  Timeouts keep retrying in
            # a subprocess — an in-process attempt could not be killed.
            self._run_final_inline(index)
        else:
            self._launch(index, attempt=failure.attempts)

    def _run_final_inline(self, index: int) -> None:
        try:
            result = self.run_inline(self.payloads[index])
        except BaseException as exc:  # noqa: BLE001 - classified below
            import traceback as traceback_module

            self._attempts[index] += 1
            self._exhaust(
                index,
                self._make_failure(
                    index,
                    "exception",
                    str(exc),
                    exc_type=type(exc).__name__,
                    traceback=traceback_module.format_exc(),
                    attempts=self._attempts[index],
                ),
            )
            return
        self._resolved.add(index)
        self.results.append(result)

    def _exhaust(self, index: int, failure: WorkerFailure) -> None:
        self._resolved.add(index)
        if self.policy.allow_partial:
            self.failed.append(failure)
            return
        raise_worker_failure(failure)

    def _shutdown(self) -> None:
        for attempt in self._running.values():
            if attempt.process.is_alive():
                attempt.process.terminate()
            attempt.process.join()
        self._running.clear()


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------

CHECKPOINT_MAGIC = b"SDECKPT"
# Version 2: construction parameters travel as one EngineConfig under
# "config", and solver counters as the solver's stats_dict under
# "solver_stats" (version-1 checkpoints carried both exploded).
# Version 3: EngineConfig gained medium/medium_params and ExecutionState
# gained the link_busy slot — version-2 pickles would deserialize into
# objects silently missing both, so they are rejected at the header.
CHECKPOINT_VERSION = 3


class CheckpointError(RuntimeError):
    """The checkpoint file is missing, corrupt, or incompatible."""


def _engine_payload(engine) -> dict:
    """Everything needed to rebuild ``engine`` mid-run, picklable."""
    mapper = engine.mapper
    return {
        # -- construction parameters --------------------------------------
        "algorithm": mapper.name,
        "program": engine.program,
        "topology": engine.topology,
        # Checkpoint cadence is NOT inherited: the resumed run only
        # checkpoints if the caller re-enables it via overrides (the CLI's
        # --resume does), so a resume into a different path can't silently
        # keep overwriting the original file.
        "config": engine.config.replace(
            checkpoint_path=None,
            checkpoint_every_events=None,
            checkpoint_every_seconds=None,
        ),
        # -- execution frontier ------------------------------------------
        "mapper_payload": mapper.snapshot_groups(range(mapper.group_count())),
        "scheduler_entries": engine.scheduler_snapshot(),
        "clock_now": engine.clock.now,
        "state_watermark": _state_watermark(),
        "packet_watermark": _packet_watermark(),
        "broadcast_watermark": next(engine._broadcast_ids),
        # -- counter baselines (so the resumed report matches) -----------
        "events_executed": engine.events_executed,
        "instructions": engine.executor.instructions_executed,
        "solver_queries": engine.solver.queries,
        "solver_stats": engine.solver.stats_dict(),
        "conjunct_histogram": engine.solver.conjunct_histogram.data(),
        "mapping_stats": mapper.stats.as_dict(),
        "net_stats": engine.medium.stats_dict(),
        "cache_stats": engine.solver.cache_stats(),
        "phases": engine.profiler.snapshot(),
        "samples": list(engine.stats.samples),
        "checkpoints_written": engine.checkpoints_written,
        "trace_events": list(engine.trace.events)
        if engine.trace is not None
        else [],
    }


def _restore_histogram(histogram, data: dict) -> None:
    """Load a :meth:`Histogram.data` dict back into a live histogram."""
    if tuple(data["bounds"]) != histogram.bounds:
        raise CheckpointError("checkpoint histogram bounds do not match this build")
    histogram.buckets = list(data["buckets"])
    histogram.count = data["count"]
    histogram.total = data["total"]
    histogram.min = data["min"]
    histogram.max = data["max"]


def _state_watermark() -> int:
    from ..vm.state import state_id_watermark

    return state_id_watermark()


def _packet_watermark() -> int:
    from ..net.packet import packet_id_watermark

    return packet_id_watermark()


def save_checkpoint(engine, path) -> dict:
    """Serialize ``engine`` to ``path`` atomically; returns the header.

    File layout: ``SDECKPT\\n<json header>\\n<pickle body>``.  The header
    carries the format version, run coordinates, and a SHA-256 of the body
    so truncated or bit-rotted checkpoints are rejected at load rather
    than producing a silently wrong resume.
    """
    body = pickle.dumps(_engine_payload(engine), protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "version": CHECKPOINT_VERSION,
        "algorithm": engine.mapper.name,
        "events_executed": engine.events_executed,
        "clock_now": engine.clock.now,
        "total_states": len(engine.states),
        "sha256": hashlib.sha256(body).hexdigest(),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("ascii")
    atomic_write_bytes(path, CHECKPOINT_MAGIC + b"\n" + header_bytes + b"\n" + body)
    return header


def load_checkpoint(path) -> Tuple[dict, dict]:
    """Read and verify a checkpoint; returns ``(header, payload)``."""
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    magic, _, rest = raw.partition(b"\n")
    if magic != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path} is not an SDE checkpoint")
    header_bytes, _, body = rest.partition(b"\n")
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise CheckpointError(f"{path}: corrupt checkpoint header") from exc
    if header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {header.get('version')!r} is not"
            f" supported (this build reads version {CHECKPOINT_VERSION});"
            " re-run without --resume"
        )
    digest = hashlib.sha256(body).hexdigest()
    if digest != header.get("sha256"):
        raise CheckpointError(
            f"{path}: integrity check failed (checkpoint truncated or"
            " corrupted)"
        )
    return header, pickle.loads(body)


def resume_engine(path, trace=None, **engine_overrides):
    """Rebuild a mid-run engine from a checkpoint file.

    The returned engine continues exactly where the checkpoint was taken:
    same states, same scheduler order, same id watermarks, and counter
    baselines restored in place so ``engine.run()`` yields a report whose
    deterministic fields equal an uninterrupted run's.  ``engine_overrides``
    may re-enable checkpointing on the resumed run (``checkpoint_path``,
    ``checkpoint_every_events``, ...).
    """
    from ..net.packet import ensure_packet_ids_above
    from ..vm.state import ensure_state_ids_above
    from .config import split_config_overrides
    from .engine import SDEEngine
    from .scenario import make_mapper

    _, payload = load_checkpoint(path)
    mapper = make_mapper(payload["algorithm"])
    config = payload["config"]
    # Overrides win: a run aborted at a cap can be resumed with the cap
    # raised (`resume_engine(path, max_states=None)`), or with
    # checkpointing re-enabled on the resumed run.
    config_fields, rest = split_config_overrides(engine_overrides)
    if rest:
        raise TypeError(f"unknown engine override(s) {sorted(rest)}")
    if config_fields:
        config = config.replace(**config_fields)
    engine = SDEEngine(
        payload["program"], payload["topology"], mapper, config, trace=trace
    )
    engine._started = True  # the boot states live in the payload
    mapper.restore_groups(payload["mapper_payload"])
    for group in mapper.groups():
        for states in group.values():
            for state in states:
                engine.states[state.sid] = state
    engine.clock.advance_to(payload["clock_now"])
    for event_time, sid in payload["scheduler_entries"]:
        engine.scheduler.push(event_time, sid)
    ensure_state_ids_above(payload["state_watermark"])
    ensure_packet_ids_above(payload["packet_watermark"])
    engine._broadcast_ids = itertools.count(payload["broadcast_watermark"] + 1)

    # -- counter baselines: the resumed report must equal an uninterrupted
    # run's on every deterministic field.
    engine.events_executed = payload["events_executed"]
    engine.executor.instructions_executed = payload["instructions"]
    solver = engine.solver
    solver.queries = payload["solver_queries"]
    solver.restore_stats(payload["solver_stats"])
    _restore_histogram(solver.conjunct_histogram, payload["conjunct_histogram"])
    for slot, value in payload["mapping_stats"].items():
        setattr(mapper.stats, slot, value)
    engine.medium.restore_stats(payload["net_stats"])
    if payload["cache_stats"] and solver._cache is not None:
        from ..solver import CacheStats

        solver._cache.stats = CacheStats.restore(payload["cache_stats"])
    for name, data in payload["phases"].items():
        phase = engine.profiler.phase(name)
        phase.count = data["count"]
        phase.seconds = data["seconds"]
    engine.stats.samples = list(payload["samples"])
    engine.stats._last_sampled_at = payload["events_executed"]
    engine.checkpoints_written = payload["checkpoints_written"]
    engine.resumed = True
    if trace is not None:
        trace.extend(payload["trace_events"])
        trace.emit("checkpoint.resume", events=engine.events_executed)
    return engine
