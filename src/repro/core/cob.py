"""Copy On Branch (paper Section III-A).

COB maintains explicit *dscenarios*: complete network snapshots with exactly
one state per node, mimicking the symbolic execution of a monolithic network
simulation.  Every node-local branch forks the **entire** dscenario — all
other nodes' states are duplicated even though nothing about them changed
(Figure 3).  Transmission mapping is then trivial: the receiver is the
dscenario's unique state of the destination node.

COB is the correctness baseline: it is "intuitively correct as it mimics the
symbolic execution of a monolithic simulation", and any other mapping
algorithm must cover exactly the dscenarios COB generates.  The equivalence
tests in ``tests/core/test_equivalence.py`` hold COW and SDS to that
standard.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Sequence

from ..vm.state import ExecutionState
from .mapping import MappingError, StateMapper

__all__ = ["COBMapper", "DScenario"]


def _ensure_counter_above(cls, minimum: int) -> None:
    """Advance a class-level ``_ids`` counter past ``minimum`` (restore)."""
    if next(cls._ids) <= minimum:
        cls._ids = itertools.count(minimum + 1)


class DScenario:
    """One complete distributed scenario: exactly one state per node."""

    __slots__ = ("id", "members")

    _ids = itertools.count(1)

    def __init__(self, members: Dict[int, ExecutionState]) -> None:
        self.id = next(DScenario._ids)
        self.members = members  # node id -> state

    def nodes(self):
        return self.members.keys()

    def states(self) -> List[ExecutionState]:
        return [self.members[node] for node in sorted(self.members)]

    def __repr__(self) -> str:
        return f"DScenario#{self.id}({len(self.members)} nodes)"


class COBMapper(StateMapper):
    """Brute-force Copy On Branch."""

    name = "cob"

    def __init__(self) -> None:
        super().__init__()
        self._dscenarios: List[DScenario] = []
        self._owner: Dict[int, DScenario] = {}  # sid -> its dscenario

    # -- interface ---------------------------------------------------------------

    def register_initial(self, states: Sequence[ExecutionState]) -> None:
        if self._dscenarios:
            raise MappingError("initial states registered twice")
        members = {state.node: state for state in states}
        if len(members) != len(states):
            raise MappingError("initial states must be one per node")
        scenario = DScenario(members)
        self._dscenarios.append(scenario)
        for state in states:
            self._owner[state.sid] = scenario

    def on_local_fork(
        self, parent: ExecutionState, children: List[ExecutionState]
    ) -> None:
        """Fork the whole dscenario once per new child (Figure 3)."""
        scenario = self._owner[parent.sid]
        for child in children:
            members: Dict[int, ExecutionState] = {}
            for node, member in scenario.members.items():
                if node == parent.node:
                    members[node] = child
                else:
                    copy = member.fork()
                    members[node] = copy
                    self.spawn(copy)
                    self.stats.local_forks += 1
                    self.stats.bystander_duplicates += 1
                    if self.trace is not None:
                        self.trace.emit(
                            "mapper.copy",
                            node=node,
                            t=parent.clock,
                            kind="real",
                            role="bystander",
                            sid=copy.sid,
                        )
            twin_scenario = DScenario(members)
            self._dscenarios.append(twin_scenario)
            for state in members.values():
                self._owner[state.sid] = twin_scenario

    def map_transmission(
        self, sender: ExecutionState, dest_node: int
    ) -> List[ExecutionState]:
        """Constant-time lookup: the dscenario's state of the destination."""
        self.stats.transmissions += 1
        scenario = self._owner[sender.sid]
        receiver = scenario.members.get(dest_node)
        if receiver is None:
            raise MappingError(f"dscenario has no state for node {dest_node}")
        return [receiver]

    # -- snapshot / restore ------------------------------------------------------------

    def snapshot_groups(self, group_indices):
        """The selected dscenarios themselves — they pickle as-is."""
        return [self._dscenarios[index] for index in group_indices]

    def restore_groups(self, payload) -> None:
        if self._dscenarios:
            raise MappingError("restore_groups on a non-empty mapper")
        max_id = 0
        max_sid = 0
        for scenario in payload:
            self._dscenarios.append(scenario)
            max_id = max(max_id, scenario.id)
            for state in scenario.members.values():
                self._owner[state.sid] = scenario
                max_sid = max(max_sid, state.sid)
        _ensure_counter_above(DScenario, max_id)
        from ..vm.state import ensure_state_ids_above

        ensure_state_ids_above(max_sid)

    # -- introspection -----------------------------------------------------------------

    def group_count(self) -> int:
        return len(self._dscenarios)

    def groups(self) -> Iterable[Dict[int, List[ExecutionState]]]:
        for scenario in self._dscenarios:
            yield {node: [state] for node, state in scenario.members.items()}

    def dscenarios(self) -> List[DScenario]:
        return list(self._dscenarios)

    def check_invariants(self) -> None:
        from .history import find_conflicts

        seen: Dict[int, int] = {}
        for scenario in self._dscenarios:
            for node, state in scenario.members.items():
                if state.node != node:
                    raise MappingError(
                        f"state {state.sid} filed under wrong node {node}"
                    )
                if state.sid in seen:
                    raise MappingError(f"state {state.sid} appears in two dscenarios")
                seen[state.sid] = scenario.id
                if self._owner.get(state.sid) is not scenario:
                    raise MappingError(f"owner map inconsistent for state {state.sid}")
            conflicts = find_conflicts(scenario.members.values())
            if conflicts:
                a, b = conflicts[0]
                raise MappingError(
                    f"dscenario {scenario.id} conflicted: {a.sid} vs {b.sid}"
                )
