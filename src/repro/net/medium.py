"""The network medium contract, the ideal medium, and the medium registry.

The paper's network model is ideal ("no node and network failures" at this
layer; failures are injected *above* by :mod:`repro.net.failures`).  That
medium — reachability plus a constant latency — stays the default and the
paper-fidelity baseline.  This module defines the *contract* every medium
implements, so alternative physics (``repro.net.realistic``: lossy,
jittered, bandwidth-limited routed links) plug into the engine through a
registry, mirroring the workload and mapper registries:

- :class:`Medium` — the abstract base: reachability primitives
  (``unicast_targets`` / ``broadcast_targets``), ``delivery_time``, the
  engine-facing ``plan_unicast`` / ``plan_broadcast`` (which a medium may
  override wholesale), ``stats_dict`` / ``restore_stats`` for reports and
  checkpoint resume, the ``trace`` hook, and the ``node_symmetric``
  predicate the symmetry/POR reducer consults before trusting
  automorphism-canonical fingerprints.
- :class:`IdealMedium` — the paper's medium, registered as ``"ideal"``:
  a unicast reaches its destination iff destination is a neighbour; a
  broadcast is a series of unicasts to every neighbour (paper,
  footnote 1); delivery latency is a deterministic constant.
- :func:`register_medium` / :func:`make_medium` / :func:`available_media`
  — the registry; :class:`~repro.core.engine.SDEEngine` constructs its
  medium through :func:`make_medium` from
  ``EngineConfig(medium=..., medium_params=...)``.

Every medium must be **deterministic**: two engines built from the same
config must plan identical deliveries regardless of process, worker
count, or exploration order — reports are pinned bit-identical across
sequential, ``--workers``, ``--distributed`` and checkpoint-resume runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .topology import Topology

__all__ = [
    "Medium",
    "IdealMedium",
    "register_medium",
    "make_medium",
    "available_media",
]


class Medium:
    """Abstract medium: who can hear whom, when, and at what cost.

    Subclasses implement the four primitives (``unicast_targets``,
    ``broadcast_targets``, ``delivery_time``, ``stats_dict``) and may
    override the ``plan_*`` pair when delivery involves more than
    "reachable targets at a constant delay" (routing, loss, queueing).
    Counter accounting lives wherever the subclass keeps its logic — the
    only requirement is that ``stats_dict`` names every counter and
    ``restore_stats`` round-trips them (checkpoint resume relies on it).
    """

    #: registry name; subclasses set it (used in reprs and error messages).
    name = "abstract"

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        #: structured event trace (set by the engine); None = off
        self.trace = None

    # -- primitives every medium implements --------------------------------

    def unicast_targets(self, src: int, dest: int) -> List[int]:
        """Node ids a unicast from ``src`` to ``dest`` reaches (0 or 1)."""
        raise NotImplementedError

    def broadcast_targets(self, src: int) -> List[int]:
        """Node ids that overhear a broadcast from ``src`` (sorted)."""
        raise NotImplementedError

    def delivery_time(self, sent_at: int, **context) -> int:
        """When a packet sent at ``sent_at`` arrives.

        ``context`` may carry ``src``/``dest``/``seq``/``size`` for media
        whose delay depends on the link or the payload; the ideal medium
        ignores it.
        """
        raise NotImplementedError

    def stats_dict(self) -> Dict[str, int]:
        """Counter names as they appear in the metrics snapshot."""
        raise NotImplementedError

    # -- engine-facing planning ---------------------------------------------

    def plan_unicast(
        self, sender, dest: int, size: int
    ) -> List[Tuple[int, int]]:
        """Deliveries for one unicast: ``(target node, deliver_at)`` pairs.

        ``sender`` is the transmitting :class:`~repro.vm.state
        .ExecutionState`; the default plan composes the primitives.  Media
        with per-link randomness key every draw on the *logical send*
        ``(src, dest, sender.clock, len(sender.history))`` — all four are
        path-deterministic and fork with the state, so the same send gets
        the same verdict in any harness.
        """
        deliver_at = self.delivery_time(
            sender.clock,
            src=sender.node,
            dest=dest,
            seq=len(sender.history),
            size=size,
        )
        return [
            (node, deliver_at)
            for node in self.unicast_targets(sender.node, dest)
        ]

    def plan_broadcast(self, sender, size: int) -> List[Tuple[int, int]]:
        """Deliveries for one broadcast: ``(target node, deliver_at)``."""
        seq = len(sender.history)
        return [
            (
                node,
                self.delivery_time(
                    sender.clock,
                    src=sender.node,
                    dest=node,
                    seq=seq,
                    size=size,
                ),
            )
            for node in self.broadcast_targets(sender.node)
        ]

    # -- reports / checkpoint resume ----------------------------------------

    def restore_stats(self, stats: Dict[str, int]) -> None:
        """Load a previously reported ``stats_dict`` back (resume path)."""
        for counter, value in stats.items():
            setattr(self, counter, value)

    # -- reduction contract --------------------------------------------------

    def node_symmetric(self) -> bool:
        """Is delivery behaviour invariant under node automorphisms?

        The symmetry/POR reducer (:mod:`repro.core.reduce`) canonicalizes
        states under the topology's automorphism group and treats states
        with equal fingerprints as interchangeable.  A medium whose
        per-link draws or queues distinguish relabelled links (nonzero
        loss/jitter, finite bandwidth) breaks that equivalence; returning
        ``False`` here makes the reducer self-disable instead of pruning
        unsoundly.
        """
        return True

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.topology.name})"


class IdealMedium(Medium):
    """Ideal-condition medium over a topology (the paper's model)."""

    name = "ideal"

    def __init__(self, topology: Topology, latency_ms: int = 1) -> None:
        if latency_ms < 0:
            raise ValueError("latency cannot be negative")
        super().__init__(topology)
        self.latency_ms = latency_ms
        self.unicasts_sent = 0
        self.broadcasts_sent = 0
        self.undeliverable = 0

    def unicast_targets(self, src: int, dest: int) -> List[int]:
        """Destination node ids a unicast actually reaches (0 or 1)."""
        self.unicasts_sent += 1
        delivered = self.topology.are_neighbors(src, dest)
        if not delivered:
            self.undeliverable += 1
        if self.trace is not None:
            self.trace.emit(
                "net.unicast", src=src, dest=dest, delivered=delivered
            )
        return [dest] if delivered else []

    def broadcast_targets(self, src: int) -> List[int]:
        """Every neighbour overhears a broadcast (sorted: determinism)."""
        self.broadcasts_sent += 1
        targets = list(self.topology.neighbors(src))
        if self.trace is not None:
            self.trace.emit("net.broadcast", src=src, targets=len(targets))
        return targets

    def delivery_time(self, sent_at: int, **context) -> int:
        return sent_at + self.latency_ms

    def stats_dict(self) -> Dict[str, int]:
        return {
            "unicasts_sent": self.unicasts_sent,
            "broadcasts_sent": self.broadcasts_sent,
            "undeliverable": self.undeliverable,
        }

    def __repr__(self) -> str:
        return (
            f"IdealMedium({self.topology.name}, latency={self.latency_ms}ms)"
        )


# ---------------------------------------------------------------------------
# The medium registry (mirrors the workload and mapper registries)
# ---------------------------------------------------------------------------

_MEDIA: Dict[str, Callable[..., Medium]] = {}


def register_medium(name: str, factory: Callable[..., Medium]) -> None:
    """Register (or replace) a medium factory under ``name``.

    The factory is called as ``factory(topology, **medium_params)`` and
    must return a fresh :class:`Medium` per call (media hold per-run
    counters).  Registering an existing name replaces it, so tests can
    shadow a built-in and restore it afterwards.
    """
    _MEDIA[name] = factory


def _load_builtins() -> None:
    # The realistic medium lives in its own module and registers itself on
    # import; pulling it in here keeps `make_medium("realistic", ...)`
    # working even when only repro.net.medium was imported.
    from . import realistic  # noqa: F401


def available_media() -> tuple:
    """Every registered medium name, sorted."""
    _load_builtins()
    return tuple(sorted(_MEDIA))


def make_medium(name: str, topology: Topology, **params) -> Medium:
    """Instantiate a medium by registry name ('ideal'/'realistic'/...)."""
    _load_builtins()
    try:
        factory = _MEDIA[name]
    except KeyError:
        raise ValueError(
            f"unknown medium {name!r}; choose from {available_media()}"
        ) from None
    return factory(topology, **params)


register_medium("ideal", IdealMedium)
