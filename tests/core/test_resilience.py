"""Fault tolerance: supervision, retry, checkpoint/resume, cap aborts.

The contracts pinned here (see docs/RESILIENCE.md):

1. A worker SIGKILL'd mid-partition must *never* hang the run — the old
   blocking ``queue.get()`` drain did exactly that.  The supervisor
   detects the death, retries the partition, and a chaos-killed parallel
   run finishes with results identical to an unfaulted sequential run.
2. Partitions that exhaust their retries surface as typed
   :class:`WorkerFailure` records — raised with the original worker
   traceback chained, or reported in ``failed_partitions`` under
   ``allow_partial``.
3. A resumed checkpoint yields a report equal to an uninterrupted run's
   on every deterministic field, and corrupt/truncated/foreign
   checkpoint files are rejected loudly at load.
4. Cap aborts (state / memory / wall-clock) produce a well-formed
   partial report, and a checkpoint taken before the abort resumes
   cleanly past it once the cap is raised.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import time

import pytest

from repro.core.parallel import ParallelRunner
from repro.core.resilience import (
    CHECKPOINT_MAGIC,
    CheckpointError,
    RetryPolicy,
    WorkerFailure,
    WorkerSupervisor,
    WorkerTaskError,
    chaos_kill_probability,
    chaos_kill_requested,
    load_checkpoint,
    resume_engine,
    save_checkpoint,
)
from repro.core.scenario import build_engine
from repro.obs import TraceEmitter, diff_traces
from repro.workloads import flood_scenario, grid_scenario

FORK = multiprocessing.get_context("fork")

# Fast-failing policy for supervisor unit tests: real backoff sleeps
# would only slow the suite down.
FAST = RetryPolicy(
    max_retries=2,
    backoff_base_seconds=0.001,
    poll_interval_seconds=0.02,
)


def _error_signature(report):
    return sorted(
        (s.node, s.error.kind, s.error.message, s.error.code, s.clock)
        for s in report.error_states
    )


def _assert_reports_match(left, right):
    """Equality on every deterministic report field (sids are volatile)."""
    assert left.total_states == right.total_states
    assert left.group_count == right.group_count
    assert left.events_executed == right.events_executed
    assert left.instructions == right.instructions
    assert left.virtual_ms == right.virtual_ms
    assert left.mapping_stats == right.mapping_stats
    assert left.accounted_bytes == right.accounted_bytes
    assert left.solver_queries == right.solver_queries
    assert _error_signature(left) == _error_signature(right)


# ---------------------------------------------------------------------------
# Synthetic worker entries (module-level: importable in child processes)
# ---------------------------------------------------------------------------


class FakeResult:
    """Minimal stand-in for WorkerResult — just needs ``.index``."""

    def __init__(self, index: int) -> None:
        self.index = index


def _entry_ok(payload, queue, attempt=0, task_index=-1):
    queue.put(pickle.dumps(FakeResult(task_index)))


def _entry_crash_first(payload, queue, attempt=0, task_index=-1):
    if attempt == 0:
        os._exit(17)  # die unreported, like an OOM kill
    queue.put(pickle.dumps(FakeResult(task_index)))


def _entry_always_crash(payload, queue, attempt=0, task_index=-1):
    os._exit(23)


def _entry_hang(payload, queue, attempt=0, task_index=-1):
    time.sleep(60)


def _entry_report_exception(payload, queue, attempt=0, task_index=-1):
    queue.put(
        pickle.dumps(
            WorkerFailure(
                task_index=task_index,
                kind="exception",
                message="boom",
                exc_type="ValueError",
                traceback="Traceback (most recent call last):\nValueError: boom\n",
            )
        )
    )


def _inline_ok(payload):
    return FakeResult(int(payload.decode()))


def _inline_raise(payload):
    raise RuntimeError("inline boom")


def _supervisor(entry, *, run_inline=_inline_raise, policy=FAST, tasks=2, **kw):
    payloads = {i: str(i).encode() for i in range(tasks)}
    return WorkerSupervisor(
        payloads=payloads,
        context=FORK,
        entry=entry,
        run_inline=run_inline,
        policy=policy,
        sleep=lambda _s: None,
        **kw,
    )


# ---------------------------------------------------------------------------
# Failure records and retry policy
# ---------------------------------------------------------------------------


class TestWorkerFailure:
    def test_pickle_round_trip(self):
        failure = WorkerFailure(
            task_index=3,
            kind="crash",
            message="died",
            exitcode=-9,
            attempts=2,
            group_indices=(1, 4),
            state_count=12,
        )
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.as_dict() == failure.as_dict()
        assert clone.group_indices == (1, 4)

    def test_as_dict_is_json_serializable(self):
        failure = WorkerFailure(task_index=0, kind="timeout", message="slow")
        data = json.loads(json.dumps(failure.as_dict()))
        assert data["kind"] == "timeout"
        assert data["task_index"] == 0

    def test_describe_names_the_partition(self):
        failure = WorkerFailure(
            task_index=7, kind="exception", message="x", exc_type="KeyError"
        )
        text = failure.describe()
        assert "partition 7" in text
        assert "KeyError" in text

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkerFailure(task_index=0, kind="melted", message="?")


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        for task in range(3):
            for attempt in range(1, 4):
                assert a.backoff_seconds(task, attempt) == b.backoff_seconds(
                    task, attempt
                )

    def test_backoff_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(
            backoff_base_seconds=0.1, backoff_factor=2.0, backoff_jitter=0.25
        )
        for attempt in (1, 2, 3):
            base = 0.1 * 2.0 ** (attempt - 1)
            delay = policy.backoff_seconds(0, attempt)
            assert base <= delay <= base * 1.25

    def test_first_attempt_has_no_delay(self):
        assert RetryPolicy().backoff_seconds(0, 0) == 0.0

    def test_seed_changes_jitter(self):
        delays = {
            RetryPolicy(seed=s).backoff_seconds(1, 2) for s in range(8)
        }
        assert len(delays) > 1

    def test_chaos_env_parsing(self, monkeypatch):
        for value, expected in (
            ("1", True),
            ("true", True),
            ("", False),
            ("0", False),
            ("no", False),
        ):
            monkeypatch.setenv("SDE_CHAOS_KILL_WORKER", value)
            assert chaos_kill_requested() is expected
        monkeypatch.delenv("SDE_CHAOS_KILL_WORKER")
        assert chaos_kill_requested() is False

    def test_chaos_probability_parsing(self, monkeypatch):
        for value, expected in (
            ("", 0.0),
            ("0", 0.0),
            ("false", 0.0),
            ("no", 0.0),
            ("0.0", 0.0),
            ("0.3", 0.3),
            ("1", 1.0),
            ("1.0", 1.0),
            ("2.5", 1.0),  # clamped
            ("-0.5", 0.0),  # clamped
            ("yes", 1.0),  # plain-truthy string keeps the legacy meaning
            ("banana", 1.0),
        ):
            monkeypatch.setenv("SDE_CHAOS_KILL_WORKER", value)
            assert chaos_kill_probability() == expected
        monkeypatch.delenv("SDE_CHAOS_KILL_WORKER")
        assert chaos_kill_probability() == 0.0

    def test_chaos_truthy_kills_only_first_attempt(self, monkeypatch):
        monkeypatch.setenv("SDE_CHAOS_KILL_WORKER", "yes")
        assert chaos_kill_requested(0, token="t") is True
        assert chaos_kill_requested(1, token="t") is False
        assert chaos_kill_requested(2, token="t") is False

    def test_chaos_fractional_is_a_seeded_per_attempt_coin(self, monkeypatch):
        monkeypatch.setenv("SDE_CHAOS_KILL_WORKER", "0.3")
        verdicts = [
            chaos_kill_requested(attempt, token=f"job{job}")
            for job in range(40)
            for attempt in range(3)
        ]
        # Deterministic: the same (token, attempt) grid re-decides
        # identically on a rerun.
        rerun = [
            chaos_kill_requested(attempt, token=f"job{job}")
            for job in range(40)
            for attempt in range(3)
        ]
        assert verdicts == rerun
        # Fractional: neither all-kill nor no-kill, and roughly the asked
        # probability (wide tolerance — this is a seeded coin, not a
        # statistics test).
        rate = sum(verdicts) / len(verdicts)
        assert 0.1 < rate < 0.5
        # Attempts are independent coins: some first attempts survive and
        # some retries die, unlike the all-or-nothing form.
        first = [chaos_kill_requested(0, token=f"job{j}") for j in range(40)]
        later = [chaos_kill_requested(1, token=f"job{j}") for j in range(40)]
        assert any(first) and not all(first)
        assert any(later) and not all(later)

    def test_chaos_fractional_zero_and_one_edges(self, monkeypatch):
        monkeypatch.setenv("SDE_CHAOS_KILL_WORKER", "0.0")
        assert not any(
            chaos_kill_requested(a, token=f"j{j}")
            for j in range(10)
            for a in range(3)
        )
        monkeypatch.setenv("SDE_CHAOS_KILL_WORKER", "1.0")
        assert all(chaos_kill_requested(0, token=f"j{j}") for j in range(10))
        assert not any(chaos_kill_requested(1, token=f"j{j}") for j in range(10))


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------


class TestWorkerSupervisor:
    def test_healthy_workers_complete_without_retries(self):
        results, failed, retries = _supervisor(_entry_ok, tasks=3).run()
        assert sorted(r.index for r in results) == [0, 1, 2]
        assert failed == []
        assert retries == 0

    def test_killed_worker_is_retried_and_recovers(self):
        trace = TraceEmitter()
        results, failed, retries = _supervisor(
            _entry_crash_first, tasks=2, trace=trace
        ).run()
        assert sorted(r.index for r in results) == [0, 1]
        assert failed == []
        assert retries == 2  # each task died once
        names = [event["ev"] for event in trace.events]
        assert "worker.crash" in names
        assert "worker.retry" in names
        crash = next(e for e in trace.events if e["ev"] == "worker.crash")
        assert crash["kind"] == "crash"
        assert crash["exitcode"] == 17

    def test_dead_worker_does_not_hang_the_drain(self):
        # Regression: the pre-supervisor drain blocked forever on
        # ``queue.get()`` when a worker died without enqueueing a result.
        started = time.monotonic()
        policy = RetryPolicy(
            max_retries=0, poll_interval_seconds=0.02, backoff_base_seconds=0.0
        )
        with pytest.raises(WorkerTaskError) as excinfo:
            _supervisor(_entry_always_crash, policy=policy, tasks=1).run()
        assert time.monotonic() - started < 30.0
        failure = excinfo.value.failure
        assert failure.kind == "crash"
        assert failure.exitcode == 23
        assert "partition 0" in str(excinfo.value)

    def test_final_attempt_runs_inline(self):
        # With max_retries=1 a crashing task gets its last chance in the
        # supervisor's own process — immune to further worker loss.
        policy = RetryPolicy(
            max_retries=1, poll_interval_seconds=0.02, backoff_base_seconds=0.0
        )
        results, failed, retries = _supervisor(
            _entry_always_crash, run_inline=_inline_ok, policy=policy, tasks=2
        ).run()
        assert sorted(r.index for r in results) == [0, 1]
        assert failed == []
        assert retries == 2

    def test_allow_partial_reports_instead_of_raising(self):
        policy = RetryPolicy(
            max_retries=0,
            poll_interval_seconds=0.02,
            allow_partial=True,
        )
        meta = {0: ((3, 5), 9), 1: ((), 0)}
        supervisor = _supervisor(
            _entry_always_crash, policy=policy, tasks=2, task_meta=meta
        )
        results, failed, retries = supervisor.run()
        assert results == []
        assert retries == 0
        assert sorted(f.task_index for f in failed) == [0, 1]
        by_index = {f.task_index: f for f in failed}
        # The failure record carries enough to rerun the partition.
        assert by_index[0].group_indices == (3, 5)
        assert by_index[0].state_count == 9

    def test_mixed_outcome_keeps_completed_partitions(self):
        # One healthy task + one that always dies: the healthy result
        # must survive (the old drain threw everything away).
        policy = RetryPolicy(
            max_retries=0, poll_interval_seconds=0.02, allow_partial=True
        )
        payloads = {0: b"0", 1: b"1"}

        supervisor = WorkerSupervisor(
            payloads=payloads,
            context=FORK,
            entry=_entry_crash_by_index,
            run_inline=_inline_raise,
            policy=policy,
            sleep=lambda _s: None,
        )
        results, failed, _ = supervisor.run()
        assert [r.index for r in results] == [0]
        assert [f.task_index for f in failed] == [1]

    def test_timeout_classified_and_terminated(self):
        policy = RetryPolicy(
            max_retries=0,
            poll_interval_seconds=0.02,
            task_timeout_seconds=0.3,
            allow_partial=True,
        )
        started = time.monotonic()
        results, failed, _ = _supervisor(
            _entry_hang, policy=policy, tasks=1
        ).run()
        assert time.monotonic() - started < 30.0
        assert results == []
        assert len(failed) == 1
        assert failed[0].kind == "timeout"
        assert "wall-clock budget" in failed[0].message

    def test_worker_exception_preserves_origin(self):
        policy = RetryPolicy(max_retries=0, poll_interval_seconds=0.02)
        with pytest.raises(WorkerTaskError) as excinfo:
            _supervisor(_entry_report_exception, policy=policy, tasks=1).run()
        failure = excinfo.value.failure
        assert failure.kind == "exception"
        assert failure.exc_type == "ValueError"
        assert "ValueError: boom" in failure.traceback
        # The worker traceback is chained for pytest/traceback display.
        assert excinfo.value.__cause__ is not None
        assert "worker traceback" in str(excinfo.value.__cause__)

    def test_inline_fallback_failure_is_classified(self):
        policy = RetryPolicy(
            max_retries=1,
            poll_interval_seconds=0.02,
            backoff_base_seconds=0.0,
            allow_partial=True,
        )
        results, failed, _ = _supervisor(
            _entry_always_crash, run_inline=_inline_raise, policy=policy, tasks=1
        ).run()
        assert results == []
        assert len(failed) == 1
        assert failed[0].kind == "exception"
        assert failed[0].exc_type == "RuntimeError"
        assert "inline boom" in failed[0].message


def _entry_crash_by_index(payload, queue, attempt=0, task_index=-1):
    if task_index == 1:
        os._exit(9)
    queue.put(pickle.dumps(FakeResult(task_index)))


# ---------------------------------------------------------------------------
# End-to-end fault injection (the acceptance scenario)
# ---------------------------------------------------------------------------


class TestChaosEquivalence:
    def test_killed_workers_recover_to_sequential_results(self, monkeypatch):
        # Every worker's first attempt dies via SDE_CHAOS_KILL_WORKER;
        # retries complete the run and the merged report + trace multiset
        # must equal the unfaulted sequential run's.
        sequential_trace = TraceEmitter()
        sequential_engine = build_engine(
            flood_scenario(4, rounds=6), "sds", trace=sequential_trace
        )
        sequential = sequential_engine.run()

        monkeypatch.setenv("SDE_CHAOS_KILL_WORKER", "1")
        parallel_trace = TraceEmitter()
        parallel = ParallelRunner(
            flood_scenario(4, rounds=6),
            "sds",
            workers=2,
            trace=parallel_trace,
            retry_policy=RetryPolicy(
                backoff_base_seconds=0.001, poll_interval_seconds=0.02
            ),
        ).run()

        assert parallel.retries >= 2  # both workers were killed once
        assert not parallel.partial
        _assert_reports_match(parallel, sequential)
        assert parallel.state_census() == sequential_engine.state_census()
        diff = diff_traces(sequential_trace.events, parallel_trace.events)
        assert diff.equal, diff.render(limit=5)
        # The faults themselves are visible in the (meta) trace.
        crashes = [
            e for e in parallel_trace.events if e["ev"] == "worker.crash"
        ]
        assert len(crashes) >= 2
        assert parallel.metrics["counters"]["parallel.retries"] == (
            parallel.retries
        )


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------


def _scenario():
    return grid_scenario(3, sim_seconds=6)


class TestCheckpointResume:
    def test_resume_matches_uninterrupted_run(self, tmp_path):
        baseline_engine = build_engine(_scenario(), "sds")
        baseline = baseline_engine.run()

        engine = build_engine(_scenario(), "sds")
        engine.run_until(split_ms=3000)
        path = tmp_path / "mid.sdeckpt"
        header = save_checkpoint(engine, path)
        assert header["events_executed"] == engine.events_executed
        del engine

        resumed = resume_engine(path)
        report = resumed.run()
        assert report.resumed
        _assert_reports_match(report, baseline)
        assert resumed.state_census() == baseline_engine.state_census()

    @pytest.mark.parametrize("algorithm", ["cob", "cow"])
    def test_resume_matches_for_other_mappers(self, tmp_path, algorithm):
        baseline_engine = build_engine(_scenario(), algorithm)
        baseline = baseline_engine.run()
        engine = build_engine(_scenario(), algorithm)
        engine.run_until(split_ms=2000)
        path = tmp_path / "mid.sdeckpt"
        save_checkpoint(engine, path)
        resumed = resume_engine(path)
        report = resumed.run()
        _assert_reports_match(report, baseline)
        assert resumed.state_census() == baseline_engine.state_census()

    def test_periodic_checkpointing_during_run(self, tmp_path):
        path = tmp_path / "auto.sdeckpt"
        trace = TraceEmitter()
        engine = build_engine(
            _scenario(),
            "sds",
            checkpoint_path=str(path),
            checkpoint_every_events=50,
            trace=trace,
        )
        report = engine.run()
        assert report.checkpoints_written >= 2
        assert path.exists()
        writes = [e for e in trace.events if e["ev"] == "checkpoint.write"]
        assert len(writes) == report.checkpoints_written
        # Resuming the *last* periodic checkpoint completes identically.
        resumed = resume_engine(path)
        resumed_report = resumed.run()
        _assert_reports_match(resumed_report, report)
        assert resumed.state_census() == engine.state_census()

    def test_resume_restores_trace_continuity(self, tmp_path):
        sequential_trace = TraceEmitter()
        build_engine(_scenario(), "sds", trace=sequential_trace).run()

        first_trace = TraceEmitter()
        engine = build_engine(_scenario(), "sds", trace=first_trace)
        engine.run_until(split_ms=3000)
        path = tmp_path / "mid.sdeckpt"
        save_checkpoint(engine, path)

        resumed_trace = TraceEmitter()
        resumed = resume_engine(path, trace=resumed_trace)
        resumed.run()
        # The checkpoint carried the pre-split events, so the resumed
        # trace is the *complete* run's trace, not just the tail.
        diff = diff_traces(sequential_trace.events, resumed_trace.events)
        assert diff.equal, diff.render(limit=5)
        assert any(
            e["ev"] == "checkpoint.resume" for e in resumed_trace.events
        )

    def test_resume_report_flags_and_json(self, tmp_path):
        from repro.core.reporting import report_to_dict

        engine = build_engine(_scenario(), "sds")
        engine.run_until(split_ms=3000)
        path = tmp_path / "mid.sdeckpt"
        save_checkpoint(engine, path)
        report = resume_engine(path).run()
        data = report_to_dict(report)
        assert data["resumed"] is True
        assert data["partial"] is False
        assert report.metrics["gauges"]["run.resumed"] == 1

    def test_header_is_readable_without_unpickling(self, tmp_path):
        engine = build_engine(_scenario(), "sds")
        engine.run_until(split_ms=3000)
        path = tmp_path / "mid.sdeckpt"
        save_checkpoint(engine, path)
        with open(path, "rb") as handle:
            magic = handle.readline().strip()
            header = json.loads(handle.readline())
        assert magic == CHECKPOINT_MAGIC
        assert header["algorithm"] == "sds"
        assert header["events_executed"] == engine.events_executed
        assert header["total_states"] == len(engine.states)

    def test_truncated_checkpoint_rejected(self, tmp_path):
        engine = build_engine(_scenario(), "sds")
        engine.run_until(split_ms=3000)
        path = tmp_path / "mid.sdeckpt"
        save_checkpoint(engine, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 100])
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(path)

    def test_corrupted_body_rejected(self, tmp_path):
        engine = build_engine(_scenario(), "sds")
        engine.run_until(split_ms=3000)
        path = tmp_path / "mid.sdeckpt"
        save_checkpoint(engine, path)
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(path)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "not-a-checkpoint"
        path.write_bytes(b"definitely json\n{}")
        with pytest.raises(CheckpointError, match="not an SDE checkpoint"):
            load_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "absent.sdeckpt")

    def test_future_version_rejected(self, tmp_path):
        engine = build_engine(_scenario(), "sds")
        engine.run_until(split_ms=3000)
        path = tmp_path / "mid.sdeckpt"
        save_checkpoint(engine, path)
        magic, header_bytes, body = path.read_bytes().split(b"\n", 2)
        header = json.loads(header_bytes)
        header["version"] = 99
        path.write_bytes(
            magic + b"\n" + json.dumps(header).encode("ascii") + b"\n" + body
        )
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)


# ---------------------------------------------------------------------------
# Cap aborts (state / memory / wall-clock)
# ---------------------------------------------------------------------------


class TestCapAborts:
    def _abort_report(self, **caps):
        engine = build_engine(
            grid_scenario(3, sim_seconds=10),
            "sds",
            sample_every_events=1,
            **caps,
        )
        return engine.run(), engine

    def test_state_cap_produces_partial_report(self):
        report, _ = self._abort_report(max_states=10)
        assert report.aborted
        assert "state cap exceeded" in report.abort_reason
        assert report.total_states > 10  # the sample that tripped the cap
        assert report.metrics["gauges"]["run.aborted"] == 1

    def test_memory_cap_produces_partial_report(self):
        report, _ = self._abort_report(max_accounted_bytes=1)
        assert report.aborted
        assert "memory cap exceeded" in report.abort_reason
        assert report.metrics["gauges"]["run.aborted"] == 1

    def test_wall_cap_produces_partial_report(self):
        report, _ = self._abort_report(max_wall_seconds=1e-9)
        assert report.aborted
        assert "wall-clock cap exceeded" in report.abort_reason

    def test_aborted_report_serializes_cleanly(self, tmp_path):
        from repro.core.reporting import load_report_dict, save_report
        from repro.obs import validate_metrics

        report, _ = self._abort_report(max_states=10)
        assert validate_metrics(report.metrics) == []
        path = tmp_path / "aborted.json"
        save_report(report, path)
        data = load_report_dict(path)
        assert data["aborted"] is True
        assert "state cap" in data["abort_reason"]
        assert data["metrics"]["gauges"]["run.aborted"] == 1

    def test_unaborted_run_reports_zero_gauge(self):
        report = build_engine(grid_scenario(3, sim_seconds=4), "sds").run()
        assert report.metrics["gauges"]["run.aborted"] == 0

    def test_checkpoint_before_abort_resumes_past_the_cap(self, tmp_path):
        # Table I's workflow: a capped run aborts, but the last checkpoint
        # lets the operator raise the cap and continue instead of
        # restarting from scratch.
        baseline_engine = build_engine(grid_scenario(3, sim_seconds=6), "sds")
        baseline = baseline_engine.run()

        path = tmp_path / "pre-abort.sdeckpt"
        engine = build_engine(
            grid_scenario(3, sim_seconds=6),
            "sds",
            sample_every_events=1,
            max_states=20,
            checkpoint_path=str(path),
            checkpoint_every_events=5,
        )
        capped = engine.run()
        assert capped.aborted
        assert path.exists()

        header, _ = load_checkpoint(path)
        assert header["total_states"] <= 20  # written before the abort

        resumed = resume_engine(path, max_states=None, sample_every_events=200)
        report = resumed.run()
        assert not report.aborted
        _assert_reports_match(report, baseline)
        assert resumed.state_census() == baseline_engine.state_census()
