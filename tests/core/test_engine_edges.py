"""Engine edge cases: latency, boot stagger, undeliverable traffic,
preset validation, stale timers, coverage plumbing."""

import pytest

from repro import Scenario, Topology, build_engine, run_scenario
from repro.vm import coverage_report

ECHO = """
var got;
func on_boot() {
    if (node_id() == 0) { timer_set(0, 10); }
}
func on_timer(tid) {
    var buf[1];
    buf[0] = 5;
    uc_send(1, buf, 1);
}
func on_recv(src, len) { got = recv_byte(0); }
"""


def simple_scenario(**overrides):
    params = dict(
        name="edge",
        program=ECHO,
        topology=Topology.line(2),
        horizon_ms=1000,
    )
    params.update(overrides)
    return Scenario(**params)


class TestLatency:
    def test_configurable_latency_delays_delivery(self):
        engine = build_engine(simple_scenario(latency_ms=50), "sds")
        engine.run()
        (receiver,) = engine.states_of_node(1)
        assert receiver.clock == 60  # sent at 10, +50ms

    def test_zero_latency(self):
        engine = build_engine(simple_scenario(latency_ms=0), "sds")
        engine.run()
        (receiver,) = engine.states_of_node(1)
        assert receiver.clock == 10


class TestBootStagger:
    def test_boot_times_respected(self):
        source = "var t; func on_boot() { t = time(); }"
        scenario = Scenario(
            name="stagger",
            program=source,
            topology=Topology.line(3),
            horizon_ms=1000,
            boot_times=[0, 100, 250],
        )
        engine = build_engine(scenario, "sds")
        engine.run()
        program = engine.program
        times = [
            engine.states_of_node(n)[0].memory[program.global_address("t")]
            for n in range(3)
        ]
        assert times == [0, 100, 250]

    def test_wrong_boot_times_length_rejected(self):
        scenario = simple_scenario(boot_times=[0])
        with pytest.raises(ValueError):
            build_engine(scenario, "sds")


class TestUndeliverable:
    def test_unicast_beyond_range_is_lost(self):
        source = """
        func on_boot() {
            if (node_id() == 0) { timer_set(0, 10); }
        }
        func on_timer(tid) {
            var buf[1];
            buf[0] = 1;
            uc_send(2, buf, 1);   // node 2 is 2 hops away: radio range miss
        }
        var got;
        func on_recv(src, len) { got = 1; }
        """
        scenario = simple_scenario(program=source, topology=Topology.line(3))
        engine = build_engine(scenario, "sds")
        engine.run()
        assert engine.medium.undeliverable == 1
        for node in (1, 2):
            (state,) = engine.states_of_node(node)
            assert state.memory[engine.program.global_address("got")] == 0
        # No error: sending out of range is silent loss, like a real radio.
        assert engine.error_states() == []

    def test_unicast_to_self_is_an_error(self):
        source = """
        func on_boot() { timer_set(0, 10); }
        func on_timer(tid) {
            var buf[1];
            uc_send(node_id(), buf, 1);
        }
        """
        scenario = simple_scenario(program=source, topology=Topology.line(1))
        report = run_scenario(scenario, "sds")
        assert len(report.error_states) == 1


class TestPresets:
    def test_unknown_global_rejected(self):
        scenario = simple_scenario(preset_globals={"nope": 1})
        engine = build_engine(scenario, "sds")
        with pytest.raises(KeyError):
            engine.setup()

    def test_array_preset_rejected(self):
        source = "var arr[4]; func on_boot() { }"
        scenario = simple_scenario(
            program=source, preset_globals={"arr": 1}
        )
        engine = build_engine(scenario, "sds")
        with pytest.raises(ValueError):
            engine.setup()

    def test_per_node_preset_defaults_to_zero(self):
        source = "var v; var r; func on_boot() { r = v; }"
        scenario = Scenario(
            name="presets",
            program=source,
            topology=Topology.line(3),
            horizon_ms=10,
            preset_globals={"v": {1: 42}},
        )
        engine = build_engine(scenario, "sds")
        engine.run()
        program = engine.program
        values = [
            engine.states_of_node(n)[0].memory[program.global_address("r")]
            for n in range(3)
        ]
        assert values == [0, 42, 0]


class TestTimers:
    def test_stopped_timer_never_fires(self):
        source = """
        var fired;
        func on_boot() { timer_set(0, 100); timer_stop(0); }
        func on_timer(tid) { fired = 1; }
        """
        engine = build_engine(
            simple_scenario(program=source, topology=Topology.line(1)), "sds"
        )
        engine.run()
        (state,) = engine.states_of_node(0)
        assert state.memory[engine.program.global_address("fired")] == 0

    def test_rearmed_timer_fires_once_at_new_time(self):
        source = """
        var fired; var at;
        func on_boot() { timer_set(0, 100); timer_set(0, 300); }
        func on_timer(tid) { fired += 1; at = time(); }
        """
        engine = build_engine(
            simple_scenario(program=source, topology=Topology.line(1)), "sds"
        )
        engine.run()
        (state,) = engine.states_of_node(0)
        program = engine.program
        assert state.memory[program.global_address("fired")] == 1
        assert state.memory[program.global_address("at")] == 300

    def test_setup_twice_rejected(self):
        engine = build_engine(simple_scenario(), "sds")
        engine.setup()
        with pytest.raises(RuntimeError):
            engine.setup()


class TestEngineCoverage:
    def test_coverage_available_after_run(self):
        engine = build_engine(simple_scenario(), "sds")
        engine.run()
        report = coverage_report(
            engine.program, engine.executor.visited_pcs
        )
        assert report.fraction > 0.5


class TestCensus:
    def test_state_census_covers_all_nodes(self):
        from repro.workloads import grid_scenario

        engine = build_engine(grid_scenario(3, sim_seconds=3), "sds")
        engine.run()
        census = engine.state_census()
        assert set(census) == set(engine.topology.nodes())
        assert sum(census.values()) == len(engine.states)
        # Every node keeps at least its boot state.
        assert all(count >= 1 for count in census.values())
