"""Unit tests for logical canonicalization in the equivalence oracle."""

from repro.core.explode import (
    dscenario_fingerprints,
    logical_packet_key,
    logical_state_config,
)
from repro.net.packet import Packet
from repro.vm.state import Event, ExecutionState


class TestLogicalPacketKey:
    def test_same_logical_content_same_key(self):
        a = Packet(1, 2, (5, 6), 100)
        b = Packet(1, 2, (5, 6), 100)
        assert a.pid != b.pid
        assert logical_packet_key(a) == logical_packet_key(b)

    def test_differs_by_payload(self):
        a = Packet(1, 2, (5,), 100)
        b = Packet(1, 2, (6,), 100)
        assert logical_packet_key(a) != logical_packet_key(b)

    def test_differs_by_time(self):
        a = Packet(1, 2, (5,), 100)
        b = Packet(1, 2, (5,), 101)
        assert logical_packet_key(a) != logical_packet_key(b)

    def test_broadcast_flag_included(self):
        unicast = Packet(1, 2, (5,), 100, broadcast_id=0)
        leg = Packet(1, 2, (5,), 100, broadcast_id=3)
        assert logical_packet_key(unicast) != logical_packet_key(leg)

    def test_leg_number_not_included(self):
        leg3 = Packet(1, 2, (5,), 100, broadcast_id=3)
        leg9 = Packet(1, 2, (5,), 100, broadcast_id=9)
        assert logical_packet_key(leg3) == logical_packet_key(leg9)


class TestLogicalStateConfig:
    def _state_with_history(self, packets):
        state = ExecutionState(0, memory_size=2)
        registry = {}
        for packet in packets:
            registry[packet.pid] = packet
            state.record_received(packet.pid, packet.src)
        return state, registry

    def test_pid_renaming_invariance(self):
        p1 = Packet(1, 0, (7,), 50)
        p2 = Packet(1, 0, (7,), 50)
        a, reg_a = self._state_with_history([p1])
        b, reg_b = self._state_with_history([p2])
        assert logical_state_config(a, reg_a) == logical_state_config(b, reg_b)

    def test_payload_difference_detected(self):
        a, reg_a = self._state_with_history([Packet(1, 0, (7,), 50)])
        b, reg_b = self._state_with_history([Packet(1, 0, (8,), 50)])
        assert logical_state_config(a, reg_a) != logical_state_config(b, reg_b)

    def test_pending_recv_event_canonicalized(self):
        p1 = Packet(1, 0, (7,), 50)
        p2 = Packet(1, 0, (7,), 50)
        a = ExecutionState(0, 2)
        b = ExecutionState(0, 2)
        a.push_event(51, Event.RECV, p1)
        b.push_event(51, Event.RECV, p2)
        assert logical_state_config(a, {p1.pid: p1}) == logical_state_config(
            b, {p2.pid: p2}
        )

    def test_current_packet_canonicalized(self):
        p1 = Packet(1, 0, (7,), 50)
        p2 = Packet(1, 0, (7,), 50)
        a = ExecutionState(0, 2)
        b = ExecutionState(0, 2)
        a.current_packet = p1
        b.current_packet = p2
        assert logical_state_config(a, {}) == logical_state_config(b, {})

    def test_unknown_pid_passes_through(self):
        state = ExecutionState(0, 2)
        state.record_received(999, src=1)
        config = logical_state_config(state, {})
        assert ("rx", 999, 1) in config[-1]


class TestFingerprintMultisets:
    def test_duplicate_dscenarios_counted(self):
        from repro.core import COBMapper

        from .helpers import MapperHarness

        harness = MapperHarness(COBMapper(), node_count=2)
        # Fork node 0 without distinguishing configs: two dscenarios with
        # identical fingerprints -> multiset counts 2.
        child = harness.initial[0].fork()
        harness.states.append(child)
        harness.mapper.on_local_fork(harness.initial[0], [child])
        fingerprints = dscenario_fingerprints(harness.mapper, {})
        assert sum(fingerprints.values()) == 2
        assert max(fingerprints.values()) == 2  # true duplicates collapse
