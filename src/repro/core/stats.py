"""Run statistics: state/memory growth sampling (Figure 10's raw data).

The paper samples execution time, number of states and RSS of the KleeNet
process over each run.  We sample the same three series, with memory
reported two ways:

- **accounted bytes** — a deterministic per-state cost model (cells, event
  queue, constraints, history, plus the shared LLVM-bitcode-equivalent
  baseline).  This is the series benchmarks compare across algorithms,
  because Python RSS is noisy and dominated by interpreter overhead.
- **process RSS** — read from ``/proc/self/status`` when available, as a
  real-machine cross-check.

The cost model intentionally mirrors what drives KleeNet's RSS: duplicate
states pay full price for their private memory image even when their
content is identical — that is exactly the waste COW/SDS remove.
"""

from __future__ import annotations

import time
from typing import Iterable, List, NamedTuple

from ..vm.state import ExecutionState

__all__ = ["Sample", "StatsRecorder", "estimate_state_bytes", "process_rss_bytes"]

#: Fixed per-state overhead (bookkeeping structures), in bytes.
STATE_BASE_COST = 256
#: Cost per guest memory cell (value + slot).
CELL_COST = 8
#: Cost per pending event.
EVENT_COST = 48
#: Cost per path-constraint entry (amortized DAG nodes are shared/interned).
CONSTRAINT_COST = 64
#: Cost per communication-history entry.
HISTORY_COST = 24
#: Shared baseline: the loaded program image (KleeNet's "LLVM bytecode"
#: load shows as the initial jump in Figure 10's memory plots).
PROGRAM_IMAGE_COST_PER_INSTRUCTION = 96


class Sample(NamedTuple):
    """One point of the Figure-10 time series."""

    wall_seconds: float
    virtual_ms: int
    events_executed: int
    live_states: int
    total_states: int
    accounted_bytes: int
    rss_bytes: int
    groups: int


def estimate_state_bytes(state: ExecutionState) -> int:
    """Deterministic memory footprint of one execution state."""
    return (
        STATE_BASE_COST
        + CELL_COST * len(state.memory)
        + EVENT_COST * len(state.events)
        + CONSTRAINT_COST * len(state.constraints)
        + HISTORY_COST * len(state.history)
    )


def process_rss_bytes() -> int:
    """Resident set size of this process; 0 if unavailable."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0


class StatsRecorder:
    """Collects the growth time series during an engine run."""

    def __init__(
        self,
        program_instructions: int,
        sample_every_events: int = 64,
    ) -> None:
        self.samples: List[Sample] = []
        self._started = time.perf_counter()
        self._image_cost = (PROGRAM_IMAGE_COST_PER_INSTRUCTION * program_instructions)
        self._sample_every = max(1, sample_every_events)
        self._last_sampled_at = -1

    def should_sample(self, events_executed: int) -> bool:
        if self._last_sampled_at < 0:
            return True
        return events_executed - self._last_sampled_at >= self._sample_every

    def record(
        self,
        states: Iterable[ExecutionState],
        virtual_ms: int,
        events_executed: int,
        groups: int,
    ) -> Sample:
        # Single fused pass: the cost-model arithmetic is inlined (no
        # per-state function call) and the live count shares the loop —
        # sampling is a per-64-events hot path over every state alive.
        accounted = self._image_cost
        live = 0
        total = 0
        for state in states:
            total += 1
            status = state.status
            if status == "idle" or status == "running":  # is_active, inlined
                live += 1
            accounted += (
                STATE_BASE_COST
                + CELL_COST * len(state.memory)
                + EVENT_COST * len(state.events)
                + CONSTRAINT_COST * state.constraints._size
                + HISTORY_COST * len(state.history)
            )
        sample = Sample(
            wall_seconds=time.perf_counter() - self._started,
            virtual_ms=virtual_ms,
            events_executed=events_executed,
            live_states=live,
            total_states=total,
            accounted_bytes=accounted,
            rss_bytes=process_rss_bytes(),
            groups=groups,
        )
        self.samples.append(sample)
        self._last_sampled_at = events_executed
        return sample

    def elapsed(self) -> float:
        return time.perf_counter() - self._started

    def peak_states(self) -> int:
        return max((s.total_states for s in self.samples), default=0)

    def peak_accounted_bytes(self) -> int:
        return max((s.accounted_bytes for s in self.samples), default=0)
