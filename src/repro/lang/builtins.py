"""Registry of VM intrinsics (the guest/OS boundary).

Every entry maps a callable NSL name to its arity contract.  The compiler
validates call sites against this table; the VM's syscall handler
(:mod:`repro.vm.syscalls`) implements the semantics.  Keeping the table in
:mod:`repro.lang` lets the compiler reject typos at build time instead of at
simulation time.

Arity is ``(min_args, max_args)``; ``max_args`` of None means unbounded.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["BUILTINS", "is_builtin", "check_arity"]

BUILTINS: Dict[str, Tuple[int, Optional[int]]] = {
    # -- identity / time ---------------------------------------------------
    "node_id": (0, 0),        # this node's id
    "node_count": (0, 0),     # number of nodes in the scenario
    "time": (0, 0),           # virtual time in milliseconds
    # -- symbolic input ----------------------------------------------------
    "symbolic": (1, 2),       # symbolic("tag"[, width]) -> fresh symbolic value
    "assume": (1, 1),         # assume(cond): constrain the current path
    # -- checks ------------------------------------------------------------
    "assert": (1, 2),         # assert(cond[, code]): error state if violated
    "fail": (1, 1),           # fail(code): unconditional error state
    # -- communication (Rime-like, see repro.oslib) -------------------------
    "uc_send": (3, 3),        # uc_send(dest, buf, len): unicast
    "bc_send": (2, 2),        # bc_send(buf, len): broadcast to neighbours
    "recv_len": (0, 0),       # length of the packet being handled
    "recv_src": (0, 0),       # sender id of the packet being handled
    "recv_byte": (1, 1),      # recv_byte(i): i-th payload byte
    "recv_copy": (3, 3),      # recv_copy(buf, off, len): copy payload bytes
    # -- timers ------------------------------------------------------------
    "timer_set": (2, 2),      # timer_set(id, delay_ms)
    "timer_stop": (1, 1),     # timer_stop(id)
    # -- raw memory (pointer-style access for buffer code) ------------------
    "peek": (1, 1),           # peek(addr)
    "poke": (2, 2),           # poke(addr, value)
    # -- misc ---------------------------------------------------------------
    "lshr": (2, 2),           # logical shift right (NSL '>>' is arithmetic)
    "min": (2, 2),
    "max": (2, 2),
    "abs": (1, 1),
    "log": (1, 4),            # diagnostic trace, no semantic effect
}


def is_builtin(name: str) -> bool:
    return name in BUILTINS


def check_arity(name: str, nargs: int) -> bool:
    lo, hi = BUILTINS[name]
    if nargs < lo:
        return False
    return hi is None or nargs <= hi
