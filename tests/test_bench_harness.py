"""Unit tests for the benchmark harness library (repro.bench)."""

import io

from repro.bench import (
    full_scale,
    log_sparkline,
    render_series,
    render_table1,
    run_algorithms,
    run_one,
    series_csv,
)
from repro.workloads import line_scenario


def rows_for(factory=lambda: line_scenario(3, sim_seconds=2)):
    return run_algorithms(factory)


class TestRunner:
    def test_run_one_row_fields(self):
        row = run_one(line_scenario(3, sim_seconds=2), "sds")
        assert row.algorithm == "sds"
        assert row.states > 0
        assert row.groups >= 1
        assert not row.aborted
        assert row.samples
        data = row.as_dict()
        assert data["scenario"] == "line-3"
        assert data["states"] == row.states

    def test_run_algorithms_order(self):
        rows = rows_for()
        assert [r.algorithm for r in rows] == ["cob", "cow", "sds"]

    def test_cob_caps_apply(self):
        rows = run_algorithms(
            lambda: line_scenario(4, sim_seconds=3),
            cob_max_states=1,
        )
        cob = rows[0]
        assert cob.aborted

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.delenv("SDE_FULL", raising=False)
        assert not full_scale()
        monkeypatch.setenv("SDE_FULL", "1")
        assert full_scale()

    def test_runtime_labels(self):
        row = run_one(line_scenario(3, sim_seconds=2), "sds")
        assert row.runtime_label().endswith("s")
        row.runtime_seconds = 75
        assert row.runtime_label() == "1m:15s"
        row.runtime_seconds = 2 * 3600 + 600
        assert row.runtime_label() == "2h:10m"

    def test_memory_labels(self):
        row = run_one(line_scenario(3, sim_seconds=2), "sds")
        row.accounted_bytes = 5_000_000
        assert row.memory_label() == "5.0 MB"
        row.accounted_bytes = 2_500_000_000
        assert row.memory_label() == "2.5 GB"


class TestReport:
    def test_render_table1_contains_rows(self):
        rows = rows_for()
        text = render_table1(rows, "test table")
        assert "Copy On Branch (COB)" in text
        assert "Super DStates (SDS)" in text
        assert "test table" in text

    def test_aborted_marker(self):
        rows = run_algorithms(
            lambda: line_scenario(4, sim_seconds=3), cob_max_states=1
        )
        text = render_table1(rows, "t")
        assert "(aborted)" in text

    def test_render_series_both_metrics(self):
        rows = rows_for()
        for metric in ("states", "memory"):
            text = render_series(rows, metric, "series")
            assert "COB" in text and "SDS" in text
            assert "final=" in text

    def test_series_csv_shape(self):
        rows = rows_for()
        buffer = io.StringIO()
        series_csv(rows, buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0].startswith("algorithm,wall_seconds")
        assert len(lines) > 3
        assert all(line.count(",") == 7 for line in lines)

    def test_log_sparkline_monotone_inputs(self):
        line = log_sparkline([1, 10, 100, 1000])
        assert len(line) == 4
        assert line[0] == " " or line[0] == "."
        assert line[-1] == "@"

    def test_log_sparkline_empty_and_zero(self):
        assert log_sparkline([]) == ""
        assert log_sparkline([0, 0]) == "  "
