"""Recursive-descent parser for NSL.

Grammar (EBNF-ish)::

    program    := (global | const | func)*
    global     := "var" IDENT ("[" INT "]")? ("=" expr)? ";"
    const      := "const" IDENT "=" expr ";"
    func       := "func" IDENT "(" params? ")" block
    block      := "{" statement* "}"
    statement  := vardecl | if | while | for | "break" ";" | "continue" ";"
                | "return" expr? ";" | simple ";"
    simple     := assignment | expr          (for-loop headers reuse this)
    assignment := lvalue ("=" | "+=" | ... ) expr
    expr       := ternary
    ternary    := logic_or ("?" expr ":" ternary)?
    logic_or   := logic_and ("||" logic_and)*
    logic_and  := bitor ("&&" bitor)*
    bitor      := bitxor ("|" bitxor)*
    bitxor     := bitand ("^" bitand)*
    bitand     := equality ("&" equality)*
    equality   := relational (("==" | "!=") relational)*
    relational := shift (("<" | "<=" | ">" | ">=") shift)*
    shift      := additive (("<<" | ">>") additive)*
    additive   := multiplicative (("+" | "-") multiplicative)*
    multiplicative := unary (("*" | "/" | "%") unary)*
    unary      := ("-" | "~" | "!") unary | postfix
    postfix    := primary ("[" expr "]")?
    primary    := INT | STRING | IDENT ("(" args? ")")? | "(" expr ")"

Operator precedence and semantics follow C, with all arithmetic performed on
32-bit two's-complement integers.
"""

from __future__ import annotations

from typing import List, Optional

from . import nodes as N
from .errors import ParseError
from .lexer import Token, tokenize

__all__ = ["parse"]

_COMPOUND_OPS = {"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


def parse(source: str) -> N.Program:
    """Parse NSL source text into a :class:`repro.lang.nodes.Program`."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str, value=None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def _match(self, kind: str, value=None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value=None) -> Token:
        token = self._peek()
        if not self._check(kind, value):
            wanted = value if value is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.value!r}",
                token.line,
                token.column,
            )
        return self._advance()

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> N.Program:
        globals_: List[N.GlobalVar] = []
        consts: List[N.ConstDef] = []
        funcs: List[N.FuncDef] = []
        while not self._check("eof"):
            token = self._peek()
            if self._check("keyword", "var"):
                globals_.append(self._parse_global())
            elif self._check("keyword", "const"):
                consts.append(self._parse_const())
            elif self._check("keyword", "func"):
                funcs.append(self._parse_func())
            else:
                raise ParseError(
                    f"expected declaration, found {token.value!r}",
                    token.line,
                    token.column,
                )
        return N.Program(globals_, consts, funcs)

    def _parse_global(self) -> N.GlobalVar:
        line = self._expect("keyword", "var").line
        name = self._expect("ident").value
        size, init = self._parse_var_suffix(line, name)
        return N.GlobalVar(line, name, size, init)

    def _parse_var_suffix(self, line: int, name: str):
        size = None
        init = None
        if self._match("op", "["):
            size_token = self._expect("int")
            size = size_token.value
            if size <= 0:
                raise ParseError(
                    f"array {name!r} must have positive size",
                    size_token.line,
                    size_token.column,
                )
            self._expect("op", "]")
        elif self._match("op", "="):
            init = self._parse_expr()
        self._expect("op", ";")
        return size, init

    def _parse_const(self) -> N.ConstDef:
        line = self._expect("keyword", "const").line
        name = self._expect("ident").value
        self._expect("op", "=")
        value_expr = self._parse_expr()
        self._expect("op", ";")
        return N.ConstDef(line, name, value_expr)

    def _parse_func(self) -> N.FuncDef:
        line = self._expect("keyword", "func").line
        name = self._expect("ident").value
        self._expect("op", "(")
        params: List[str] = []
        if not self._check("op", ")"):
            params.append(self._expect("ident").value)
            while self._match("op", ","):
                params.append(self._expect("ident").value)
        self._expect("op", ")")
        body = self._parse_block()
        return N.FuncDef(line, name, params, body)

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> N.Block:
        line = self._expect("op", "{").line
        statements: List[N.Node] = []
        while not self._check("op", "}"):
            if self._check("eof"):
                raise ParseError("unterminated block", line, 0)
            statements.append(self._parse_statement())
        self._expect("op", "}")
        return N.Block(line, statements)

    def _parse_statement(self) -> N.Node:
        token = self._peek()
        if self._check("keyword", "var"):
            self._advance()
            name = self._expect("ident").value
            size, init = self._parse_var_suffix(token.line, name)
            return N.VarDecl(token.line, name, size, init)
        if self._check("keyword", "if"):
            return self._parse_if()
        if self._check("keyword", "while"):
            self._advance()
            self._expect("op", "(")
            cond = self._parse_expr()
            self._expect("op", ")")
            body = self._parse_block()
            return N.While(token.line, cond, body)
        if self._check("keyword", "for"):
            return self._parse_for()
        if self._check("keyword", "break"):
            self._advance()
            self._expect("op", ";")
            return N.Break(token.line)
        if self._check("keyword", "continue"):
            self._advance()
            self._expect("op", ";")
            return N.Continue(token.line)
        if self._check("keyword", "return"):
            self._advance()
            value = None
            if not self._check("op", ";"):
                value = self._parse_expr()
            self._expect("op", ";")
            return N.Return(token.line, value)
        statement = self._parse_simple()
        self._expect("op", ";")
        return statement

    def _parse_if(self) -> N.If:
        line = self._expect("keyword", "if").line
        self._expect("op", "(")
        cond = self._parse_expr()
        self._expect("op", ")")
        then = self._parse_block()
        orelse: Optional[N.Block] = None
        if self._match("keyword", "else"):
            if self._check("keyword", "if"):
                nested = self._parse_if()
                orelse = N.Block(nested.line, [nested])
            else:
                orelse = self._parse_block()
        return N.If(line, cond, then, orelse)

    def _parse_for(self) -> N.For:
        line = self._expect("keyword", "for").line
        self._expect("op", "(")
        init = None
        if not self._check("op", ";"):
            if self._check("keyword", "var"):
                # `for (var i = 0; ...)` declares the loop variable in the
                # loop's own scope (the compiler wraps the whole loop).
                var_token = self._advance()
                name = self._expect("ident").value
                decl_init = None
                if self._match("op", "="):
                    decl_init = self._parse_expr()
                init = N.VarDecl(var_token.line, name, None, decl_init)
            else:
                init = self._parse_simple()
        self._expect("op", ";")
        cond = None
        if not self._check("op", ";"):
            cond = self._parse_expr()
        self._expect("op", ";")
        step = None
        if not self._check("op", ")"):
            step = self._parse_simple()
        self._expect("op", ")")
        body = self._parse_block()
        return N.For(line, init, cond, step, body)

    def _parse_simple(self) -> N.Node:
        """An assignment or a bare expression (no trailing semicolon)."""
        start = self._pos
        line = self._peek().line
        expr = self._parse_expr()
        token = self._peek()
        if token.kind == "op" and (token.value == "=" or token.value in _COMPOUND_OPS):
            if not isinstance(expr, (N.Name, N.Index)):
                raise ParseError(
                    "assignment target must be a variable or array element",
                    token.line,
                    token.column,
                )
            self._advance()
            value = self._parse_expr()
            op = None if token.value == "=" else token.value[:-1]
            return N.Assign(line, expr, op, value)
        del start
        return N.ExprStmt(line, expr)

    # -- expressions -----------------------------------------------------------

    def _parse_expr(self) -> N.Node:
        return self._parse_ternary()

    def _parse_ternary(self) -> N.Node:
        cond = self._parse_binary(0)
        if self._check("op", "?"):
            line = self._advance().line
            then = self._parse_expr()
            self._expect("op", ":")
            orelse = self._parse_ternary()
            return N.Ternary(line, cond, then, orelse)
        return cond

    # Precedence table: lower index binds looser.
    _LEVELS = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> N.Node:
        if level >= len(self._LEVELS):
            return self._parse_unary()
        ops = self._LEVELS[level]
        left = self._parse_binary(level + 1)
        while self._peek().kind == "op" and self._peek().value in ops:
            token = self._advance()
            right = self._parse_binary(level + 1)
            if token.value in ("&&", "||"):
                left = N.Logical(token.line, token.value, left, right)
            else:
                left = N.Binary(token.line, token.value, left, right)
        return left

    def _parse_unary(self) -> N.Node:
        token = self._peek()
        if token.kind == "op" and token.value in ("-", "~", "!"):
            self._advance()
            operand = self._parse_unary()
            return N.Unary(token.line, token.value, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> N.Node:
        expr = self._parse_primary()
        if self._check("op", "["):
            if not isinstance(expr, N.Name):
                token = self._peek()
                raise ParseError(
                    "only named arrays can be indexed", token.line, token.column
                )
            self._advance()
            index = self._parse_expr()
            self._expect("op", "]")
            return N.Index(expr.line, expr.ident, index)
        return expr

    def _parse_primary(self) -> N.Node:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return N.IntLit(token.line, token.value)
        if token.kind == "string":
            self._advance()
            return N.StrLit(token.line, token.value)
        if token.kind == "ident":
            self._advance()
            if self._check("op", "("):
                self._advance()
                args: List[N.Node] = []
                if not self._check("op", ")"):
                    args.append(self._parse_expr())
                    while self._match("op", ","):
                        args.append(self._parse_expr())
                self._expect("op", ")")
                return N.Call(token.line, token.value, args)
            return N.Name(token.line, token.value)
        if self._match("op", "("):
            expr = self._parse_expr()
            self._expect("op", ")")
            return expr
        raise ParseError(
            f"expected expression, found {token.value!r}", token.line, token.column
        )
