"""Realistic network medium: lossy, jittered, bandwidth-limited routed links.

Where :class:`~repro.net.medium.IdealMedium` answers only reachability and
a constant delay, :class:`RealisticMedium` models the link physics the
CloudSim-style roadmap sketches (ROADMAP item 5):

- **per-link parameters** — propagation ``latency_ms``, uniform extra
  ``jitter_ms``, independent per-hop ``loss`` probability, and an egress
  serialization rate ``bandwidth_cells_per_ms`` (payload cells per
  millisecond; 0 = infinite);
- **bounded egress queues with backpressure** — with finite bandwidth, a
  sender's packets onto one first-hop link serialize one after another;
  ``queue_capacity`` bounds how many packets may wait behind the one in
  service, and an over-capacity send is a *tail drop*, counted in
  ``queue_drops`` and traced as ``net.drop`` with ``reason="queue"``;
- **Dijkstra-routed multi-hop unicast** — a unicast to any reachable node
  follows the shortest path (uniform hop weights today; the weight hook is
  where per-link costs slot in), with lowest-node-id tie-breaking so
  routes are deterministic.  Star/ring/mesh/random/fat-tree topologies
  therefore deliver beyond one hop; broadcasts stay single-hop radio
  semantics (every neighbour overhears).

**Determinism.**  Symbolic distributed execution explores many worlds from
one run, across forked states, worker processes and checkpoint resumes —
a mutable RNG stream would make verdicts depend on exploration order.
Every loss/jitter draw here is instead a *pure function* of the logical
send: ``hash(seed, tag, src, dest, clock, seq, hop)``, with ``seq`` the
sender state's communication-history length (path-deterministic, forks
with the state, independent of the process-global sid/pid counters).  The
hash is ``random.Random`` seeded with a *string* key — CPython seeds
strings through SHA-512, so draws are stable across processes and
unaffected by ``PYTHONHASHSEED`` (tuple seeding would not be).  The same
logical send gets the same verdict in any harness, and there is no RNG
state to checkpoint.

**Queue state.**  The medium object itself holds only counters; per-link
``busy_until`` bookkeeping lives on the *sender state*
(``ExecutionState.link_busy``), so each symbolic world sees its own queue
occupancy and forks copy it — shared mutable queue state on the medium
would leak one world's backlog into another.  Relay hops are stateless:
they add serialization + propagation + jitter but do not queue (an honest
simplification, documented in docs/NETWORK.md).

**Reduction.**  Per-link draws distinguish relabelled links, so the
medium reports ``node_symmetric() == False`` whenever loss, jitter or a
finite bandwidth is configured — the symmetry/POR reducer self-disables
rather than pruning under a broken equivalence (docs/NETWORK.md).
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Tuple

from .medium import Medium, register_medium
from .topology import Topology

__all__ = ["RealisticMedium"]

#: egress-link key for broadcasts: the radio serializes one frame,
#: whichever neighbours overhear it.
_BROADCAST_LINK = -1


class RealisticMedium(Medium):
    """Routed multi-hop medium with loss, jitter, bandwidth and queues."""

    name = "realistic"

    def __init__(
        self,
        topology: Topology,
        latency_ms: int = 1,
        jitter_ms: int = 0,
        loss: float = 0.0,
        bandwidth_cells_per_ms: int = 0,
        queue_capacity: int = 0,
        seed: int = 0,
    ) -> None:
        if latency_ms < 0:
            raise ValueError("latency cannot be negative")
        if jitter_ms < 0:
            raise ValueError("jitter cannot be negative")
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss must be a probability in [0, 1)")
        if bandwidth_cells_per_ms < 0:
            raise ValueError("bandwidth cannot be negative")
        if queue_capacity < 0:
            raise ValueError("queue capacity cannot be negative")
        super().__init__(topology)
        self.latency_ms = latency_ms
        self.jitter_ms = jitter_ms
        self.loss = loss
        self.bandwidth_cells_per_ms = bandwidth_cells_per_ms
        self.queue_capacity = queue_capacity
        self.seed = seed
        self.unicasts_sent = 0
        self.broadcasts_sent = 0
        self.undeliverable = 0
        self.delivered = 0
        self.lost = 0
        self.queue_drops = 0
        self.hops_traversed = 0
        self._hop_tables: Dict[int, Dict[int, int]] = {}

    # -- routing (Dijkstra, deterministic tie-breaks) -----------------------

    def _hop_weight(self, a: int, b: int) -> int:
        """Cost of traversing link ``a``-``b`` (uniform today)."""
        return 1

    def _distances(self, dest: int) -> Dict[int, int]:
        dist: Dict[int, int] = {dest: 0}
        heap: List[Tuple[int, int]] = [(0, dest)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, d):
                continue
            for neighbor in self.topology.neighbors(node):
                candidate = d + self._hop_weight(node, neighbor)
                if candidate < dist.get(neighbor, candidate + 1):
                    dist[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))
        return dist

    def next_hop_table(self, dest: int) -> Dict[int, int]:
        """Next hop toward ``dest`` for every node that can reach it.

        Among equal-cost parents the lowest node id wins, so routes are
        deterministic for any topology.  Tables are cached per
        destination (routing is static for the run).
        """
        table = self._hop_tables.get(dest)
        if table is not None:
            return table
        if dest not in self.topology.nodes():
            # An out-of-range destination routes nowhere (the ideal
            # medium's undeliverable semantics, not a crash).
            self._hop_tables[dest] = {}
            return self._hop_tables[dest]
        dist = self._distances(dest)
        table = {}
        for node in self.topology.nodes():
            if node == dest or node not in dist:
                continue
            parents = [
                neighbor
                for neighbor in self.topology.neighbors(node)
                if neighbor in dist
                and dist[neighbor] + self._hop_weight(node, neighbor)
                == dist[node]
            ]
            table[node] = min(parents)
        self._hop_tables[dest] = table
        return table

    def route(self, src: int, dest: int) -> Optional[List[int]]:
        """The routed path src -> dest, or ``None`` if unreachable."""
        if src == dest:
            return [src]
        table = self.next_hop_table(dest)
        path = [src]
        while path[-1] != dest:
            hop = table.get(path[-1])
            if hop is None:
                return None
            path.append(hop)
        return path

    # -- seeded pure-function randomness ------------------------------------

    def _draw(
        self, tag: str, src: int, dest: int, clock: int, seq: int, hop: int
    ) -> float:
        key = f"net:{self.seed}:{tag}:{src}:{dest}:{clock}:{seq}:{hop}"
        return random.Random(key).random()

    def _jitter(
        self, src: int, dest: int, clock: int, seq: int, hop: int
    ) -> int:
        if not self.jitter_ms:
            return 0
        draw = self._draw("jitter", src, dest, clock, seq, hop)
        return int(draw * (self.jitter_ms + 1))

    def _lost(
        self, src: int, dest: int, clock: int, seq: int, hop: int
    ) -> bool:
        return (
            self.loss > 0.0
            and self._draw("loss", src, dest, clock, seq, hop) < self.loss
        )

    # -- egress queueing (per-sender-state bookkeeping) ---------------------

    def _service_ms(self, size: int) -> int:
        if not self.bandwidth_cells_per_ms:
            return 0
        return max(1, -(-size // self.bandwidth_cells_per_ms))

    def _egress(self, sender, link: int, size: int) -> Optional[int]:
        """Serialize onto ``sender``'s egress link; ``None`` = tail drop.

        Returns the departure time.  ``sender.link_busy[link]`` tracks
        when the link frees up in this state's world; the backlog beyond
        ``queue_capacity`` packets is dropped at the tail.
        """
        service = self._service_ms(size)
        if not service:
            return sender.clock
        busy_until = sender.link_busy.get(link, 0)
        backlog = max(0, busy_until - sender.clock)
        if self.queue_capacity and backlog > self.queue_capacity * service:
            return None
        start = max(sender.clock, busy_until)
        sender.link_busy[link] = start + service
        return start + service

    # -- planning -------------------------------------------------------------

    def _drop(self, src: int, dest: int, reason: str) -> None:
        if self.trace is not None:
            self.trace.emit("net.drop", src=src, dest=dest, reason=reason)

    def plan_unicast(
        self, sender, dest: int, size: int
    ) -> List[Tuple[int, int]]:
        src = sender.node
        clock = sender.clock
        seq = len(sender.history)
        self.unicasts_sent += 1
        path = self.route(src, dest)
        if path is None:
            self.undeliverable += 1
            if self.trace is not None:
                self.trace.emit(
                    "net.unicast", src=src, dest=dest, delivered=False
                )
            return []
        if self.trace is not None:
            self.trace.emit("net.unicast", src=src, dest=dest, delivered=True)
        departure = self._egress(sender, path[1], size)
        if departure is None:
            self.queue_drops += 1
            self._drop(src, dest, "queue")
            return []
        deliver_at = departure
        for hop in range(len(path) - 1):
            if self._lost(src, dest, clock, seq, hop):
                self.lost += 1
                self._drop(path[hop], path[hop + 1], "loss")
                return []
            deliver_at += self.latency_ms + self._jitter(
                src, dest, clock, seq, hop
            )
            self.hops_traversed += 1
        self.delivered += 1
        return [(dest, deliver_at)]

    def plan_broadcast(self, sender, size: int) -> List[Tuple[int, int]]:
        src = sender.node
        clock = sender.clock
        seq = len(sender.history)
        self.broadcasts_sent += 1
        targets = self.topology.neighbors(src)
        if self.trace is not None:
            self.trace.emit("net.broadcast", src=src, targets=len(targets))
        departure = self._egress(sender, _BROADCAST_LINK, size)
        if departure is None:
            self.queue_drops += 1
            self._drop(src, _BROADCAST_LINK, "queue")
            return []
        plans: List[Tuple[int, int]] = []
        for dest in targets:
            if self._lost(src, dest, clock, seq, 0):
                self.lost += 1
                self._drop(src, dest, "loss")
                continue
            deliver_at = (
                departure
                + self.latency_ms
                + self._jitter(src, dest, clock, seq, 0)
            )
            plans.append((dest, deliver_at))
            self.delivered += 1
            self.hops_traversed += 1
        return plans

    # -- primitives (reachability / nominal-delay views) --------------------

    def unicast_targets(self, src: int, dest: int) -> List[int]:
        """Reachability only — counters and draws live in ``plan_unicast``."""
        return [dest] if self.route(src, dest) is not None else []

    def broadcast_targets(self, src: int) -> List[int]:
        return list(self.topology.neighbors(src))

    def delivery_time(self, sent_at: int, **context) -> int:
        """Nominal (loss- and jitter-free) delivery time for the route."""
        src = context.get("src", 0)
        dest = context.get("dest", src)
        path = self.route(src, dest)
        hops = len(path) - 1 if path else 1
        return sent_at + max(1, hops) * self.latency_ms

    # -- reports / reduction ---------------------------------------------------

    def stats_dict(self) -> Dict[str, int]:
        return {
            "unicasts_sent": self.unicasts_sent,
            "broadcasts_sent": self.broadcasts_sent,
            "undeliverable": self.undeliverable,
            "delivered": self.delivered,
            "lost": self.lost,
            "queue_drops": self.queue_drops,
            "hops_traversed": self.hops_traversed,
        }

    def node_symmetric(self) -> bool:
        # Per-link draws and queues key on concrete node ids, which a
        # relabelling permutes; with all three off the medium degenerates
        # to routed constant delays, which automorphisms preserve.
        return not (
            self.loss or self.jitter_ms or self.bandwidth_cells_per_ms
        )

    def __repr__(self) -> str:
        return (
            f"RealisticMedium({self.topology.name},"
            f" latency={self.latency_ms}ms, jitter<={self.jitter_ms}ms,"
            f" loss={self.loss}, bw={self.bandwidth_cells_per_ms}/ms,"
            f" queue={self.queue_capacity}, seed={self.seed})"
        )


register_medium("realistic", RealisticMedium)
