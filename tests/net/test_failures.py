"""Failure model tests: forking, decision variables, budgets, filters."""

from repro.expr import bv, eq, var
from repro.net import (
    Packet,
    SymbolicDuplication,
    SymbolicNodeReboot,
    SymbolicPacketDrop,
)
from repro.net.failures import standard_failure_suite
from repro.vm.state import ExecutionState


def make_state(node=0):
    return ExecutionState(node, memory_size=4)


def make_packet(src=1, dest=0, payload=(9,)):
    return Packet(src, dest, payload, 0)


class TestSymbolicPacketDrop:
    def test_forks_one_twin(self):
        model = SymbolicPacketDrop([0])
        state = make_state()
        plans, forks = model.apply([(state, 1, False)], make_packet())
        assert len(plans) == 2
        assert len(forks) == 1
        (receive, dropped) = plans
        assert receive[0] is state and receive[1] == 1
        assert dropped[1] == 0  # the twin drops

    def test_decision_variable_constraints(self):
        model = SymbolicPacketDrop([0])
        state = make_state()
        plans, _ = model.apply([(state, 1, False)], make_packet())
        receive_state, drop_state = plans[0][0], plans[1][0]
        decision = var("n0.drop", 1)
        assert eq(decision, bv(0, 1)) in receive_state.constraints
        assert eq(decision, bv(1, 1)) in drop_state.constraints

    def test_budget_consumed_on_both_variants(self):
        model = SymbolicPacketDrop([0], budget=1)
        state = make_state()
        plans, _ = model.apply([(state, 1, False)], make_packet())
        for planned_state, _, _ in plans:
            follow_up, forks = model.apply(
                [(planned_state, 1, False)], make_packet()
            )
            assert len(follow_up) == 1 and not forks

    def test_budget_two_allows_second_drop(self):
        model = SymbolicPacketDrop([0], budget=2)
        state = make_state()
        plans, _ = model.apply([(state, 1, False)], make_packet())
        receive_state = plans[0][0]
        second, forks = model.apply(
            [(receive_state, 1, False)], make_packet()
        )
        assert len(second) == 2 and len(forks) == 1
        # The second decision variable has a sequenced name.
        assert receive_state.sym_counters["drop"] == 2

    def test_only_configured_nodes(self):
        model = SymbolicPacketDrop([5])
        state = make_state(node=0)
        plans, forks = model.apply([(state, 1, False)], make_packet())
        assert len(plans) == 1 and not forks

    def test_packet_filter(self):
        model = SymbolicPacketDrop(
            [0], packet_filter=lambda p: p.payload[0] == 0
        )
        state = make_state()
        plans, _ = model.apply([(state, 1, False)], make_packet(payload=(7,)))
        assert len(plans) == 1  # filtered out: no fork
        plans, _ = model.apply([(state, 1, False)], make_packet(payload=(0,)))
        assert len(plans) == 2

    def test_dropped_plans_not_reforked(self):
        model = SymbolicPacketDrop([0])
        state = make_state()
        plans, _ = model.apply([(state, 0, False)], make_packet())
        assert len(plans) == 1  # deliveries == 0 passes through


class TestOtherModels:
    def test_duplication_increments_deliveries(self):
        model = SymbolicDuplication([0])
        state = make_state()
        plans, _ = model.apply([(state, 1, False)], make_packet())
        deliveries = sorted(plan[1] for plan in plans)
        assert deliveries == [1, 2]

    def test_reboot_plan(self):
        model = SymbolicNodeReboot([0])
        state = make_state()
        plans, _ = model.apply([(state, 1, False)], make_packet())
        reboots = [plan for plan in plans if plan[2]]
        assert len(reboots) == 1
        assert reboots[0][1] == 0

    def test_models_chain(self):
        packet = make_packet()
        drop = SymbolicPacketDrop([0])
        dup = SymbolicDuplication([0])
        state = make_state()
        plans, _ = drop.apply([(state, 1, False)], packet)
        plans, _ = dup.apply(plans, packet)
        # receive-path forks again under duplication; drop-path passes.
        assert len(plans) == 3

    def test_standard_suite_composition(self):
        suite = standard_failure_suite([0], dup_nodes=[1], reboot_nodes=[2])
        names = [type(model).__name__ for model in suite]
        assert names == [
            "SymbolicPacketDrop",
            "SymbolicDuplication",
            "SymbolicNodeReboot",
        ]

    def test_distinct_decision_tags(self):
        state = make_state()
        packet = make_packet()
        SymbolicPacketDrop([0]).apply([(state, 1, False)], packet)
        SymbolicDuplication([0]).apply([(state, 1, False)], packet)
        SymbolicNodeReboot([0]).apply([(state, 1, False)], packet)
        assert set(state.sym_counters) == {"drop", "dup", "reboot"}
