"""The Section III-D equal-packet optimization, as a measurement tool.

The paper sketches a further optimization over SDS: "one could, for
example, observe equal packets based on content, time stamp, and constraint
analysis.  If such packets are originating from a sending state and all its
rivals, the state mapping can be safely omitted, further saving
duplicates."  It deliberately leaves this out of SDS proper ("adds
additional complexity ... interception and buffering of a number of
transmitted packets").

We follow the paper in not changing the mapping semantics — packets stay
unique and target forks stay as they are — but implement the *analysis*:
given a finished run, find groups of transmissions that an equal-packet
optimizer could have merged, and from them the number of target forks (and
therefore states) it would have saved.  The ablation benchmark reports
these attainable savings for the paper's scenarios.

A merge group is a set of transmissions that:

- carry identical payloads and identical send timestamps to the same
  destination node (content + time-stamp analysis), and
- originate from same-node sibling states (a sending state and its rivals —
  detected via fork ancestry, the practical stand-in for the paper's
  "constraint analysis").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping

from ..net.packet import Packet
from ..vm.state import ExecutionState

__all__ = ["MergeGroup", "OptimizationReport", "analyze_equal_packets"]


class MergeGroup:
    """Transmissions an equal-packet optimizer could merge into one."""

    __slots__ = ("key", "packet_ids", "sender_sids")

    def __init__(
        self, key: tuple, packet_ids: List[int], sender_sids: List[int]
    ) -> None:
        self.key = key
        self.packet_ids = packet_ids
        self.sender_sids = sender_sids

    def mergeable_transmissions(self) -> int:
        """Transmissions beyond the first; each one's mapping could be
        omitted entirely."""
        return len(self.packet_ids) - 1

    def __repr__(self) -> str:
        return (
            f"MergeGroup({len(self.packet_ids)} equal packets from"
            f" {len(self.sender_sids)} sibling senders)"
        )


class OptimizationReport:
    """Aggregate attainable savings for one finished run."""

    def __init__(
        self,
        groups: List[MergeGroup],
        total_transmissions: int,
        total_mapping_forks: int,
    ) -> None:
        self.groups = groups
        self.total_transmissions = total_transmissions
        self.total_mapping_forks = total_mapping_forks
        self.mergeable_transmissions = sum(
            group.mergeable_transmissions() for group in groups
        )

    def savings_fraction(self) -> float:
        """Fraction of all transmissions whose mapping could be omitted."""
        if not self.total_transmissions:
            return 0.0
        return self.mergeable_transmissions / self.total_transmissions

    def __repr__(self) -> str:
        return (
            f"OptimizationReport({self.mergeable_transmissions}/"
            f"{self.total_transmissions} transmissions mergeable,"
            f" {len(self.groups)} groups)"
        )


def _fork_root(state: ExecutionState, parents: Mapping[int, int]) -> int:
    """Walk fork ancestry to the oldest known ancestor sid."""
    sid = state.sid
    while sid in parents:
        sid = parents[sid]
    return sid


def analyze_equal_packets(
    states: Mapping[int, ExecutionState],
    packets: Mapping[int, Packet],
) -> OptimizationReport:
    """Post-hoc equal-packet analysis of a finished engine run.

    ``states``/``packets`` are the engine's registries
    (``engine.states`` / ``engine.packets``).
    """
    # Fork ancestry: sid -> parent sid (as recorded at fork time).
    parents: Dict[int, int] = {
        state.sid: state.forked_from
        for state in states.values()
        if state.forked_from is not None
    }

    # Which state sent which packet (from the tx histories).
    sender_of: Dict[int, ExecutionState] = {}
    for state in states.values():
        for kind, pid, _peer in state.history:
            if kind == "tx":
                # The *earliest* state in fork order that logged the tx is
                # the actual sender; later forks inherit the history entry.
                current = sender_of.get(pid)
                if current is None or state.sid < current.sid:
                    sender_of[pid] = state

    buckets: Dict[tuple, List[int]] = defaultdict(list)
    for pid, packet in packets.items():
        sender = sender_of.get(pid)
        if sender is None:
            continue
        key = (
            packet.src,
            packet.dest,
            packet.sent_at,
            packet.payload,
            _fork_root(sender, parents),
        )
        buckets[key].append(pid)

    groups: List[MergeGroup] = []
    for key, pids in sorted(buckets.items(), key=lambda kv: kv[1][0]):
        if len(pids) < 2:
            continue
        senders = sorted({sender_of[pid].sid for pid in pids})
        if len(senders) < 2:
            continue  # same state sent twice (e.g. duplication model)
        groups.append(MergeGroup(key, sorted(pids), senders))

    total_transmissions = len(packets)
    total_mapping_forks = sum(1 for s in states.values() if s.forked_from is not None)
    return OptimizationReport(groups, total_transmissions, total_mapping_forks)
