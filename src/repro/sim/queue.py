"""Deterministic priority queue for discrete-event simulation.

A thin wrapper over ``heapq`` that (a) breaks ties by insertion sequence so
identical timestamps pop in FIFO order, and (b) supports lazy invalidation —
entries referring to stale work are skipped at pop time.  Determinism is a
hard requirement here: the dscenario-equivalence tests compare COB/COW/SDS
runs event-by-event, which only works if scheduling order is a pure function
of the scenario.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Generic, List, Optional, Tuple, TypeVar

__all__ = ["EventQueue"]

T = TypeVar("T")


class EventQueue(Generic[T]):
    """A time-ordered queue with FIFO tie-breaking and lazy invalidation."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, T]] = []
        self._sequence = itertools.count()

    def push(self, time: int, item: T) -> None:
        heapq.heappush(self._heap, (time, next(self._sequence), item))

    def pop(
        self,
        is_valid: Optional[Callable[[int, T], bool]] = None,
        max_time: Optional[int] = None,
    ):
        """Pop the earliest valid ``(time, item)``; None when exhausted.

        ``is_valid(time, item)`` filters stale entries (e.g. an execution
        state that died or rescheduled since being enqueued).

        With ``max_time`` set, a valid head entry whose time exceeds it is
        left in place and None is returned — the split-point probe of the
        parallel runner, which must not consume work past the split.
        Invalid heads are still discarded while probing.
        """
        while self._heap:
            time, _, item = self._heap[0]
            if is_valid is not None and not is_valid(time, item):
                heapq.heappop(self._heap)
                continue
            if max_time is not None and time > max_time:
                return None
            heapq.heappop(self._heap)
            return time, item
        return None

    def entries(self) -> List[Tuple[int, int, T]]:
        """All pending ``(time, seq, item)`` entries in heap order.

        Used by the engine's scheduler snapshot; includes stale entries —
        callers filter with the same validity predicate as :meth:`pop`.
        """
        return sorted(self._heap)

    def peek_time(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
