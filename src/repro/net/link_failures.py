"""Symbolic *persistent link* failures.

The paper's failure models are transient (a packet drop) or node-scoped
(reboot).  Real sensornets also lose whole links — a wall, a moved antenna —
after which *every* packet on that link disappears.  This model forks the
receiving state on the first packet over a configured link: in one world the
link works normally forever, in the other it is dead from that moment on and
this plus all later receptions over it are silently lost.

Persistence needs per-state link memory: the decision is recorded in the
state's ``sym_counters`` under a per-link tag (states fork with their
counters, so the knowledge travels with every descendant).  A tag value of
1 means "decision taken, link alive", 2 means "decision taken, link dead".
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..expr import bv, eq, var
from ..vm.state import ExecutionState
from .failures import DeliveryPlan, FailureModel
from .packet import Packet

__all__ = ["SymbolicLinkFailure"]

_ALIVE = 1
_DEAD = 2


class SymbolicLinkFailure(FailureModel):
    """Fork once per configured link; the dead branch loses all traffic."""

    tag = "linkdown"

    def __init__(self, links: Iterable[Tuple[int, int]]) -> None:
        """``links``: directed (src, dst) pairs that may fail."""
        self.links = frozenset(links)
        super().__init__(nodes={dst for _src, dst in self.links})
        self.packet_filter = None

    def _link_tag(self, packet: Packet) -> str:
        return f"{self.tag}_{packet.src}"

    def apply(self, plans: List[DeliveryPlan], packet: Packet):
        out: List[DeliveryPlan] = []
        forks: List[Tuple[ExecutionState, ExecutionState]] = []
        link = (packet.src, packet.dest)
        for state, deliveries, reboot in plans:
            if reboot or deliveries == 0 or link not in self.links:
                out.append((state, deliveries, reboot))
                continue
            tag = self._link_tag(packet)
            verdict = state.sym_counters.get(tag, 0)
            if verdict == _DEAD:
                out.append((state, 0, False))  # link is gone: silent loss
                continue
            if verdict == _ALIVE:
                out.append((state, deliveries, reboot))
                continue
            # First packet over this link: take the decision now.
            name = f"n{state.node}.{tag}"
            decision = var(name, 1)
            twin = state.fork()
            state.sym_counters[tag] = _ALIVE
            twin.sym_counters[tag] = _DEAD
            state.symbolics.append((name, 1))
            twin.symbolics.append((name, 1))
            state.add_constraint(eq(decision, bv(0, 1)))
            twin.add_constraint(eq(decision, bv(1, 1)))
            forks.append((state, twin))
            out.append((state, deliveries, reboot))
            out.append((twin, 0, False))
        return out, forks
