"""Measured parallel speedup vs the LPT projection (Section VI realized).

``bench_partition.py`` reports the *ideal* speedup the partition
decomposition allows; this benchmark actually runs the partitions on
worker processes via :class:`repro.core.parallel.ParallelRunner` and
compares measured wall-clock speedup against
:func:`~repro.core.partition.projected_speedup`.

Configuration: the paper's 5x5 grid collection scenario under COW with a
drop budget of 2 — heavy enough (~seconds of sequential work, >100
independent partitions) that process spawn + snapshot shipping amortizes.
The split point at 3000 ms leaves ~94% of the events to the parallel
phase, so with 2 workers Amdahl caps the speedup just below x2.

The >1.2x wall-clock assertion only applies when the machine actually
has 2+ cores available to this process (cgroup-capped CI boxes often
expose one); on a single core the workers timeshare it, so the benchmark
instead asserts the overhead bound (parallel wall-clock within 40% of
sequential) and still records measured vs projected speedup.
"""

import os
import time

import pytest

from repro.api import ParallelRunner, build_engine
from repro.workloads import grid_scenario


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _heavy_grid():
    return grid_scenario(5, sim_seconds=10, drop_budget=2)


SPLIT_MS = 3000


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_speedup_grid5_cow(once, benchmark, workers):
    def measure():
        t0 = time.perf_counter()
        sequential = build_engine(_heavy_grid(), "cow").run()
        sequential_s = time.perf_counter() - t0

        t1 = time.perf_counter()
        parallel = ParallelRunner(
            _heavy_grid(), "cow", workers=workers, split_ms=SPLIT_MS
        ).run()
        parallel_s = time.perf_counter() - t1
        return sequential, sequential_s, parallel, parallel_s

    sequential, sequential_s, parallel, parallel_s = once(measure)

    # The merged report must be exactly the sequential run's.  Both sides
    # are read from the metrics snapshot (the contract `--metrics-out`
    # writes), not from mapper or report internals.
    seq_counters = sequential.metrics["counters"]
    par_counters = parallel.metrics["counters"]
    for name in ("states.total", "mapping.groups", "run.events_executed"):
        assert par_counters[name] == seq_counters[name], (
            name,
            seq_counters[name],
            par_counters[name],
        )

    cores = _available_cores()
    speedup = sequential_s / max(parallel_s, 1e-9)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["sequential_s"] = round(sequential_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["projected_speedup"] = parallel.metrics["gauges"][
        "parallel.projected_speedup"
    ]
    benchmark.extra_info["partitions"] = par_counters["parallel.partitions"]
    benchmark.extra_info["prefix_events"] = par_counters["parallel.prefix_events"]
    if workers == 2 and cores >= 2:
        # The acceptance bar: real wall-clock win, not just a projection.
        assert speedup > 1.2, (
            f"parallel run too slow: {sequential_s:.2f}s sequential vs"
            f" {parallel_s:.2f}s on {workers} workers (x{speedup:.2f})"
        )
    elif cores < 2:
        # One core: workers timeshare it, so no wall-clock win is possible.
        # What we *can* assert is that the machinery adds bounded overhead
        # (prefix replay + snapshot shipping + process management).
        assert speedup > 1.0 / 1.4, (
            f"parallel overhead too high on a single core:"
            f" {sequential_s:.2f}s sequential vs {parallel_s:.2f}s"
            f" on {workers} workers (x{speedup:.2f})"
        )
    assert parallel.projected >= 1.0
