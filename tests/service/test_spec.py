"""Submission validation and content addressing (repro.service.spec)."""

import pytest

from repro.service.spec import (
    CONFIG_FIELD_ALLOWLIST,
    SpecError,
    SubmissionSpec,
)


def spec_dict(**overrides):
    base = {"workload": "flood", "size": 3}
    base.update(overrides)
    return base


class TestValidation:
    def test_minimal_spec_fills_defaults(self):
        spec = SubmissionSpec.from_dict(spec_dict())
        assert spec.algorithm == "sds"
        assert spec.seed == 0
        assert spec.workload_args == {}
        assert spec.config == {}

    def test_non_object_body_rejected(self):
        for body in (None, 7, "x", ["flood"]):
            with pytest.raises(SpecError):
                SubmissionSpec.from_dict(body)

    def test_unknown_fields_rejected(self):
        with pytest.raises(SpecError, match="unknown submission field"):
            SubmissionSpec.from_dict(spec_dict(checkpoint_path="/tmp/x"))

    def test_bad_scalar_types_rejected(self):
        with pytest.raises(SpecError):
            SubmissionSpec.from_dict(spec_dict(size=0))
        with pytest.raises(SpecError):
            SubmissionSpec.from_dict(spec_dict(size=True))
        with pytest.raises(SpecError):
            SubmissionSpec.from_dict(spec_dict(seed="7"))
        with pytest.raises(SpecError):
            SubmissionSpec.from_dict(spec_dict(workload=""))

    def test_config_allowlist_enforced(self):
        # checkpoint placement belongs to the service, not submissions
        with pytest.raises(SpecError, match="not submittable"):
            SubmissionSpec.from_dict(
                spec_dict(config={"checkpoint_path": "/tmp/evil"})
            )
        spec = SubmissionSpec.from_dict(
            spec_dict(config={"max_states": 100, "symmetry": True})
        )
        assert spec.engine_overrides() == {"max_states": 100, "symmetry": True}

    def test_allowlist_names_are_real_config_fields(self):
        from repro.core.config import ENGINE_CONFIG_FIELDS

        assert CONFIG_FIELD_ALLOWLIST <= ENGINE_CONFIG_FIELDS

    def test_deep_json_rejected(self):
        with pytest.raises(SpecError):
            SubmissionSpec.from_dict(
                spec_dict(workload_args={"a": {"b": {"c": 1}}})
            )

    def test_registry_validation(self):
        with pytest.raises(SpecError, match="unknown workload"):
            SubmissionSpec.from_dict(
                spec_dict(workload="nope")
            ).validated_against_registries()
        with pytest.raises(SpecError, match="unknown algorithm"):
            SubmissionSpec.from_dict(
                spec_dict(algorithm="nope")
            ).validated_against_registries()
        SubmissionSpec.from_dict(spec_dict()).validated_against_registries()


class TestDigest:
    def test_digest_is_deterministic_and_order_free(self):
        a = SubmissionSpec.from_dict(
            spec_dict(config={"symmetry": True, "max_states": 5})
        )
        b = SubmissionSpec.from_dict(
            spec_dict(config={"max_states": 5, "symmetry": True})
        )
        assert a.digest() == b.digest()
        assert len(a.digest()) == 64

    def test_every_field_feeds_the_digest(self):
        base = SubmissionSpec.from_dict(spec_dict()).digest()
        variants = [
            spec_dict(size=4),
            spec_dict(workload="line"),
            spec_dict(algorithm="cow"),
            spec_dict(seed=1),
            spec_dict(workload_args={"rounds": 3}),
            spec_dict(config={"max_states": 10}),
        ]
        digests = {SubmissionSpec.from_dict(v).digest() for v in variants}
        assert base not in digests
        assert len(digests) == len(variants)

    def test_round_trips_through_as_dict(self):
        spec = SubmissionSpec.from_dict(
            spec_dict(workload_args={"rounds": 3}, config={"por": True})
        )
        again = SubmissionSpec.from_dict(spec.as_dict())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_scenario_materializes(self):
        scenario = SubmissionSpec.from_dict(spec_dict()).build_scenario()
        assert scenario.name == "flood-3"


class TestMediumFields:
    def test_medium_and_params_accepted(self):
        spec = SubmissionSpec.from_dict(
            spec_dict(
                config={
                    "medium": "realistic",
                    "medium_params": {"loss": 0.1, "seed": 3},
                }
            )
        )
        assert spec.validated_against_registries() is spec

    def test_unknown_medium_rejected_at_registry_check(self):
        spec = SubmissionSpec.from_dict(
            spec_dict(config={"medium": "carrier-pigeon"})
        )
        with pytest.raises(SpecError, match="unknown medium"):
            spec.validated_against_registries()

    def test_non_string_medium_rejected(self):
        with pytest.raises(SpecError, match="must be a string"):
            SubmissionSpec.from_dict(spec_dict(config={"medium": 3}))

    def test_string_medium_params_rejected(self):
        # Strings are how a path would be smuggled to a constructor.
        with pytest.raises(SpecError, match="path- or string-typed"):
            SubmissionSpec.from_dict(
                spec_dict(
                    config={"medium_params": {"seed": "/etc/passwd"}}
                )
            )

    def test_bool_medium_params_rejected(self):
        with pytest.raises(SpecError, match="must be a number"):
            SubmissionSpec.from_dict(
                spec_dict(config={"medium_params": {"loss": True}})
            )

    def test_non_object_medium_params_rejected(self):
        with pytest.raises(SpecError, match="must be an object"):
            SubmissionSpec.from_dict(
                spec_dict(config={"medium_params": 5})
            )
