"""Interval domain unit tests + hypothesis soundness property."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import (
    Interval,
    add,
    ashr,
    bv,
    bvand,
    bvnot,
    bvor,
    bvxor,
    concat,
    evaluate,
    extract,
    interval_eval,
    ite,
    lshr,
    mask,
    mul,
    neg,
    sdiv,
    sext,
    shl,
    srem,
    sub,
    udiv,
    ult,
    urem,
    var,
    zext,
)

X = var("x")
Y = var("y")


class TestIntervalBasics:
    def test_empty(self):
        assert Interval.empty().is_empty()
        assert Interval(5, 4).is_empty()
        assert not Interval(5, 5).is_empty()

    def test_singleton(self):
        assert Interval.of(7).is_singleton()
        assert Interval(3, 4).is_singleton() is False

    def test_contains(self):
        i = Interval(10, 20)
        assert 10 in i and 20 in i and 15 in i
        assert 9 not in i and 21 not in i

    def test_size(self):
        assert Interval(0, 0).size() == 1
        assert Interval(0, 9).size() == 10
        assert Interval.empty().size() == 0

    def test_meet(self):
        assert Interval(0, 10).meet(Interval(5, 20)) == Interval(5, 10)
        assert Interval(0, 4).meet(Interval(5, 9)).is_empty()

    def test_join(self):
        assert Interval(0, 4).join(Interval(8, 9)) == Interval(0, 9)
        assert Interval.empty().join(Interval(1, 2)) == Interval(1, 2)

    def test_top(self):
        assert Interval.top(8) == Interval(0, 255)

    def test_equality_of_empties(self):
        assert Interval(5, 4) == Interval(100, 2)


class TestForwardEval:
    def test_const(self):
        assert interval_eval(bv(42), {}) == Interval.of(42)

    def test_unbound_var_is_top(self):
        assert interval_eval(var("fresh_iv", 8), {}) == Interval(0, 255)

    def test_bound_var(self):
        assert interval_eval(X, {X: Interval(3, 9)}) == Interval(3, 9)

    def test_add_no_wrap(self):
        doms = {X: Interval(10, 20), Y: Interval(1, 2)}
        assert interval_eval(add(X, Y), doms) == Interval(11, 22)

    def test_add_wrap_gives_top(self):
        doms = {X: Interval(0, mask(32))}
        assert interval_eval(add(X, bv(1)), doms) == Interval.top(32)

    def test_sub_no_wrap(self):
        doms = {X: Interval(10, 20), Y: Interval(1, 5)}
        assert interval_eval(sub(X, Y), doms) == Interval(5, 19)

    def test_mul(self):
        doms = {X: Interval(2, 3)}
        assert interval_eval(mul(X, bv(10)), doms) == Interval(20, 30)

    def test_udiv(self):
        doms = {X: Interval(10, 20)}
        assert interval_eval(udiv(X, bv(2)), doms) == Interval(5, 10)

    def test_bvand_bound(self):
        doms = {X: Interval(0, 0xFF)}
        result = interval_eval(bvand(X, bv(0x0F)), doms)
        assert result.lo == 0 and result.hi <= 0x0F

    def test_ite_joins(self):
        e = ite(ult(X, bv(5)), bv(1), bv(10))
        assert interval_eval(e, {}) == Interval(1, 10)

    def test_zext_preserves(self):
        b = var("b", 8)
        assert interval_eval(zext(b, 32), {b: Interval(3, 7)}) == Interval(3, 7)

    def test_concat(self):
        h, l = var("h", 8), var("l", 8)
        doms = {h: Interval.of(0xAB), l: Interval(0, 255)}
        assert interval_eval(concat(h, l), doms) == Interval(0xAB00, 0xABFF)


_ALL_OPS = [
    add,
    sub,
    mul,
    udiv,
    urem,
    sdiv,
    srem,
    bvand,
    bvor,
    bvxor,
    shl,
    lshr,
    ashr,
]


class TestForwardSoundness:
    """The forward interval of an expression contains its concrete value for
    every assignment drawn from the variable intervals — the property the
    solver's completeness rests on."""

    @settings(max_examples=400)
    @given(
        st.sampled_from(_ALL_OPS),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_binary_ops_sound(self, fn, alo, ahi, blo, bhi, aval, bval):
        a = var("a8", 8)
        b = var("b8", 8)
        alo, ahi = min(alo, ahi), max(alo, ahi)
        blo, bhi = min(blo, bhi), max(blo, bhi)
        aval = alo + aval % (ahi - alo + 1)
        bval = blo + bval % (bhi - blo + 1)
        doms = {a: Interval(alo, ahi), b: Interval(blo, bhi)}
        expr = fn(a, b)
        itv = interval_eval(expr, doms)
        concrete = evaluate(expr, {"a8": aval, "b8": bval})
        assert concrete in itv

    @settings(max_examples=200)
    @given(
        st.sampled_from([neg, bvnot]),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_unary_ops_sound(self, fn, lo, hi, val):
        a = var("a8", 8)
        lo, hi = min(lo, hi), max(lo, hi)
        val = lo + val % (hi - lo + 1)
        itv = interval_eval(fn(a), {a: Interval(lo, hi)})
        assert evaluate(fn(a), {"a8": val}) in itv

    @settings(max_examples=200)
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_extend_extract_sound(self, lo, hi, val):
        a = var("a8", 8)
        lo, hi = min(lo, hi), max(lo, hi)
        val = lo + val % (hi - lo + 1)
        doms = {a: Interval(lo, hi)}
        env = {"a8": val}
        for expr in (
            zext(a, 32),
            sext(a, 32),
            extract(a, 2, 4),
            concat(a, bv(0x5, 4)),
        ):
            assert evaluate(expr, env) in interval_eval(expr, doms)
