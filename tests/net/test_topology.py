"""Topology constructors, routing and role classification."""

import pytest

from repro.net import Topology


class TestConstructors:
    def test_line(self):
        topo = Topology.line(4)
        assert topo.node_count == 4
        assert topo.neighbors(0) == (1,)
        assert topo.neighbors(1) == (0, 2)
        assert topo.neighbors(3) == (2,)

    def test_grid_degrees(self):
        topo = Topology.grid(3)
        assert topo.node_count == 9
        assert topo.neighbors(4) == (1, 3, 5, 7)  # center
        assert topo.neighbors(0) == (1, 3)        # corner
        assert topo.neighbors(1) == (0, 2, 4)     # edge

    def test_grid_rectangular(self):
        topo = Topology.grid(4, 2)
        assert topo.node_count == 8
        assert topo.are_neighbors(0, 4)
        assert not topo.are_neighbors(3, 4)  # row wrap is not an edge

    def test_paper_grid_sizes(self):
        for side, nodes in ((5, 25), (7, 49), (10, 100)):
            assert Topology.grid(side).node_count == nodes

    def test_ring(self):
        topo = Topology.ring(5)
        assert topo.name == "ring-5"
        assert topo.node_count == 5
        assert topo.neighbors(0) == (1, 4)  # the wrap-around edge
        assert topo.neighbors(2) == (1, 3)
        assert topo.diameter() == 2

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            Topology.ring(2)

    def test_star(self):
        topo = Topology.star(5)
        assert topo.neighbors(0) == (1, 2, 3, 4)
        assert topo.neighbors(3) == (0,)

    def test_full_mesh(self):
        topo = Topology.full_mesh(4)
        for node in topo.nodes():
            assert len(topo.neighbors(node)) == 3

    def test_random_connected(self):
        topo = Topology.random_connected(10, degree=3, seed=1)
        assert topo.node_count == 10
        import networkx as nx

        assert nx.is_connected(topo.graph)

    def test_single_node(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_node(0)
        topo = Topology(graph)
        assert topo.node_count == 1

    def test_bad_labels_rejected(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge(1, 2)  # missing node 0
        with pytest.raises(ValueError):
            Topology(graph)


class TestRouting:
    def test_line_route(self):
        topo = Topology.line(5)
        assert topo.route(0, 4) == [0, 1, 2, 3, 4]

    def test_next_hop_table_is_deterministic(self):
        topo = Topology.grid(5)
        assert topo.next_hop_table(0) == topo.next_hop_table(0)

    def test_next_hop_points_toward_sink(self):
        topo = Topology.grid(4)
        table = topo.next_hop_table(0)
        for node in topo.nodes():
            if node == 0:
                continue
            hop = table[node]
            assert topo.are_neighbors(node, hop)
            assert len(topo.shortest_path(hop, 0)) < len(
                topo.shortest_path(node, 0)
            )

    def test_route_length_matches_shortest_path(self):
        topo = Topology.grid(10)
        route = topo.route(99, 0)
        assert len(route) == len(topo.shortest_path(99, 0))
        assert len(route) == 19  # 18 hops corner to corner

    def test_sink_routes_to_itself(self):
        assert Topology.line(3).next_hop_table(2)[2] == 2


class TestPathRoles:
    def test_figure9_bystander_count(self):
        """The paper's Figure 9: in the 5x5 grid with the preconfigured
        corner-to-corner path, six nodes are bystanders (gray shaded)."""
        topo = Topology.grid(5)
        on_path, neighbors, bystanders = topo.path_roles(24, 0)
        assert len(on_path) == 9  # 8 hops + both endpoints
        # Exact counts depend on the deterministic route shape; the paper's
        # figure shows 6 bystanders for its drawn path.
        assert len(bystanders) > 0
        assert len(on_path) + len(neighbors) + len(bystanders) == 25

    def test_roles_are_disjoint(self):
        topo = Topology.grid(4)
        on_path, neighbors, bystanders = topo.path_roles(15, 0)
        assert not (on_path & neighbors)
        assert not (on_path & bystanders)
        assert not (neighbors & bystanders)

    def test_line_has_no_bystanders(self):
        topo = Topology.line(6)
        on_path, neighbors, bystanders = topo.path_roles(0, 5)
        assert len(on_path) == 6
        assert not neighbors and not bystanders
