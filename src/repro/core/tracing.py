"""ASCII rendering of SDE structures, in the spirit of the paper's figures.

Figures 3-8 of the paper draw dscenarios/dstates as boxes of per-node state
rows; these helpers produce the same pictures as text, which the examples
print and which make engine-state dumps actually readable when debugging a
mapping algorithm.

Example output for a 3-node COW run after a conflicted transmission::

    dstate #1              dstate #2
    node 0 | s3            node 0 | s7*
    node 1 | s4 s5         node 1 | s2
    node 2 | s6            node 2 | s8*

(* marks states created by the mapping phase, as in Figure 4's gray block.)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from ..vm.state import ExecutionState, Status
from .mapping import StateMapper
from .sds import SDSMapper

__all__ = ["render_groups", "render_state", "render_virtual_structure"]

_STATUS_MARK = {
    Status.ERROR: "!",
    Status.INFEASIBLE: "~",
    Status.TERMINATED: ".",
}


def _label(state: ExecutionState, mapped_born: bool = False) -> str:
    mark = _STATUS_MARK.get(state.status, "")
    star = "*" if mapped_born else ""
    return f"s{state.sid}{mark}{star}"


def render_groups(
    mapper: StateMapper,
    max_groups: int = 8,
    mapped_sids: Optional[Iterable[int]] = None,
) -> str:
    """Draw each dscenario/dstate as a node->states box, side by side."""
    mapped = set(mapped_sids or ())
    boxes: List[List[str]] = []
    groups = list(mapper.groups())
    shown = groups[:max_groups]
    for index, group in enumerate(shown):
        lines = [f"{'dscenario' if mapper.name == 'cob' else 'dstate'} #{index + 1}"]
        for node in sorted(group):
            row = " ".join(_label(state, state.sid in mapped) for state in group[node])
            lines.append(f"node {node} | {row}")
        boxes.append(lines)
    if len(groups) > max_groups:
        boxes.append([f"... {len(groups) - max_groups} more"])

    height = max((len(box) for box in boxes), default=0)
    widths = [max(len(line) for line in box) for box in boxes]
    out_lines = []
    for row_index in range(height):
        cells = []
        for box, width in zip(boxes, widths):
            text = box[row_index] if row_index < len(box) else ""
            cells.append(text.ljust(width))
        out_lines.append("   ".join(cells).rstrip())
    return "\n".join(out_lines)


def render_virtual_structure(mapper: SDSMapper, max_groups: int = 8) -> str:
    """SDS-specific view: virtual states with their actual-state bindings,
    drawing the dashed-line sharing of Figure 8 as shared labels."""
    lines: List[str] = []
    share_count: Dict[int, int] = {}
    for dstate in mapper.dstates():
        for virtual in dstate.virtuals():
            share_count[virtual.actual.sid] = (
                share_count.get(virtual.actual.sid, 0) + 1
            )
    for index, dstate in enumerate(mapper.dstates()[:max_groups]):
        lines.append(f"dstate #{index + 1}")
        for node in sorted(dstate.members):
            row = []
            for virtual in dstate.members[node]:
                shared = share_count[virtual.actual.sid] > 1
                row.append(
                    f"v{virtual.vid}->s{virtual.actual.sid}"
                    + ("~" if shared else "")
                )
            lines.append(f"  node {node} | {' '.join(row)}")
    total = len(mapper.dstates())
    if total > max_groups:
        lines.append(f"... {total - max_groups} more dstates")
    lines.append("(~ marks virtual states of an execution state in superposition)")
    return "\n".join(lines)


def render_state(
    state: ExecutionState,
    globals_layout: Optional[Mapping[str, tuple]] = None,
) -> str:
    """One-state dump: identity, clock, constraints, history, key globals."""
    from ..expr import pretty

    lines = [
        f"state s{state.sid} (node {state.node}, {state.status},"
        f" t={state.clock}ms)"
    ]
    if state.error is not None:
        lines.append(f"  error : {state.error!r}")
    if state.constraints:
        lines.append("  path  : " + " && ".join(pretty(c) for c in state.constraints))
    if state.history:
        rendered = ", ".join(
            f"{kind}#{pid}{'->' if kind == 'tx' else '<-'}n{peer}"
            for kind, pid, peer in state.history
        )
        lines.append(f"  comms : {rendered}")
    if state.events:
        pending = ", ".join(
            f"{event.kind}@{event.time}ms" for event in state.events[:6]
        )
        lines.append(f"  queue : {pending}")
    if globals_layout:
        cells = []
        for name, (address, size) in sorted(globals_layout.items()):
            if size == 1:
                cells.append(f"{name}={state.memory[address]}")
        if cells:
            lines.append("  mem   : " + " ".join(cells[:10]))
    return "\n".join(lines)
