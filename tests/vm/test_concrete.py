"""VM tests with fully concrete programs (no forking)."""

import pytest

from repro.lang import compile_source
from repro.vm import Executor, Status


def run(source, entry="main", args=(), node=0):
    """Compile, run one event, return (states, executor)."""
    program = compile_source(source)
    executor = Executor(program)
    state = executor.make_initial_state(node)
    states = executor.run_event(state, entry, args)
    return states, executor


def run_single(source, entry="main", args=()):
    states, _ = run(source, entry, args)
    assert len(states) == 1, states
    return states[0]


def global_value(state, program_source, name):
    from repro.lang import compile_source as cs

    return state.memory[cs(program_source).global_address(name)]


class TestStraightLine:
    def test_arithmetic(self):
        src = "var r; func main() { r = 2 + 3 * 4 - 1; }"
        state = run_single(src)
        assert global_value(state, src, "r") == 13

    def test_signed_division(self):
        src = "var q; var m; func main() { q = -7 / 2; m = -7 % 2; }"
        state = run_single(src)
        assert global_value(state, src, "q") == 0xFFFFFFFD  # -3
        assert global_value(state, src, "m") == 0xFFFFFFFF  # -1

    def test_bitwise_and_shifts(self):
        src = """
        var a; var b; var c;
        func main() {
            a = 0xF0 & 0x3C;
            b = 1 << 10;
            c = -16 >> 2;
        }
        """
        state = run_single(src)
        assert global_value(state, src, "a") == 0x30
        assert global_value(state, src, "b") == 1024
        assert global_value(state, src, "c") == 0xFFFFFFFC  # -4, arithmetic

    def test_wrapping(self):
        src = "var r; func main() { r = 0x7fffffff + 1; }"
        state = run_single(src)
        assert global_value(state, src, "r") == 0x80000000

    def test_global_initializers(self):
        src = "var a = 7; var b; func main() { b = a; }"
        state = run_single(src)
        assert global_value(state, src, "b") == 7


class TestControlFlow:
    def test_if_else(self):
        src = """
        var r;
        func main(x) {
            if (x > 10) { r = 1; } else { r = 2; }
        }
        """
        assert global_value(run_single(src, args=[20]), src, "r") == 1
        assert global_value(run_single(src, args=[5]), src, "r") == 2

    def test_signed_comparison_in_branch(self):
        src = "var r; func main(x) { if (x < 0) { r = 1; } }"
        minus_one = 0xFFFFFFFF
        assert global_value(run_single(src, args=[minus_one]), src, "r") == 1

    def test_while_loop(self):
        src = """
        var total;
        func main() {
            var i = 0;
            while (i < 5) { total += i; i += 1; }
        }
        """
        assert global_value(run_single(src), src, "total") == 10

    def test_for_loop_with_break_continue(self):
        src = """
        var total;
        func main() {
            for (var i = 0; i < 10; i += 1) {
                if (i == 3) { continue; }
                if (i == 6) { break; }
                total += i;
            }
        }
        """
        # 0+1+2+4+5 = 12
        assert global_value(run_single(src), src, "total") == 12

    def test_short_circuit_evaluation(self):
        src = """
        var calls;
        func side() { calls += 1; return 1; }
        func main(x) {
            var a = x && side();
            var b = x || side();
        }
        """
        state = run_single(src, args=[0])
        # x=0: && short-circuits (no call), || evaluates side once.
        assert global_value(state, src, "calls") == 1

    def test_ternary(self):
        src = "var r; func main(x) { r = x ? 10 : 20; }"
        assert global_value(run_single(src, args=[1]), src, "r") == 10
        assert global_value(run_single(src, args=[0]), src, "r") == 20


class TestFunctions:
    def test_call_and_return(self):
        src = """
        var r;
        func addmul(a, b, c) { return a + b * c; }
        func main() { r = addmul(1, 2, 3); }
        """
        assert global_value(run_single(src), src, "r") == 7

    def test_nested_calls(self):
        src = """
        var r;
        func inc(x) { return x + 1; }
        func twice(x) { return inc(inc(x)); }
        func main() { r = twice(5); }
        """
        assert global_value(run_single(src), src, "r") == 7

    def test_void_return_yields_zero(self):
        src = """
        var r;
        func nothing() { return; }
        func main() { r = nothing() + 5; }
        """
        assert global_value(run_single(src), src, "r") == 5

    def test_handler_args(self):
        src = "var r; func on_timer(tid) { r = tid * 2; }"
        state = run_single(src, entry="on_timer", args=[21])
        assert global_value(state, src, "r") == 42

    def test_missing_entry_raises(self):
        program = compile_source("func main() { }")
        executor = Executor(program)
        state = executor.make_initial_state()
        with pytest.raises(KeyError):
            executor.run_event(state, "no_such_handler")


class TestArrays:
    def test_store_load(self):
        src = """
        var a[4]; var r;
        func main() {
            a[0] = 10; a[3] = 40;
            r = a[0] + a[3];
        }
        """
        assert global_value(run_single(src), src, "r") == 50

    def test_loop_fill(self):
        src = """
        var a[8]; var r;
        func main() {
            for (var i = 0; i < 8; i += 1) { a[i] = i * i; }
            r = a[7];
        }
        """
        assert global_value(run_single(src), src, "r") == 49

    def test_compound_element_assign(self):
        src = "var a[2]; var r; func main() { a[1] = 5; a[1] += 3; r = a[1]; }"
        assert global_value(run_single(src), src, "r") == 8

    def test_peek_poke_via_decay(self):
        src = """
        var buf[4]; var r;
        func main() {
            poke(buf + 2, 99);
            r = peek(buf + 2) + buf[2];
        }
        """
        assert global_value(run_single(src), src, "r") == 198


class TestBuiltins:
    def test_min_max_abs(self):
        src = """
        var a; var b; var c;
        func main() {
            a = min(3, -5);
            b = max(3, -5);
            c = abs(-5);
        }
        """
        state = run_single(src)
        assert global_value(state, src, "a") == 0xFFFFFFFB  # -5
        assert global_value(state, src, "b") == 3
        assert global_value(state, src, "c") == 5

    def test_lshr_vs_ashr(self):
        src = "var a; var b; func main() { a = lshr(-4, 1); b = -4 >> 1; }"
        state = run_single(src)
        assert global_value(state, src, "a") == 0x7FFFFFFE
        assert global_value(state, src, "b") == 0xFFFFFFFE

    def test_log_records_trace(self):
        src = "func main() { log(1, 2); log(3); }"
        state = run_single(src)
        assert state.trace == ((1, 2), (3,))

    def test_node_id(self):
        src = "var r; func main() { r = node_id(); }"
        states, _ = run(src, node=7)
        assert global_value(states[0], src, "r") == 7


class TestEventCompletion:
    def test_state_idle_after_event(self):
        state = run_single("func main() { }")
        assert state.status == Status.IDLE
        assert state.call_stack == []
        assert state.opstack == []

    def test_steps_counted(self):
        state = run_single("func main() { var x = 1 + 2; }")
        assert state.steps > 0

    def test_step_limit(self):
        program = compile_source("func main() { while (1) { } }")
        executor = Executor(program, max_steps_per_event=1000)
        state = executor.make_initial_state()
        states = executor.run_event(state, "main")
        assert len(states) == 1
        assert states[0].status == Status.ERROR
        assert "step" in states[0].error.kind
