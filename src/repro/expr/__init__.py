"""Symbolic expression layer: fixed-width bitvector + boolean DAG.

Public surface:

- node classes and sort helpers from :mod:`repro.expr.ast`
- smart constructors from :mod:`repro.expr.builder` (the sanctioned way to
  build expressions)
- :func:`repro.expr.evaluate.evaluate` for concrete evaluation
- :class:`repro.expr.interval.Interval` and forward interval evaluation
- pretty/SMT-LIB printers
"""

from .ast import (  # noqa: F401
    BV_BINARY_OPS,
    BV_UNARY_OPS,
    CMP_OPS,
    BoolAnd,
    BoolConst,
    BoolExpr,
    BoolNot,
    BoolOr,
    BVBinary,
    BVConcat,
    BVConst,
    BVExpr,
    BVExtend,
    BVExtract,
    BVIte,
    BVUnary,
    BVVar,
    Cmp,
    Expr,
    clear_intern_cache,
    intern_stats,
    mask,
    to_signed,
    to_unsigned,
)
from .builder import (  # noqa: F401
    add,
    and_,
    as_bv,
    ashr,
    bool_const,
    bv,
    bvand,
    bvnot,
    bvor,
    bvxor,
    concat,
    eq,
    extract,
    false,
    implies,
    ite,
    lshr,
    mul,
    ne,
    neg,
    not_,
    or_,
    sdiv,
    sext,
    sge,
    sgt,
    shl,
    sle,
    slt,
    srem,
    sub,
    true,
    truncate,
    udiv,
    uge,
    ugt,
    ule,
    ult,
    urem,
    var,
    zext,
)
from .evaluate import EvalError, evaluate  # noqa: F401
from .interval import (  # noqa: F401
    Interval,
    cmp_verdict,
    cond_verdict,
    interval_eval,
    signed_extrema,
)
from .printer import pretty, smtlib_script, to_smtlib  # noqa: F401
