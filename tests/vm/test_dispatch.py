"""Interpreter dispatch: pre-decoding, superinstruction fusion, and
threaded-vs-baseline bit-identity.

The threaded interpreter (handler table + superinstructions) must be an
implementation detail: identical final memory, identical instruction
counts, identical visited-pc coverage, identical forks and path
constraints.  Fusion is slot-preserving — a fused instruction occupies
the first constituent's slot and the remaining slots keep the original
decoded instructions — so jumps into the middle of a former pair still
land on real code, and a pc that *is* a jump target is never swallowed.
"""

import pickle

from repro.expr import evaluate
from repro.lang import compile_source
from repro.lang.bytecode import Op, find_back_edges
from repro.solver import Solver
from repro.vm import Executor, Status

COUNT_LOOP = """
var acc;
func main(n) {
    var i = 0;
    while (i < n) {
        acc = (acc + i) ^ (i << 3);
        i += 1;
    }
}
"""

SYMBOLIC_BRANCHES = """
var path;
func main() {
    var x = symbolic("x");
    if (x == 0) { path = 1; }
    else {
        if (x < 50) {
            if (x > 10) { path = 2; } else { path = 3; }
        } else { path = 4; }
    }
}
"""


def _run(source, entry="main", args=(), **executor_kwargs):
    program = compile_source(source)
    executor = Executor(program, Solver(), **executor_kwargs)
    state = executor.make_initial_state(0)
    states = executor.run_event(state, entry, args)
    return states, executor, program


def _superops(decoded):
    return {op for op, _, _ in decoded.code if op >= int(Op.LOAD_LOAD)}


class TestDecoding:
    def test_slot_preserving(self):
        program = compile_source(COUNT_LOOP)
        decoded = program.decoded(fuse=True)
        assert len(decoded.code) == len(program.code)

    def test_fusion_finds_pairs_in_hot_loop(self):
        program = compile_source(COUNT_LOOP)
        decoded = program.decoded(fuse=True)
        assert decoded.fused > 0
        # The loop compare feeds a conditional jump: a CMP_JZ/CMP_JNZ
        # superinstruction must appear.
        assert _superops(decoded) & {int(Op.CMP_JZ), int(Op.CMP_JNZ)}

    def test_fuse_off_emits_base_isa_only(self):
        program = compile_source(COUNT_LOOP)
        decoded = program.decoded(fuse=False)
        assert decoded.fused == 0
        assert not _superops(decoded)

    def test_jump_targets_never_swallowed(self):
        program = compile_source(COUNT_LOOP)
        decoded = program.decoded(fuse=True)
        for target in decoded.jump_targets:
            op, _, _ = decoded.code[target]
            # A jump target must hold a real instruction boundary: either
            # an unfused base op, or the *start* of a superinstruction —
            # never be hidden inside one.  Slot preservation guarantees
            # the slot still holds the original op when its predecessor
            # fused past it, so every target's op is executable as-is.
            assert op in {int(o) for o in Op}

    def test_decode_is_cached_per_fuse_mode(self):
        program = compile_source(COUNT_LOOP)
        assert program.decoded(fuse=True) is program.decoded(fuse=True)
        assert program.decoded(fuse=False) is program.decoded(fuse=False)
        assert program.decoded(fuse=True) is not program.decoded(fuse=False)

    def test_pickle_drops_decode_cache(self):
        program = compile_source(COUNT_LOOP)
        program.decoded(fuse=True)
        clone = pickle.loads(pickle.dumps(program))
        assert clone._decoded == {}
        # ...and re-decoding the clone reproduces the same code.
        assert clone.decoded(fuse=True).code == program.decoded(fuse=True).code


class TestBackEdges:
    def test_while_loop_has_back_edge(self):
        program = compile_source(COUNT_LOOP)
        edges = find_back_edges(program)
        assert edges, "while loop must produce a back-edge"
        for jump_pc, target in edges:
            assert target <= jump_pc

    def test_loop_header_recorded(self):
        program = compile_source(COUNT_LOOP)
        decoded = program.decoded(fuse=True)
        assert decoded.back_edges
        assert decoded.loop_headers == frozenset(
            target for _, target in decoded.back_edges
        )

    def test_straight_line_has_none(self):
        program = compile_source("var r; func main() { r = 1 + 2; }")
        assert find_back_edges(program) == ()


class TestConcreteEquivalence:
    def _ab(self, **variant):
        states, executor, program = _run(COUNT_LOOP, args=[500], **variant)
        assert len(states) == 1
        acc = states[0].memory[program.global_address("acc")]
        return (
            acc,
            executor.instructions_executed,
            frozenset(executor.visited_pcs),
            states[0].steps,
        )

    def test_threaded_matches_baseline(self):
        fused = self._ab()
        unfused = self._ab(fuse_ops=False)
        baseline = self._ab(table_dispatch=False)
        assert fused == unfused == baseline

    def test_step_uses_base_isa_granularity(self):
        program = compile_source(COUNT_LOOP)
        executor = Executor(program, Solver())
        state = executor.make_initial_state(0)
        executor.start_event(state, "main", [3])
        steps_before = state.steps
        executor.step(state)
        assert state.steps == steps_before + 1  # one instruction, not a pair


class TestSymbolicEquivalence:
    def _paths(self, **variant):
        states, executor, program = _run(SYMBOLIC_BRANCHES, **variant)
        done = [s for s in states if s.status == Status.IDLE]
        solver = executor.solver
        results = []
        for state in done:
            model = solver.get_model(state.constraints)
            cell = state.memory[program.global_address("path")]
            if not isinstance(cell, int):
                env = {
                    name: model.get(name, 0) for name, _ in state.symbolics
                }
                cell = evaluate(cell, env)
            results.append((cell, len(state.constraints)))
        return sorted(results), executor.instructions_executed

    def test_forks_and_constraints_identical(self):
        fused_paths, fused_instr = self._paths()
        base_paths, base_instr = self._paths(table_dispatch=False)
        unfused_paths, unfused_instr = self._paths(fuse_ops=False)
        assert fused_paths == base_paths == unfused_paths
        assert [p for p, _ in fused_paths] == [1, 2, 3, 4]
        assert fused_instr == base_instr == unfused_instr
