"""COW semantics (paper Section III-B, Figures 4 and 5)."""

import pytest

from repro.core import COWMapper, MappingError
from repro.core.explode import explosion_count

from .helpers import MapperHarness


@pytest.fixture
def harness():
    return MapperHarness(COWMapper(), node_count=3)


class TestBranching:
    def test_branch_joins_same_dstate(self, harness):
        """Figure 3 revisited: instead of two dscenarios, COW keeps one
        dstate {s1+, s1-, s2, s3} — no other state is copied."""
        node1 = harness.initial[1]
        harness.branch(node1)
        assert harness.mapper.group_count() == 1
        assert harness.total_states() == 4
        assert explosion_count(harness.mapper) == 2  # two dscenarios encoded
        harness.check()

    def test_branching_is_free_of_duplicates(self, harness):
        harness.branch(harness.initial[0])
        harness.branch(harness.initial[2], ways=3)
        assert harness.duplicate_configs() == []
        assert harness.mapper.stats.mapping_forks == 0

    def test_network_without_communication_stays_one_dstate(self, harness):
        """Section III-B: without communication, the complete symbolic
        execution needs just one dstate."""
        for node in range(3):
            for state in list(harness.states_of(node)):
                harness.branch(state)
        assert harness.mapper.group_count() == 1
        assert explosion_count(harness.mapper) == 8
        harness.check()


class TestTransmissionWithoutRivals:
    def test_delivers_in_place(self, harness):
        before = harness.total_states()
        receivers = harness.transmit(harness.initial[0], 1)
        assert receivers == [harness.initial[1]]
        assert harness.total_states() == before
        assert harness.mapper.group_count() == 1
        harness.check()

    def test_delivers_to_all_targets(self, harness):
        # Branch the *destination* node: both its states are targets and the
        # sender has no rivals, so both receive without forking.
        children = harness.branch(harness.initial[1])
        receivers = harness.transmit(harness.initial[0], 1)
        assert set(map(id, receivers)) == {
            id(harness.initial[1]),
            id(children[0]),
        }
        assert harness.mapper.group_count() == 1
        harness.check()


class TestFigure4:
    """After a symbolic branch on node 1, one of node 1's states transmits
    to node 2: the mapping phase forks the states on nodes 2 and 3,
    creating two separate dstates prior to delivery."""

    def test_sender_with_rival_forces_dstate_fork(self, harness):
        node1 = harness.initial[1]
        harness.branch(node1)
        before = harness.total_states()
        receivers = harness.transmit(node1, 2)
        # Nodes 0 and 2 were copied (2 new states).
        assert harness.total_states() == before + 2
        assert harness.mapper.group_count() == 2
        assert len(receivers) == 1
        assert receivers[0] is not harness.initial[2]
        harness.check()

    def test_sender_leaves_original_dstate(self, harness):
        node1 = harness.initial[1]
        children = harness.branch(node1)
        harness.transmit(node1, 2)
        groups = list(harness.mapper.groups())
        # The rival stays in the old dstate; the sender is in the new one.
        old = [g for g in groups if children[0] in g[1]]
        new = [g for g in groups if node1 in g[1]]
        assert len(old) == 1 and len(new) == 1 and old[0] is not new[0]
        assert node1 not in old[0][1]

    def test_bystander_copies_are_pure_duplicates(self, harness):
        node1 = harness.initial[1]
        harness.branch(node1)
        harness.transmit(node1, 2)
        # Node 0 is a bystander: its copy has an identical configuration.
        duplicates = harness.duplicate_configs()
        assert len(duplicates) == 1
        assert harness.mapper.stats.bystander_duplicates == 1

    def test_histories_stay_conflict_free(self, harness):
        node1 = harness.initial[1]
        harness.branch(node1)
        harness.transmit(node1, 2)
        harness.check()  # includes pairwise conflict checks

    def test_rival_can_send_later_within_old_dstate(self, harness):
        node1 = harness.initial[1]
        children = harness.branch(node1)
        harness.transmit(node1, 2)
        # The rival now transmits; it has no rivals left in the old dstate,
        # so delivery happens in place there.
        before = harness.total_states()
        receivers = harness.transmit(children[0], 2)
        assert harness.total_states() == before
        assert receivers == [harness.initial[2]]
        harness.check()


class TestExplosion:
    def test_dscenarios_covered_match_cob_product(self, harness):
        node1 = harness.initial[1]
        harness.branch(node1)
        harness.transmit(node1, 2)
        # Two dstates, each one state per node -> 2 dscenarios.
        assert explosion_count(harness.mapper) == 2

    def test_mixed_structure_explosion(self, harness):
        harness.branch(harness.initial[0])  # dstate now 2x1x1 -> 2
        harness.branch(harness.initial[2])  # 2x1x2 -> 4
        assert explosion_count(harness.mapper) == 4


class TestErrors:
    def test_unknown_destination_raises(self, harness):
        with pytest.raises(MappingError):
            harness.mapper.map_transmission(harness.initial[0], 99)
