"""The structured event trace: typed events, JSONL in and out.

Every interesting action of an SDE run can be emitted as one flat dict —
an *event* — through a :class:`TraceEmitter`.  The design constraints:

- **Low overhead when on** — one dict and one list append per event; no
  wall-clock reads (virtual time is deterministic and free), no
  serialization until :meth:`TraceEmitter.dump`.
- **Zero overhead when off** — tracing is off when the engine's ``trace``
  attribute is ``None``; every instrumentation site guards with
  ``if trace is not None:`` so the disabled path costs a pointer compare
  and allocates nothing (``tests/obs/test_events.py`` pins this down with
  ``tracemalloc``).
- **Deterministic modulo volatile fields** — two runs of the same scenario
  produce the same event multiset once the fields in
  :data:`VOLATILE_FIELDS` are dropped.  State/packet ids are volatile
  (id counters are process-global and scheduling-host dependent); node
  ids, virtual times, reasons and statuses are not.

Event vocabulary (the ``ev`` field) and their non-volatile payloads are
listed in :data:`EVENT_SCHEMA`; ``worker.*`` and ``run.*`` events describe
the run *harness* rather than the simulated system and are excluded from
semantic trace comparison (:data:`META_EVENT_PREFIXES`).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

__all__ = [
    "EVENT_SCHEMA",
    "META_EVENT_PREFIXES",
    "VOLATILE_FIELDS",
    "TraceEmitter",
    "load_trace",
]

#: Fields whose values legitimately differ between equivalent runs:
#: bookkeeping sequence numbers, worker placement, wall-clock readings,
#: process-global id-counter values, and cache-dependent outcomes.
VOLATILE_FIELDS = frozenset(
    [
        "seq",
        "worker",
        "wall",
        "sid",
        "pid",
        "parent",
        "child",
        "vid",
        "outcome",
    ]
)

#: Events whose *presence* depends on the harness (worker count, split
#: point, checkpoint cadence, injected faults), not on the simulated
#: system.  ``solver.*`` qualifies too: how many queries reach the
#: backend — and what each looks like after canonicalization — depends on
#: per-process memo and cache state, while the *verdicts* (and hence all
#: semantic events) do not.  The trace-diff tool skips them.
META_EVENT_PREFIXES = (
    "worker.",
    "run.",
    "checkpoint.",
    "solver.",
    "reduce.",
    "service.",
)

#: ``ev`` -> required non-volatile fields.  The schema is deliberately
#: flat: one JSON object per line, primitive values only.
EVENT_SCHEMA: Dict[str, frozenset] = {
    # state lifecycle
    "state.fork": frozenset(["node", "t", "reason"]),
    "state.terminate": frozenset(["node", "t", "status"]),
    "state.reboot": frozenset(["node", "t"]),
    # packet lifecycle
    "packet.send": frozenset(["src", "dest", "t", "bcast"]),
    "packet.deliver": frozenset(["node", "src", "t"]),
    # network medium
    "net.unicast": frozenset(["src", "dest", "delivered"]),
    "net.broadcast": frozenset(["src", "targets"]),
    # realistic medium only: a link-level loss or queue-full tail drop
    # (semantic, not meta — drops are pure functions of the run seed, so
    # every harness produces the same multiset)
    "net.drop": frozenset(["src", "dest", "reason"]),
    # state mapping
    "mapper.copy": frozenset(["node", "t", "kind", "role"]),
    # solver
    "solver.query": frozenset(["conjuncts", "result"]),
    "solver.cache": frozenset([]),  # outcome field is volatile
    # harness (meta events, skipped by semantic diff)
    "run.start": frozenset(["algorithm"]),
    "run.end": frozenset(["algorithm", "events"]),
    "worker.partition.start": frozenset(["partitions", "states"]),
    "worker.merge": frozenset(["workers"]),
    # distributed execution (meta: depth cuts, job flow and work-stealing
    # depend on worker count and timing, never on the simulated system)
    "worker.partition.deepen": frozenset(["events", "partitions"]),
    "worker.job.dispatch": frozenset(["job", "attempt"]),
    "worker.job.done": frozenset(["job"]),
    "worker.steal.request": frozenset(["victim"]),
    "worker.steal.grant": frozenset(["job", "states"]),
    "worker.steal.deny": frozenset(["job"]),
    # symmetry/POR reduction (meta: pruning decisions depend on seen-set
    # arrival order, which worker split points perturb; verdict equality
    # is pinned separately, not via trace diff)
    "reduce.prune": frozenset(["node", "t"]),
    "reduce.sleep": frozenset(["node", "t"]),
    "reduce.wake": frozenset(["node", "t"]),
    "reduce.disabled": frozenset(["reason"]),
    # resilience (meta events: fault injection / recovery is harness-side)
    "worker.crash": frozenset(["task", "kind"]),
    "worker.retry": frozenset(["task", "attempt"]),
    "checkpoint.write": frozenset(["events"]),
    "checkpoint.resume": frozenset(["events"]),
    # job service (meta: admission, supervision and drain decisions are
    # harness-side; job ids are content-digest prefixes + random suffixes)
    "service.submit": frozenset(["workload", "algorithm", "dedup"]),
    "service.reject": frozenset(["reason"]),
    "service.job.start": frozenset(["job", "attempt"]),
    "service.job.retry": frozenset(["job", "attempt"]),
    "service.job.done": frozenset(["job", "state"]),
    "service.drain": frozenset(["active", "queued"]),
    "service.recover": frozenset(["jobs"]),
}


class TraceEmitter:
    """Accumulates events in memory; serializes to JSONL on demand.

    ``worker`` tags every emitted event with the worker index (parallel
    runs); the main process leaves it unset.  The emitter is *truthy* so
    instrumentation sites can use ``if trace:`` — the disabled form is
    ``None``, never a disabled emitter, keeping the off path allocation
    free.
    """

    __slots__ = ("events", "worker", "_seq")

    def __init__(self, worker: Optional[int] = None) -> None:
        self.events: List[dict] = []
        self.worker = worker
        self._seq = 0

    def emit(self, ev: str, **fields) -> None:
        """Record one event.  ``fields`` must be JSON-primitive values."""
        fields["ev"] = ev
        fields["seq"] = self._seq
        self._seq += 1
        if self.worker is not None:
            fields["worker"] = self.worker
        self.events.append(fields)

    def extend(self, events: Iterable[dict]) -> None:
        """Append already-built events (merging a worker's trace)."""
        self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return True

    def dump(self, path) -> None:
        """Write the trace as JSON Lines (one event object per line).

        The write is atomic (temp file + rename): a run killed during the
        dump leaves either the previous trace or the complete new one.
        """
        from .fileio import atomic_write_text

        lines = [json.dumps(event, sort_keys=True) for event in self.events]
        lines.append("")  # trailing newline
        atomic_write_text(path, "\n".join(lines))


def load_trace(path) -> List[dict]:
    """Read a JSONL trace written by :meth:`TraceEmitter.dump`."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
