#!/usr/bin/env python
"""Async load harness for the SDE job service (``repro serve``).

Drives a running service with a bounded-concurrency stream of
submissions — including deliberate duplicates, so the dedup cache gets
exercised — handles 429 backpressure with client-side backoff, polls
every job to a terminal state, and asserts the service's core robustness
contract: **no job is ever left stuck**.

Modes:

- default / ``--smoke``: the CI-sized pass (small fast workloads, a few
  duplicate pairs); records ``service_*`` trend keys via
  ``benchmarks/record.py`` when ``SDE_BENCH_JSON`` is set.
- ``--chaos``: run against a service started with
  ``SDE_CHAOS_KILL_WORKER=<p>``.  On top of the terminal-state check,
  every *retried* job that completed is re-executed in-process
  (fault-free) and its report pinned equal on the deterministic fields —
  the crash/retry/resume path must not change results.  Records under
  the ``service_chaos_*`` prefix.

Everything is stdlib: the HTTP client is a tiny hand-rolled
request-per-connection speaking the same ``Connection: close`` dialect
the service serves.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from typing import List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, REPO_ROOT)

#: report fields that must be identical between a retried service run and
#: a fault-free in-process run of the same spec (the PR 3 resume-equality
#: surface, minus wall-clock and harness bookkeeping)
DETERMINISTIC_REPORT_FIELDS = (
    "total_states",
    "events_executed",
    "group_count",
    "instructions",
    "errors",
    "virtual_ms",
    "aborted",
    "abort_reason",
)

#: terminal job states (mirrors repro.service.store.TERMINAL_STATES;
#: kept literal so the harness can run without importing the package)
TERMINAL = {"done", "failed", "timeout", "cancelled"}


class ServiceClient:
    """One-request-per-connection HTTP client for the service dialect."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        client_id: str = "loadgen",
    ) -> Tuple[int, object]:
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"X-Client-Id: {client_id}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )
        try:
            writer.write(head + payload)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), self.timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
        status = int(header_blob.split(b" ", 2)[1])
        text = body_blob.decode("utf-8", "replace")
        try:
            return status, json.loads(text)
        except ValueError:
            return status, text

    async def submit_with_backoff(
        self, spec: dict, client_id: str, max_tries: int = 60
    ) -> dict:
        """POST a spec, honouring 429/503 Retry-After with capped backoff."""
        delay = 0.05
        for _ in range(max_tries):
            status, out = await self.request(
                "POST", "/v1/runs", spec, client_id
            )
            if status in (200, 202):
                return out
            if status in (429, 503):
                hinted = 0.0
                if isinstance(out, dict):
                    hinted = float(out.get("retry_after_seconds") or 0.0)
                await asyncio.sleep(min(max(delay, hinted / 10), 1.0))
                delay = min(delay * 2, 1.0)
                continue
            raise AssertionError(f"submit failed: HTTP {status} {out!r}")
        raise AssertionError("submit kept getting backpressure; service stuck?")

    async def wait_terminal(self, job_id: str, deadline: float) -> dict:
        while True:
            status, record = await self.request("GET", f"/v1/runs/{job_id}")
            if status == 200 and record["state"] in TERMINAL:
                return record
            if time.time() > deadline:
                raise AssertionError(
                    f"job {job_id} stuck in state"
                    f" {record.get('state') if status == 200 else status!r}"
                )
            await asyncio.sleep(0.1)


def smoke_specs(jobs: int) -> List[dict]:
    """A mixed batch: distinct small runs plus duplicate pairs.

    Every third spec repeats the previous one, so roughly a third of the
    batch should come back deduplicated (cached or coalesced).
    """
    specs: List[dict] = []
    sizes = (3, 4, 5)
    while len(specs) < jobs:
        index = len(specs)
        if index % 3 == 2 and specs:
            specs.append(dict(specs[-1]))
            continue
        specs.append(
            {
                "workload": "flood",
                "size": sizes[index % len(sizes)],
                "algorithm": "sds",
                "seed": index // 3,
            }
        )
    return specs


async def drive(args) -> dict:
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    specs = smoke_specs(args.jobs)
    deadline = time.time() + args.deadline
    gate = asyncio.Semaphore(args.concurrency)
    dedup_hits = 0
    submitted = []

    async def one(index: int, spec: dict) -> dict:
        nonlocal dedup_hits
        async with gate:
            out = await client.submit_with_backoff(
                spec, client_id=f"loadgen-{index % args.clients}"
            )
        if out.get("deduplicated"):
            dedup_hits += 1
        submitted.append(out["id"])
        record = await client.wait_terminal(out["id"], deadline)
        return record

    start = time.time()
    records = await asyncio.gather(
        *(one(i, spec) for i, spec in enumerate(specs))
    )
    wall = time.time() - start

    states = {}
    for record in records:
        states[record["state"]] = states.get(record["state"], 0) + 1
    terminal = sum(states.values())
    stuck = len(records) - terminal
    retried_done = [
        r for r in records if r["state"] == "done" and r["retries"] > 0
    ]

    status, stats = await client.request("GET", "/v1/stats")
    assert status == 200, f"/v1/stats returned {status}"
    live = stats["service"]
    assert live["queued"] == 0 and live["active"] == 0, (
        f"service still has live work after the batch: {live}"
    )

    print(
        f"loadgen: {len(records)} jobs in {wall:.2f}s — states {states},"
        f" dedup hits {dedup_hits}, retried-and-done {len(retried_done)}"
    )
    assert stuck == 0, f"{stuck} jobs never reached a terminal state"
    if not args.chaos:
        not_done = {s: n for s, n in states.items() if s != "done"}
        assert not not_done, f"fault-free smoke saw non-done jobs: {not_done}"
        assert dedup_hits > 0, "duplicate submissions were never deduplicated"

    mismatches = 0
    if args.chaos:
        assert states.get("done", 0) == len(records), (
            f"chaos run: every job should retry to done, got {states}"
        )
        assert retried_done, (
            "chaos run finished without a single retried job —"
            " SDE_CHAOS_KILL_WORKER is not reaching the workers"
        )
        mismatches = await verify_retried_reports(client, retried_done)
        assert mismatches == 0, (
            f"{mismatches} retried jobs' reports differ from fault-free runs"
        )

    result = {
        "jobs": len(records),
        "wall_seconds": round(wall, 3),
        "throughput_jobs_per_s": round(len(records) / wall, 3) if wall else 0.0,
        "terminal_rate": terminal / len(records),
        "dedup_hits": dedup_hits,
        "retried_done": len(retried_done),
        "report_mismatches": mismatches,
        "states": states,
    }
    return result


async def verify_retried_reports(
    client: ServiceClient, records: List[dict]
) -> int:
    """Pin each retried job's report to a fault-free in-process run."""
    from repro.api import make_workload, report_to_dict, run_scenario

    mismatches = 0
    for record in records:
        status, served = await client.request(
            "GET", f"/v1/runs/{record['id']}/report"
        )
        assert status == 200, f"report for {record['id']}: HTTP {status}"
        spec = record["spec"]
        scenario = make_workload(
            spec["workload"], spec["size"], **spec["workload_args"]
        )
        reference = report_to_dict(
            run_scenario(scenario, spec["algorithm"], **spec["config"])
        )
        for field in DETERMINISTIC_REPORT_FIELDS:
            if served.get(field) != reference.get(field):
                mismatches += 1
                print(
                    f"MISMATCH {record['id']} {field}:"
                    f" served={served.get(field)!r}"
                    f" reference={reference.get(field)!r}"
                )
                break
    return mismatches


def build_parser() -> argparse.ArgumentParser:
    """The loadgen flag surface (walked by ``tools/docs_lint.py``)."""
    parser = argparse.ArgumentParser(
        prog="loadgen", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--jobs", type=int, default=24, help="total submissions to issue"
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="submissions in flight at once",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="distinct X-Client-Id values to spread load across",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=120.0,
        help="seconds before an unfinished job counts as stuck",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0, help="per-request timeout"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized pass: 12 jobs, concurrency 6",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="expect worker kills: all jobs must still reach done, and"
        " retried jobs' reports must match fault-free runs",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        args.jobs = min(args.jobs, 12)
        args.concurrency = min(args.concurrency, 6)
    result = asyncio.run(drive(args))

    prefix = "service_chaos" if args.chaos else "service"
    if os.environ.get("SDE_BENCH_JSON"):
        from benchmarks.record import record_bench

        record_bench(
            **{
                f"{prefix}_jobs": result["jobs"],
                f"{prefix}_wall_seconds": result["wall_seconds"],
                f"{prefix}_throughput_jobs_per_s": result[
                    "throughput_jobs_per_s"
                ],
                f"{prefix}_terminal_rate": result["terminal_rate"],
                f"{prefix}_dedup_hits": result["dedup_hits"],
                f"{prefix}_retried_done": result["retried_done"],
                f"{prefix}_report_mismatches": result["report_mismatches"],
            }
        )
    print(f"loadgen OK ({prefix}): {json.dumps(result, sort_keys=True)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
