"""Property-based equivalence: random small scenarios, three algorithms,
one answer.

Hypothesis generates scenario shapes (topology, failure placement, traffic
pattern, symbolic payloads); for each, COB / COW / SDS must represent the
identical dscenario multiset, SDS must be duplicate-free, and all mapper
invariants must hold throughout.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Scenario, Topology, build_engine
from repro.core import dscenario_fingerprints
from repro.net import (
    SymbolicDuplication,
    SymbolicPacketDrop,
)

PROGRAM = """
var got;
var fwd;
func on_boot() {
    if (node_id() == node_count() - 1) { timer_set(0, 50); }
}
func on_timer(tid) {
    var buf[1];
    buf[0] = {payload};
    uc_send(node_id() - 1, buf, 1);
    fwd += 1;
    if (fwd < {sends}) { timer_set(0, 50); }
}
func on_recv(src, len) {
    got = recv_byte(0);
    {branching}
    if (node_id() > 0) {
        var buf[1];
        buf[0] = got;
        uc_send(node_id() - 1, buf, 1);
    }
}
"""

BRANCH_SNIPPET = "if (got > 5) { got += 1; }"


@st.composite
def scenario_config(draw):
    k = draw(st.integers(min_value=2, max_value=4))
    sends = draw(st.integers(min_value=1, max_value=2))
    symbolic_payload = draw(st.booleans())
    branching = draw(st.booleans()) and symbolic_payload
    drop_nodes = draw(st.sets(st.integers(min_value=0, max_value=k - 2)))
    dup_nodes = draw(st.sets(st.integers(min_value=0, max_value=k - 2)))
    return (k, sends, symbolic_payload, branching, drop_nodes, dup_nodes)


def build(config):
    k, sends, symbolic_payload, branching, drop_nodes, dup_nodes = config
    payload = 'symbolic("v", 8)' if symbolic_payload else "9"
    source = (
        PROGRAM.replace("{payload}", payload)
        .replace("{sends}", str(sends))
        .replace("{branching}", BRANCH_SNIPPET if branching else "")
    )

    def failures():
        models = []
        if drop_nodes:
            models.append(SymbolicPacketDrop(sorted(drop_nodes)))
        if dup_nodes:
            models.append(SymbolicDuplication(sorted(dup_nodes)))
        return models

    return Scenario(
        name="prop",
        program=source,
        topology=Topology.line(k),
        horizon_ms=50 * (sends + 1) + 10 * k,
        failure_factory=failures,
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(scenario_config())
def test_random_scenarios_are_equivalent(config):
    fingerprints = {}
    reports = {}
    for algo in ("cob", "cow", "sds"):
        engine = build_engine(build(config), algo, check_invariants=True)
        reports[algo] = engine.run()
        assert not reports[algo].aborted
        fingerprints[algo] = dscenario_fingerprints(
            engine.mapper, engine.packets
        )
        if algo == "sds":
            exact = Counter(
                s.config_key() for s in engine.states.values()
            )
            assert all(c == 1 for c in exact.values()), "SDS duplicated"
    assert fingerprints["cob"] == fingerprints["cow"]
    assert fingerprints["cob"] == fingerprints["sds"]
    assert (
        reports["cob"].total_states
        >= reports["cow"].total_states
        >= reports["sds"].total_states
    )
