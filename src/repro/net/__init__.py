"""Network substrate: topologies, packets, ideal medium, symbolic failures."""

from .failures import (  # noqa: F401
    DeliveryPlan,
    FailureModel,
    SymbolicDuplication,
    SymbolicNodeReboot,
    SymbolicPacketDrop,
    standard_failure_suite,
)
from .link_failures import SymbolicLinkFailure  # noqa: F401
from .medium import Medium  # noqa: F401
from .packet import Packet, reset_packet_ids  # noqa: F401
from .topology import Topology  # noqa: F401
