"""A small guest-side standard library (NSL source fragment).

Buffer and checksum helpers in pure NSL, operating on decayed array
addresses via ``peek``/``poke``.  Workload programs prepend this fragment
(like :data:`repro.oslib.rime.RIME_LIBRARY`); everything here executes
inside the VM and is symbolically explored like application code — which is
the point: checksum loops over symbolic payload bytes are classic fork/
constraint generators.
"""

from __future__ import annotations

__all__ = ["NSL_STDLIB", "with_stdlib", "crc8_reference", "sum_reference"]

NSL_STDLIB = """
// ---- nsl stdlib (injected by repro.lang.stdlib) ----

// Fill n cells starting at address dst with value.
func memset(dst, value, n) {
    var i = 0;
    while (i < n) {
        poke(dst + i, value);
        i += 1;
    }
    return dst;
}

// Copy n cells src -> dst (forward; regions must not overlap backwards).
func memcpy(dst, src, n) {
    var i = 0;
    while (i < n) {
        poke(dst + i, peek(src + i));
        i += 1;
    }
    return dst;
}

// Compare n cells; returns 0 when equal, 1 otherwise.
func memcmp(a, b, n) {
    var i = 0;
    while (i < n) {
        if (peek(a + i) != peek(b + i)) { return 1; }
        i += 1;
    }
    return 0;
}

// Sum of n cells, truncated to a byte.
func sum8(buf, n) {
    var total = 0;
    var i = 0;
    while (i < n) {
        total += peek(buf + i);
        i += 1;
    }
    return total & 0xff;
}

// CRC-8 (polynomial 0x07, init 0) over the low bytes of n cells.
func crc8(buf, n) {
    var crc = 0;
    var i = 0;
    while (i < n) {
        crc = crc ^ (peek(buf + i) & 0xff);
        var bit = 0;
        while (bit < 8) {
            if (crc & 0x80) {
                crc = ((crc << 1) ^ 0x07) & 0xff;
            } else {
                crc = (crc << 1) & 0xff;
            }
            bit += 1;
        }
        i += 1;
    }
    return crc;
}
"""


def with_stdlib(application_source: str) -> str:
    """Compose a program: stdlib + application code."""
    return NSL_STDLIB + "\n" + application_source


def crc8_reference(data) -> int:
    """Host-side CRC-8 (poly 0x07) for verifying the guest implementation."""
    crc = 0
    for byte in data:
        crc ^= byte & 0xFF
        for _ in range(8):
            crc = ((crc << 1) ^ 0x07) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
    return crc


def sum_reference(data) -> int:
    return sum(value & 0xFFFFFFFF for value in data) & 0xFF
