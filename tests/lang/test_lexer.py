"""Tokenizer tests."""

import pytest

from repro.lang import LexError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)][:-1]  # drop eof


class TestBasics:
    def test_empty(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "eof"

    def test_integers(self):
        assert values("0 42 0xff 0XAB") == [0, 42, 255, 171]

    def test_char_literals(self):
        assert values("'a' '\\n' '\\0'") == [97, 10, 0]

    def test_string_literal(self):
        assert values('"drop"') == ["drop"]
        assert values('"a\\nb"') == ["a\nb"]

    def test_identifiers_and_keywords(self):
        tokens = tokenize("var x if foo_bar2")
        assert [t.kind for t in tokens[:-1]] == [
            "keyword",
            "ident",
            "keyword",
            "ident",
        ]

    def test_operators_longest_match(self):
        assert values("<< <= < == = && & >>") == [
            "<<",
            "<=",
            "<",
            "==",
            "=",
            "&&",
            "&",
            ">>",
        ]

    def test_compound_assignment_ops(self):
        assert values("+= -= <<= >>=") == ["+=", "-=", "<<=", ">>="]


class TestComments:
    def test_line_comment(self):
        assert values("1 // comment\n2") == [1, 2]

    def test_block_comment(self):
        assert values("1 /* x\ny */ 2") == [1, 2]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3

    def test_line_tracking_after_block_comment(self):
        tokens = tokenize("/* a\nb */ x")
        assert tokens[0].line == 2


class TestErrors:
    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_empty_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')
