"""Symmetry + partial-order reduction over the SDS frontier (ROADMAP item 3).

Every workload this reproduction runs is maximally symmetric — grids,
lines and rings of *identical* programs — yet the engine explores each
node's states as if unique.  This module attacks the state count itself,
the multiplier on everything the solver/VM/distribution work made fast:

- **Symmetry reduction** — every state reaching an idle point is reduced
  to a *canonical configuration fingerprint*: guest memory, pending
  events and the live-projected canonical constraint groups (the
  content-based :class:`~repro.solver.constraints.ConstraintSet`
  machinery from the solver overhaul), alpha-renamed so symbolic variable
  identities don't matter, and minimized over the node's *stabilizer*
  subgroup of the topology's automorphism group (so packet provenance
  from interchangeable neighbours collapses).  A seen-set of canonical
  forms prunes duplicates before they re-enter the frontier.

- **Partial-order reduction** — mapper-created non-receiving twins are
  the engine's communication interleavings: each one represents "this
  packet reaches the target in a different scenario pairing".  When a
  twin's canonical form is already covered *and* the triggering delivery
  is independent of everything pending on the twin (disjoint channels and
  payload footprints, commuting receive handler), the exchange provably
  cannot reach a new node-local configuration, so the twin is put to
  sleep instead of being explored.

Pruned states are parked (``Status.PRUNED``), not discarded: they stay
registered in their dstates so mapper invariants hold, and a later
delivery that would reach an *uncovered* configuration class wakes them
up (see :meth:`StateReducer.on_pruned_event`).  Soundness — which
reported verdicts are preserved, under exactly which statically-checked
program assumptions — is argued in ``docs/REDUCTION.md``; the reducer
disables itself (``reduce.disabled`` counter) on programs the
conservative analysis cannot certify.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..expr.ast import BoolConst, BVConst, BVVar
from ..lang.bytecode import CompiledProgram, Op
from ..net.packet import Packet
from ..net.topology import Topology
from ..oslib.kernel import HANDLER_RECV
from ..vm.state import Event, ExecutionState, Status

__all__ = [
    "MAX_AUTOMORPHISMS",
    "ReduceStats",
    "StateReducer",
    "analyze_recv_handler",
    "automorphisms",
    "canonical_state_form",
    "canonical_violations",
    "delivery_independent",
    "node_orbit",
    "permute_state",
    "state_fingerprint",
]

#: Enumeration cap on the automorphism group (mesh-k has k! of them).
#: Truncation is sound — canonicalization over any identity-containing
#: subset is still a well-defined equivalence, just a coarser reduction.
MAX_AUTOMORPHISMS = 720

#: Constraint sets larger than this are not fingerprinted (the state is
#: left untouched); serialization cost would dwarf the pruning win.
MAX_FINGERPRINT_CONJUNCTS = 2000

_IDENTITY_CACHE: Dict[Tuple[str, int, frozenset], Tuple[Tuple[int, ...], ...]] = {}


# ---------------------------------------------------------------------------
# Topology automorphisms
# ---------------------------------------------------------------------------


def automorphisms(
    topology: Topology, limit: int = MAX_AUTOMORPHISMS
) -> Tuple[Tuple[int, ...], ...]:
    """The node-permutation automorphism group of the topology graph.

    Returned as sorted tuples ``perm`` with ``perm[node] == image``.
    Enumeration stops at ``limit`` permutations (the identity is always
    included), so highly symmetric graphs degrade to a subgroup-like
    subset rather than an O(k!) blowup.
    """
    edges = frozenset(
        (min(a, b), max(a, b)) for a, b in topology.graph.edges
    )
    cache_key = (topology.name, topology.node_count, edges)
    cached = _IDENTITY_CACHE.get(cache_key)
    if cached is not None:
        return cached
    from networkx.algorithms.isomorphism import GraphMatcher

    identity = tuple(range(topology.node_count))
    found: Set[Tuple[int, ...]] = {identity}
    matcher = GraphMatcher(topology.graph, topology.graph)
    for mapping in matcher.isomorphisms_iter():
        found.add(tuple(mapping[node] for node in range(topology.node_count)))
        if len(found) >= limit:
            break
    result = tuple(sorted(found))
    _IDENTITY_CACHE[cache_key] = result
    return result


def node_orbit(node: int, autos: Sequence[Tuple[int, ...]]) -> int:
    """Canonical representative of ``node``'s orbit (the minimal image)."""
    return min(perm[node] for perm in autos)


# ---------------------------------------------------------------------------
# Alpha-renamed canonical serialization
# ---------------------------------------------------------------------------


class _IdentityPerm:
    """The identity permutation over any index (no fixed length)."""

    __slots__ = ()

    def __getitem__(self, index: int) -> int:
        return index


_IDENTITY = _IdentityPerm()


class _Canon:
    """Order-of-first-appearance renaming of symbolic variable names.

    Symbolic names embed the creating node and a per-state counter
    (``n2.reading3``), so two alpha-equivalent states never share names;
    renaming by appearance order erases exactly that."""

    __slots__ = ("names",)

    def __init__(self, base: Optional["_Canon"] = None) -> None:
        self.names: Dict[str, int] = dict(base.names) if base is not None else {}

    def rename(self, name: str) -> int:
        index = self.names.get(name)
        if index is None:
            index = len(self.names)
            self.names[name] = index
        return index


def _serialize_expr(root, canon: _Canon, out: List) -> None:
    """Append a pre-order token stream for ``root`` (iterative: constraint
    chains from long loops exceed the recursion limit)."""
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, BVVar):
            out.append(("v", canon.rename(node.name), node.width))
            continue
        if isinstance(node, BVConst):
            out.append(("c", node.value, node.width))
            continue
        if isinstance(node, BoolConst):
            out.append(("b", node.value))
            continue
        out.append(
            (
                type(node).__name__,
                getattr(node, "op", None),
                getattr(node, "low", None),
                getattr(node, "signed", None),
            )
        )
        children = node.children()
        # Reversed so the stream stays in left-to-right pre-order.
        stack.extend(reversed(children))


def _serialize_cell(cell, canon: _Canon, out: List) -> None:
    if isinstance(cell, int):
        out.append(cell)
    else:
        out.append("<expr>")
        _serialize_expr(cell, canon, out)


def _live_variables(state: ExecutionState) -> Set:
    """Symbolic variables an idle state can still observe: those in guest
    memory plus those in pending packet payloads."""
    live: Set = set()
    for cell in state.memory:
        if not isinstance(cell, int):
            live.update(cell.variables())
    for event in state.events:
        if event.kind == Event.RECV:
            for cell in event.data.payload:
                if not isinstance(cell, int):
                    live.update(cell.variables())
    return live


def _serialize_packet(packet: Packet, perm, canon: _Canon, out: List) -> None:
    out.append(("pkt", perm[packet.src]))
    for cell in packet.payload:
        _serialize_cell(cell, canon, out)


def _serialize_state(
    state: ExecutionState, perm: Tuple[int, ...], canon: _Canon
) -> List:
    """One flat, hashable-token serialization of an idle state's
    configuration under node relabelling ``perm``.

    Includes: node (relabelled), status, guest memory, pending events in
    deterministic order (timer liveness instead of absolute generations,
    packet sources relabelled), and the live-projected canonical
    constraint groups.  Excludes: sid, pc/stacks (empty between events),
    clock (event times are absolute), communication history and symbolic
    counters (future names are alpha-erased anyway).
    """
    out: List = [("node", perm[state.node]), ("status", state.status)]
    out.append("mem")
    for cell in state.memory:
        _serialize_cell(cell, canon, out)
    out.append("events")
    for event in state.events:
        if event.kind == Event.RECV:
            out.append(("recv", event.time))
            _serialize_packet(event.data, perm, canon, out)
        elif event.kind == Event.TIMER:
            live = event.generation == state.timer_generations.get(event.data, 0)
            out.append(("timer", event.time, event.data, live))
        else:
            out.append((event.kind, event.time))
    out.append("constraints")
    live = _live_variables(state)
    groups = []
    for conjuncts, variables in state.constraints.partition_groups():
        if live and not variables.isdisjoint(live):
            group_out: List = []
            group_canon = _Canon(canon)
            for conjunct in conjuncts:
                _serialize_expr(conjunct, group_canon, group_out)
            groups.append(tuple(group_out))
    # Groups are variable-disjoint components; sorting their serialized
    # forms makes the ordering canonical without a global var order.
    out.extend(sorted(groups))
    return out


def state_fingerprint(
    state: ExecutionState, perm: Optional[Tuple[int, ...]] = None
) -> Optional[tuple]:
    """The alpha-renamed configuration fingerprint of one idle state."""
    if len(state.constraints) > MAX_FINGERPRINT_CONJUNCTS:
        return None
    if perm is None:
        perm = _IDENTITY
    return tuple(_serialize_state(state, perm, _Canon()))


def canonical_state_form(
    state: ExecutionState, autos: Sequence[Tuple[int, ...]]
) -> Optional[tuple]:
    """The minimal fingerprint over the given permutations."""
    if len(state.constraints) > MAX_FINGERPRINT_CONJUNCTS:
        return None
    return min(
        tuple(_serialize_state(state, perm, _Canon())) for perm in autos
    )


def permute_state(state: ExecutionState, perm: Tuple[int, ...]) -> ExecutionState:
    """A relabelled copy of ``state`` under node permutation ``perm``.

    Test/diagnostic helper for the canonicalization property
    ``canonical(permute(s)) == canonical(s)``: the node id and packet
    sources are relabelled; symbolic names need no rewrite because the
    fingerprint alpha-renames them away.
    """
    twin = state.fork()
    twin.node = perm[state.node]
    relabelled: List[Event] = []
    for event in twin.events:
        if event.kind == Event.RECV:
            packet = event.data
            moved = Packet(
                perm[packet.src],
                perm[packet.dest],
                packet.payload,
                packet.sent_at,
                packet.broadcast_id,
            )
            relabelled.append(
                Event(event.time, event.seq, event.kind, moved, event.generation)
            )
        else:
            relabelled.append(event)
    twin.events = relabelled
    return twin


# ---------------------------------------------------------------------------
# Reported-verdict canonicalization
# ---------------------------------------------------------------------------


def canonical_violations(
    states_or_report, topology: Topology
) -> frozenset:
    """The set of reported violations up to symmetry and alpha-renaming.

    Accepts a :class:`~repro.core.engine.RunReport` (or anything with an
    ``error_states`` attribute) or an iterable of states.  Each error
    state contributes one signature: the guest error (kind, message,
    line, code) plus the orbit of the node that reported it.  This is the
    *violation class* — the granularity at which the engine reports bugs
    (``report_to_dict``'s ``errors`` rows) — deliberately coarser than a
    full state canonicalization: a pruned path's violations surface on a
    symmetric representative whose global clock and peer context may
    differ, but never its violation class.  Reduction on vs. off must
    agree on this set — that is the equivalence gate in
    ``test_optimizer_equivalence.py``.
    """
    states = getattr(states_or_report, "error_states", states_or_report)
    autos = automorphisms(topology)
    signatures = set()
    for state in states:
        if state.status != Status.ERROR or state.error is None:
            continue
        error = state.error
        signatures.add(
            (
                error.kind,
                error.message,
                error.line,
                error.code,
                node_orbit(state.node, autos),
            )
        )
    return frozenset(signatures)


# ---------------------------------------------------------------------------
# Conservative receive-handler analysis (the POR independence guard)
# ---------------------------------------------------------------------------

#: Read-modify-write opcodes whose composition commutes
#: (``x <op> a <op> b == x <op> b <op> a``).
_COMMUTING_RMW = frozenset(
    {Op.ADD, Op.SUB, Op.MUL, Op.BAND, Op.BOR, Op.BXOR}
)

#: Syscalls with no effect outside the current state's own configuration.
#: ``timer_set``/``*_send`` mutate globally visible behaviour; ``poke``
#: writes arbitrary memory; all are rejected.
_PURE_SYSCALLS = frozenset(
    {
        "node_id",
        "node_count",
        "time",
        "symbolic",
        "assume",
        "assert",
        "fail",
        "recv_len",
        "recv_src",
        "recv_byte",
        "lshr",
        "min",
        "max",
        "abs",
        "log",
        "peek",
    }
)


def analyze_recv_handler(program: CompiledProgram) -> Tuple[bool, str]:
    """Certify that exchanging two independent deliveries commutes.

    A linear, conservative scan of the ``on_recv`` bytecode.  Accepts the
    handler iff every write to a *global* cell is a commutative
    read-modify-write (``LOAD g; PUSH imm; <commuting op>; STORE g``),
    every local read is preceded by an unconditional local write (no
    state smuggled between invocations through stale frame slots), and
    only pure syscalls occur.  Anything unclear — calls, indexed writes,
    sends, timers — rejects.  Returns ``(ok, reason)``.
    """
    if not program.has_handler(HANDLER_RECV):
        return True, "no receive handler"
    index = program.function_index[HANDLER_RECV]
    func = program.functions[index]
    code = program.code[func.entry : func.entry + func.code_length]
    global_cells = set()
    for address, size in program.globals_layout.values():
        global_cells.update(range(address, address + size))
    frame = range(func.param_base, func.param_base + func.frame_size)
    written = set(range(func.param_base, func.param_base + len(func.params)))
    branched = False
    for offset, instr in enumerate(code):
        op = instr.op
        if op in (Op.JMP, Op.JZ, Op.JNZ):
            branched = True
        elif op == Op.LOAD:
            if instr.arg in frame and instr.arg not in written:
                return False, f"reads frame cell {instr.arg} before writing it"
        elif op == Op.STORE:
            if instr.arg in global_cells:
                if not _is_commuting_rmw(code, offset, instr.arg):
                    return False, (
                        f"non-commutative write to global cell {instr.arg}"
                    )
            elif not branched:
                written.add(instr.arg)
        elif op == Op.STOREI:
            return False, "indexed store"
        elif op == Op.LOADI:
            base, size = instr.arg
            if any(cell in frame for cell in range(base, base + size)):
                return False, "indexed read of a frame array"
        elif op == Op.CALL:
            return False, "calls a function"
        elif op == Op.SYS:
            name = instr.arg[0]
            if name not in _PURE_SYSCALLS:
                return False, f"impure syscall {name}"
    return True, "commutes"


def _is_commuting_rmw(code, offset: int, address: int) -> bool:
    if offset < 3:
        return False
    load, push, arith = code[offset - 3], code[offset - 2], code[offset - 1]
    return (
        load.op == Op.LOAD
        and load.arg == address
        and push.op == Op.PUSH
        and arith.op in _COMMUTING_RMW
    )


def delivery_independent(a: Packet, b: Packet) -> bool:
    """Paper-style independence of two deliveries to the same node: they
    arrive on disjoint channels (different senders) and their payloads
    share no symbolic variables, so — given a commuting handler — their
    exchange cannot change the reachable configuration."""
    if a.src == b.src:
        return False
    vars_a: Set = set()
    for cell in a.payload:
        if not isinstance(cell, int):
            vars_a.update(cell.variables())
    if not vars_a:
        return True
    for cell in b.payload:
        if not isinstance(cell, int) and not vars_a.isdisjoint(cell.variables()):
            return False
    return True


# ---------------------------------------------------------------------------
# The reducer
# ---------------------------------------------------------------------------


class ReduceStats:
    """Flow counters of one reducer; merged across workers like every
    other stats dict (``_sum_dicts``)."""

    __slots__ = (
        "fingerprints",
        "pruned",
        "slept_twins",
        "slept_events",
        "woken",
        "disabled",
    )

    def __init__(self) -> None:
        #: canonical fingerprints computed
        self.fingerprints = 0
        #: states parked by the symmetry seen-set
        self.pruned = 0
        #: mapper twins put to sleep (commuting interleavings)
        self.slept_twins = 0
        #: events swallowed on parked states
        self.slept_events = 0
        #: parked states re-activated by an uncovered delivery
        self.woken = 0
        #: 1 if the program analysis vetoed reduction
        self.disabled = 0


class StateReducer:
    """Seen-set of canonical forms + sleep/wake policy for one engine run.

    Built by the engine when ``EngineConfig.symmetry`` or ``.por`` is
    set.  ``symmetry`` gates pruning of post-dispatch duplicates (local
    branches, failure twins, dscenario copies); ``por`` gates sleeping of
    mapper-created non-receiving twins.  Both share one seen-set, so
    either flag alone still records coverage from all states it observes.
    """

    def __init__(
        self,
        topology: Topology,
        program: CompiledProgram,
        *,
        symmetry: bool = True,
        por: bool = True,
        trace=None,
        medium=None,
    ) -> None:
        self.symmetry = symmetry
        self.por = por
        self.trace = trace
        self.autos = automorphisms(topology)
        self._stabilizers = {
            node: tuple(p for p in self.autos if p[node] == node)
            for node in topology.nodes()
        }
        ok, reason = analyze_recv_handler(program)
        if ok and medium is not None and not medium.node_symmetric():
            # Canonical fingerprints equate states up to node relabelling
            # (and exclude communication history), but a medium with
            # per-link loss/jitter draws or finite-bandwidth queues keys
            # delivery on concrete link ids and history position — the
            # equivalence no longer implies equal futures, so reduction
            # must stand down rather than prune unsoundly.
            ok = False
            reason = (
                f"medium {medium.name!r} is not node-symmetric"
                " (per-link loss/jitter/queueing breaks automorphism"
                " invariance)"
            )
        #: reduction only activates on programs the conservative handler
        #: analysis certifies; see docs/REDUCTION.md ("assumptions").
        self.enabled = ok
        self.disable_reason = None if ok else reason
        self.seen: Dict[tuple, int] = {}
        self.delivery_seen: Set[tuple] = set()
        self.stats = ReduceStats()
        self.seeded = False
        if not ok:
            self.stats.disabled = 1
            if trace is not None:
                trace.emit("reduce.disabled", reason=reason)

    # -- fingerprinting -----------------------------------------------------

    def _fingerprint(self, state: ExecutionState) -> Optional[tuple]:
        perms = self._stabilizers[state.node]
        if len(state.constraints) > MAX_FINGERPRINT_CONJUNCTS:
            return None
        self.stats.fingerprints += 1
        return min(
            tuple(_serialize_state(state, perm, _Canon())) for perm in perms
        )

    def orbit_count(self) -> int:
        return len(self.seen)

    # -- seeding (resume / restored worker partitions) ----------------------

    def seed(self, states: Iterable[ExecutionState]) -> None:
        """Record pre-existing states as covered without pruning any.

        Called once at loop entry so resumed checkpoints and restored
        worker partitions never park inherited work."""
        self.seeded = True
        if not self.enabled:
            return
        for state in states:
            if state.status in (Status.IDLE, Status.PRUNED):
                fingerprint = self._fingerprint(state)
                if fingerprint is not None:
                    self.seen.setdefault(fingerprint, state.sid)

    # -- the symmetry prune (post-dispatch candidates) -----------------------

    def observe(self, state: ExecutionState) -> bool:
        """Record a state's canonical form; ``True`` means park it now."""
        if not self.enabled or state.status != Status.IDLE:
            return False
        fingerprint = self._fingerprint(state)
        if fingerprint is None:
            return False
        holder = self.seen.setdefault(fingerprint, state.sid)
        if holder != state.sid and self.symmetry:
            self.stats.pruned += 1
            return True
        return False

    # -- the POR twin sleep (commuting interleavings) ------------------------

    def observe_twin(self, twin: ExecutionState, packet: Packet) -> bool:
        """``True`` iff a mapper-created non-receiving twin may sleep.

        Requires ``por``, a certified handler, independence of the
        triggering delivery from everything pending on the twin, and a
        covered canonical form."""
        if not self.enabled or twin.status != Status.IDLE:
            return False
        if not self.por:
            return self.observe(twin) if self.symmetry else False
        for event in twin.events:
            if event.kind == Event.RECV and not delivery_independent(
                packet, event.data
            ):
                return False
        fingerprint = self._fingerprint(twin)
        if fingerprint is None:
            return False
        holder = self.seen.setdefault(fingerprint, twin.sid)
        if holder != twin.sid:
            self.stats.slept_twins += 1
            return True
        return False

    # -- wake-on-uncovered-delivery ------------------------------------------

    def record_delivery(self, state: ExecutionState, packet: Packet) -> None:
        """Mark (configuration ⊕ delivery) as covered by an active state."""
        if not self.enabled:
            return
        key = self._delivery_key(state, packet)
        if key is not None:
            self.delivery_seen.add(key)

    def on_pruned_event(self, state: ExecutionState, event: Event) -> str:
        """Policy for an event surfacing on a parked state.

        Self-generated events (boot/timer) are always swallowed — the
        covering representative held the identical pending queue.  A
        reception is swallowed only if its (configuration ⊕ delivery)
        class was already dispatched on an active state; otherwise the
        state wakes and explores it (``"wake"``)."""
        if event.kind == Event.RECV and self.enabled:
            key = self._delivery_key(state, event.data)
            if key is not None and key not in self.delivery_seen:
                self.delivery_seen.add(key)
                self.stats.woken += 1
                return "wake"
        self.stats.slept_events += 1
        return "sleep"

    def _delivery_key(
        self, state: ExecutionState, packet: Packet
    ) -> Optional[tuple]:
        if len(state.constraints) > MAX_FINGERPRINT_CONJUNCTS:
            return None
        self.stats.fingerprints += 1
        best = None
        for perm in self._stabilizers[state.node]:
            canon = _Canon()
            tokens = _serialize_state(state, perm, canon)
            _serialize_packet(packet, perm, canon, tokens)
            candidate = tuple(tokens)
            if best is None or candidate < best:
                best = candidate
        return best

    # -- reporting -----------------------------------------------------------

    def stats_dict(self) -> Dict[str, int]:
        out = {slot: getattr(self.stats, slot) for slot in ReduceStats.__slots__}
        out["orbits"] = len(self.seen)
        return out
