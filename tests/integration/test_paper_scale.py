"""Integration tests at (scaled) paper sizes.

These are the heavyweight end-to-end checks: full 25-node paper scenario
under SDS/COW with invariants on, cross-algorithm agreement on aggregate
metrics, and the Table-I orderings — everything short of the actual
benchmark harness.
"""

import pytest

from repro import build_engine
from repro.core import explosion_count, partition_groups
from repro.workloads import paper_grid_scenario


@pytest.fixture(scope="module")
def runs_25():
    """One 25-node paper run per compact algorithm, invariants checked."""
    results = {}
    for algorithm in ("cow", "sds"):
        engine = build_engine(
            paper_grid_scenario(25, sim_seconds=10),
            algorithm,
            check_invariants=True,
        )
        results[algorithm] = (engine, engine.run())
    return results


class TestPaper25:
    def test_completes_without_abort(self, runs_25):
        for _, report in runs_25.values():
            assert not report.aborted
            assert report.virtual_ms >= 9000

    def test_no_guest_errors(self, runs_25):
        for _, report in runs_25.values():
            assert report.error_states == []

    def test_sds_beats_cow(self, runs_25):
        sds = runs_25["sds"][1]
        cow = runs_25["cow"][1]
        assert sds.total_states < cow.total_states
        assert sds.peak_accounted_bytes() < cow.peak_accounted_bytes()
        assert sds.instructions <= cow.instructions

    def test_same_dstate_count(self, runs_25):
        # COW and SDS partition the same scenario space.
        assert runs_25["sds"][1].group_count == runs_25["cow"][1].group_count

    def test_same_explosion_count(self, runs_25):
        counts = {
            name: explosion_count(engine.mapper)
            for name, (engine, _) in runs_25.items()
        }
        assert counts["sds"] == counts["cow"]
        assert counts["sds"] > 1

    def test_sink_outcomes_match(self, runs_25):
        """Both algorithms must explore identical sets of sink behaviours."""
        outcomes = {}
        for name, (engine, _) in runs_25.items():
            address = engine.program.global_address("delivered")
            outcomes[name] = sorted(
                state.memory[address] for state in engine.states_of_node(0)
            )
        assert outcomes["sds"] == sorted(set(outcomes["cow"])) or set(
            outcomes["sds"]
        ) == set(outcomes["cow"])

    def test_sds_duplicate_free_at_scale(self, runs_25):
        from collections import Counter

        engine, _ = runs_25["sds"]
        counter = Counter(s.config_key() for s in engine.states.values())
        duplicates = [k for k, c in counter.items() if c > 1]
        assert duplicates == []

    def test_partitions_cover_all_states(self, runs_25):
        for name, (engine, _) in runs_25.items():
            partitions = partition_groups(engine.mapper)
            covered = set()
            for part in partitions:
                covered |= part.state_sids
            assert covered == set(engine.states.keys())

    def test_solver_cache_effective_when_used(self, runs_25):
        engine, _ = runs_25["sds"]
        stats = engine.solver.cache_stats()
        assert stats is not None  # cache enabled by default


class TestMapperStatsConsistency:
    def test_state_count_accounting(self):
        """total states == k + local forks + mapping forks + failure twins
        (every state is born exactly one way)."""
        engine = build_engine(paper_grid_scenario(25, sim_seconds=6), "sds")
        report = engine.run()
        k = engine.topology.node_count
        born_by_fork = sum(
            1 for s in engine.states.values() if s.forked_from is not None
        )
        assert report.total_states == k + born_by_fork

    def test_virtual_count_at_least_states(self):
        engine = build_engine(paper_grid_scenario(25, sim_seconds=6), "sds")
        engine.run()
        assert engine.mapper.virtual_count() >= len(engine.states)
