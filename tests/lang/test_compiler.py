"""Compiler tests: layout, diagnostics, and bytecode shape."""

import pytest

from repro.lang import Op, SemanticError, compile_source, disassemble


class TestLayout:
    def test_globals_get_addresses(self):
        program = compile_source("var a; var b[4]; var c;")
        assert program.globals_layout["a"] == (0, 1)
        assert program.globals_layout["b"] == (1, 4)
        assert program.globals_layout["c"] == (5, 1)
        assert program.memory_size == 6

    def test_function_frames_after_globals(self):
        program = compile_source(
            "var g; func f(a, b) { var x; var arr[3]; }"
        )
        func = program.function("f")
        assert func.param_base == 1
        assert func.frame_size == 2 + 1 + 3
        assert program.memory_size == 1 + 6

    def test_global_initializers_folded(self):
        program = compile_source(
            "const K = 4; var a = K * 2 + 1; var b = -1;"
        )
        inits = dict(program.initializers)
        assert inits[program.global_address("a")] == 9
        assert inits[program.global_address("b")] == 0xFFFFFFFF

    def test_const_referencing_const(self):
        program = compile_source("const A = 2; const B = A << 3; var x = B;")
        assert dict(program.initializers)[0] == 16

    def test_nonconstant_global_init_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("var a = b;")

    def test_strings_interned(self):
        program = compile_source(
            'func f() { symbolic("x"); symbolic("x"); symbolic("y"); }'
        )
        assert program.strings == ["x", "y"]


class TestDiagnostics:
    def test_undefined_name(self):
        with pytest.raises(SemanticError, match="undefined name"):
            compile_source("func f() { return missing; }")

    def test_undefined_function(self):
        with pytest.raises(SemanticError, match="undefined function"):
            compile_source("func f() { g(); }")

    def test_wrong_user_arity(self):
        with pytest.raises(SemanticError, match="expects 2 args"):
            compile_source("func g(a, b) { } func f() { g(1); }")

    def test_wrong_builtin_arity(self):
        with pytest.raises(SemanticError, match="builtin"):
            compile_source("func f() { node_id(1); }")

    def test_duplicate_global(self):
        with pytest.raises(SemanticError, match="duplicate"):
            compile_source("var a; var a;")

    def test_duplicate_local_in_scope(self):
        with pytest.raises(SemanticError, match="duplicate local"):
            compile_source("func f() { var x; var x; }")

    def test_shadowing_in_nested_scope_allowed(self):
        compile_source("func f() { var x; if (1) { var x; } }")

    def test_builtin_shadowing_rejected(self):
        with pytest.raises(SemanticError, match="shadows a builtin"):
            compile_source("func assert() { }")

    def test_assign_to_array_name(self):
        with pytest.raises(SemanticError, match="cannot assign"):
            compile_source("var a[4]; func f() { a = 1; }")

    def test_index_of_scalar(self):
        with pytest.raises(SemanticError, match="not an array"):
            compile_source("var a; func f() { return a[0]; }")

    def test_function_used_as_value(self):
        with pytest.raises(SemanticError, match="used as a value"):
            compile_source("func g() { } func f() { return g; }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError, match="break outside"):
            compile_source("func f() { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError, match="continue outside"):
            compile_source("func f() { continue; }")

    def test_direct_recursion_rejected(self):
        with pytest.raises(SemanticError, match="recursion"):
            compile_source("func f() { f(); }")

    def test_mutual_recursion_rejected(self):
        with pytest.raises(SemanticError, match="recursion"):
            compile_source(
                "func f() { g(); } func g() { f(); }"
            )

    def test_array_local_initializer_rejected(self):
        # The grammar itself forbids `var a[4] = 1;` (array initializers
        # don't exist in NSL), so this dies in the parser.
        from repro.lang import CompileError

        with pytest.raises(CompileError):
            compile_source("func f() { var a[4] = 1; }")


class TestCodegenShape:
    def test_array_decay_pushes_base(self):
        program = compile_source("var buf[4]; func f() { uc_send(1, buf, 4); }")
        func = program.function("f")
        segment = program.code[func.entry : func.entry + func.code_length]
        pushes = [i.arg for i in segment if i.op == Op.PUSH]
        assert program.global_address("buf") in pushes

    def test_comparison_swaps_for_gt(self):
        program = compile_source("func f(a, b) { return a > b; }")
        ops = [i.op for i in program.code]
        assert Op.SLT in ops  # a > b compiled as b < a

    def test_short_circuit_and_has_branch(self):
        program = compile_source("func f(a, b) { return a && b; }")
        ops = [i.op for i in program.code]
        assert Op.JZ in ops and Op.BOOL in ops

    def test_compound_index_assign_duplicates_index(self):
        program = compile_source("var a[4]; func f(i) { a[i] += 2; }")
        ops = [i.op for i in program.code]
        assert Op.DUP in ops and Op.LOADI in ops and Op.STOREI in ops

    def test_disassemble_runs(self):
        program = compile_source(
            "var g; func f(a) { if (a) { g = 1; } return g; }"
        )
        listing = disassemble(program)
        assert "func f(a)" in listing
        assert "JZ" in listing

    def test_every_function_ends_with_ret(self):
        program = compile_source("func f() { } func g(x) { return x; }")
        for func in program.functions:
            last = program.code[func.entry + func.code_length - 1]
            assert last.op == Op.RET
