"""Independence partitioning of constraint sets.

Two constraints are dependent when they share a variable (directly or
transitively).  Queries decompose into independent groups that can be solved
separately and whose models merge trivially — the same optimization KLEE's
``IndependentSolver`` applies, and the reason per-node path constraints stay
cheap in SDE: failure decisions of unrelated nodes never end up in the same
group.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..expr import BoolExpr, BVVar

__all__ = ["partition", "group_for"]


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[object, object] = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent is item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra is not rb:
            self._parent[ra] = rb


def partition(
    constraints: Sequence[BoolExpr],
) -> List[Tuple[List[BoolExpr], frozenset]]:
    """Split ``constraints`` into independent groups.

    Returns a list of ``(constraints, variables)`` pairs.  Ground constraints
    (no variables) form their own singleton groups.  Order inside each group
    preserves the input order (deterministic solving).
    """
    uf = _UnionFind()
    constraint_vars: List[frozenset] = []
    for constraint in constraints:
        variables = constraint.variables()
        constraint_vars.append(variables)
        it = iter(variables)
        first = next(it, None)
        if first is None:
            continue
        for other in it:
            uf.union(first, other)

    groups: Dict[object, Tuple[List[BoolExpr], set]] = {}
    ground: List[Tuple[List[BoolExpr], frozenset]] = []
    for constraint, variables in zip(constraints, constraint_vars):
        if not variables:
            ground.append(([constraint], frozenset()))
            continue
        root = uf.find(next(iter(variables)))
        bucket = groups.get(root)
        if bucket is None:
            bucket = ([], set())
            groups[root] = bucket
        bucket[0].append(constraint)
        bucket[1].update(variables)

    out = [(cs, frozenset(vs)) for cs, vs in groups.values()]
    out.extend(ground)
    return out


def group_for(
    target_vars: Iterable[BVVar],
    constraints: Sequence[BoolExpr],
) -> List[BoolExpr]:
    """The subset of ``constraints`` transitively related to ``target_vars``.

    Used when solving for specific variables (e.g. generating a test case for
    one node's inputs): unrelated constraints are dropped before solving.
    """
    relevant = set(target_vars)
    selected: List[BoolExpr] = []
    remaining = [(c, c.variables()) for c in constraints]
    progress = True
    while progress:
        progress = False
        still_remaining = []
        for constraint, variables in remaining:
            if variables & relevant:
                selected.append(constraint)
                relevant |= variables
                progress = True
            else:
                still_remaining.append((constraint, variables))
        remaining = still_remaining
    return selected
