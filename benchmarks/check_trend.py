"""Gate fresh ``BENCH_*.json`` numbers against committed baselines.

Usage::

    python benchmarks/check_trend.py BENCH_solver.json [baseline.json]

The baseline (default: ``benchmarks/baselines/<same name>``) pins the
*gated* keys — scale-free ratios and deterministic counts that should not
drift with runner hardware — each with the direction that counts as
better::

    {
      "gates": {
        "solver_group_reduction_pct": {"direction": "higher", "value": 52.3}
      },
      "recorded": { ... the full artifact the baseline was cut from ... }
    }

A gated key failing by more than ``TOLERANCE`` (25% adverse change, the
same headroom the bench asserts use for CI jitter) fails the check; a
gated key missing from the fresh artifact fails immediately — silently
dropping a measurement is how perf gates rot.  Wall-clock keys stay
ungated (they track runner hardware, and the benches themselves hold the
speedup bars); they are still printed for the log.  A fresh key that the
baseline's ``recorded`` section has never seen is printed as a
``WARNING`` line — not a failure, but a prompt to refresh the baseline —
so new measurements cannot slip past review unnoticed.

To cut a new baseline after an intentional change, re-run the bench with
``SDE_BENCH_JSON`` and copy the fresh values into the committed file.
"""

from __future__ import annotations

import json
import os
import sys

TOLERANCE = 0.25

__all__ = ["check_trend"]


def _adverse_change(direction: str, baseline: float, fresh: float) -> float:
    """Fractional regression of ``fresh`` vs ``baseline`` (<=0 is fine)."""
    if baseline == 0:
        return 0.0 if fresh == 0 else (1.0 if direction == "lower" else -1.0)
    change = (fresh - baseline) / abs(baseline)
    return -change if direction == "higher" else change


def check_trend(fresh: dict, baseline: dict, tolerance: float = TOLERANCE):
    """Return ``(failures, report_lines)`` for a fresh artifact."""
    failures = []
    lines = []
    gates = baseline.get("gates", {})
    if not gates:
        failures.append("baseline defines no gates")
    for key in sorted(gates):
        gate = gates[key]
        direction, pinned = gate["direction"], gate["value"]
        if key not in fresh:
            failures.append(f"{key}: missing from fresh artifact")
            continue
        value = fresh[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            failures.append(f"{key}: non-numeric value {value!r}")
            continue
        adverse = _adverse_change(direction, pinned, value)
        status = "ok" if adverse <= tolerance else "REGRESSION"
        lines.append(
            f"  {status:>10}  {key}: {value} vs baseline {pinned}"
            f" ({direction} is better, adverse {adverse:+.1%})"
        )
        if adverse > tolerance:
            failures.append(
                f"{key}: {value} regressed >{tolerance:.0%} vs"
                f" baseline {pinned} ({direction} is better)"
            )
    recorded = baseline.get("recorded", {})
    ungated = sorted(set(fresh) - set(gates))
    for key in ungated:
        if key in recorded:
            lines.append(f"    (ungated)  {key}: {fresh[key]}")
        else:
            # A fresh key the baseline has never seen: the bench grew a
            # measurement after the baseline was cut.  Warn instead of
            # passing silently — the next intentional baseline refresh
            # should fold it in (and gate it if it is scale-free).
            lines.append(
                f"   WARNING    {key}: {fresh[key]}"
                " (absent from baseline; refresh the baseline to track it)"
            )
    return failures, lines


def main(argv) -> int:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__)
        return 2
    fresh_path = argv[1]
    baseline_path = (
        argv[2]
        if len(argv) == 3
        else os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "baselines",
            os.path.basename(fresh_path),
        )
    )
    with open(fresh_path) as handle:
        fresh = json.load(handle)
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures, lines = check_trend(fresh, baseline)
    print(f"trend check: {fresh_path} vs {baseline_path}")
    for line in lines:
        print(line)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("trend check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
