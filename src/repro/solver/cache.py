"""Query caching for the solver.

Two layers, mirroring KLEE's caching stack:

1. **Exact cache** — the canonical frozenset of conjuncts maps to its
   result (a model, or None for unsat).  Symbolic execution re-issues nearly
   identical queries constantly (each branch adds one conjunct to an already
   solved prefix), and expressions are interned, so hashing a query is cheap.
2. **Model reuse (counterexample cache)** — before searching, recently
   produced models are evaluated against the new query; a hit proves
   satisfiability without any search.  This catches the common "the new
   conjunct was already true under the old model" case.

The model-reuse scan is bounded: each model remembers its variable-name
set, candidates whose variables are not a subset of the query's variables
are skipped without evaluation (they came from unrelated independence
groups), and at most ``max_model_scan`` models are *evaluated* per
lookup.  ``CacheStats.model_scan_steps`` counts the evaluations so the
ablation benchmark can report the scan cost directly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..expr import BoolExpr, BVVar
from .model import Model

__all__ = ["SolverCache", "CacheStats"]


class CacheStats:
    """Counters exposed for the solver-ablation benchmark."""

    __slots__ = (
        "exact_hits",
        "model_reuse_hits",
        "misses",
        "stores",
        "model_scan_steps",
    )

    def __init__(self) -> None:
        self.exact_hits = 0
        self.model_reuse_hits = 0
        self.misses = 0
        self.stores = 0
        #: total model evaluations performed by the reuse scan
        self.model_scan_steps = 0

    def as_dict(self) -> dict:
        return {
            "exact_hits": self.exact_hits,
            "model_reuse_hits": self.model_reuse_hits,
            "misses": self.misses,
            "stores": self.stores,
            "model_scan_steps": self.model_scan_steps,
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(exact={self.exact_hits},"
            f" reuse={self.model_reuse_hits}, misses={self.misses})"
        )


_MISS = object()


class SolverCache:
    """Bounded LRU cache of query results plus a model-reuse pool."""

    def __init__(
        self,
        max_entries: int = 65536,
        max_models: int = 256,
        max_model_scan: int = 64,
    ) -> None:
        self._exact: "OrderedDict[FrozenSet[BoolExpr], Optional[Model]]" = (
            OrderedDict()
        )
        self._models: "OrderedDict[Model, None]" = OrderedDict()
        self._model_vars: Dict[Model, FrozenSet[str]] = {}
        self._max_entries = max_entries
        self._max_models = max_models
        self._max_model_scan = max_model_scan
        self.stats = CacheStats()
        #: how the most recent lookup was answered ("exact"/"model"/"miss");
        #: read by the solver's trace instrumentation.
        self.last_outcome = "miss"

    @staticmethod
    def key(constraints: Iterable[BoolExpr]) -> FrozenSet[BoolExpr]:
        return frozenset(constraints)

    def lookup(
        self,
        key: FrozenSet[BoolExpr],
        variables: Optional[Iterable[BVVar]] = None,
    ) -> Tuple[bool, Optional[Model]]:
        """Return ``(hit, result)``; result is a Model or None (unsat).

        ``variables``: the query's variable set when the caller knows it
        (the solver passes each independence group's variables).  Models
        assigning any variable outside the query are skipped without
        evaluation — they were produced for unrelated groups and reusing
        them would leak unconstrained assignments into the merged model.
        """
        result = self._exact.get(key, _MISS)
        if result is not _MISS:
            self._exact.move_to_end(key)
            self.stats.exact_hits += 1
            self.last_outcome = "exact"
            return True, result  # type: ignore[return-value]
        # Model reuse: most recently stored models first, at most
        # max_model_scan evaluations.
        query_names = (
            None
            if variables is None
            else frozenset(v.name for v in variables)
        )
        evaluated = 0
        for model in reversed(self._models):
            if evaluated >= self._max_model_scan:
                break
            if query_names is not None and not (
                self._model_vars[model] <= query_names
            ):
                continue
            evaluated += 1
            if model.satisfies(key):
                self.stats.model_scan_steps += evaluated
                self.stats.model_reuse_hits += 1
                self.last_outcome = "model"
                return True, model
        self.stats.model_scan_steps += evaluated
        self.stats.misses += 1
        self.last_outcome = "miss"
        return False, None

    def store(self, key: FrozenSet[BoolExpr], result: Optional[Model]) -> None:
        self.stats.stores += 1
        self._exact[key] = result
        self._exact.move_to_end(key)
        while len(self._exact) > self._max_entries:
            self._exact.popitem(last=False)
        if result is not None:
            self._models[result] = None
            self._model_vars[result] = frozenset(result)
            self._models.move_to_end(result)
            while len(self._models) > self._max_models:
                evicted, _ = self._models.popitem(last=False)
                self._model_vars.pop(evicted, None)

    def clear(self) -> None:
        self._exact.clear()
        self._models.clear()
        self._model_vars.clear()

    def __len__(self) -> int:
        return len(self._exact)
