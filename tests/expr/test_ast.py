"""Structural properties of the expression DAG: interning, hashing, walks."""

import pytest

from repro.expr import (
    add,
    and_,
    bv,
    eq,
    intern_stats,
    mask,
    to_signed,
    to_unsigned,
    ult,
    var,
)


class TestHelpers:
    def test_mask(self):
        assert mask(1) == 1
        assert mask(8) == 255
        assert mask(32) == 0xFFFFFFFF

    def test_to_signed_positive(self):
        assert to_signed(5, 8) == 5
        assert to_signed(127, 8) == 127

    def test_to_signed_negative(self):
        assert to_signed(255, 8) == -1
        assert to_signed(128, 8) == -128
        assert to_signed(0xFFFFFFFF, 32) == -1

    def test_to_signed_truncates_wide_input(self):
        assert to_signed(0x1FF, 8) == -1

    def test_to_unsigned_roundtrip(self):
        for value in (-128, -1, 0, 1, 127):
            assert to_signed(to_unsigned(value, 8), 8) == value


class TestInterning:
    def test_constants_are_interned(self):
        assert bv(42, 32) is bv(42, 32)

    def test_constants_distinguish_width(self):
        assert bv(42, 32) is not bv(42, 8)

    def test_constant_value_truncated(self):
        assert bv(256, 8).value == 0
        assert bv(-1, 8).value == 255

    def test_vars_are_interned(self):
        assert var("x", 32) is var("x", 32)
        assert var("x", 32) is not var("y", 32)

    def test_composite_interning(self):
        x, y = var("x"), var("y")
        assert add(x, y) is add(x, y)
        assert eq(x, y) is eq(x, y)

    def test_structural_equality_is_identity(self):
        x = var("x")
        e1 = add(x, bv(1))
        e2 = add(x, bv(1))
        assert e1 == e2 and e1 is e2

    def test_intern_stats_grow(self):
        before = intern_stats()[0]
        var("totally_fresh_variable_name_xyz", 16)
        assert intern_stats()[0] == before + 1


class TestTraversal:
    def test_variables_of_leaf(self):
        x = var("x")
        assert x.variables() == frozenset([x])
        assert bv(3).variables() == frozenset()

    def test_variables_of_composite(self):
        x, y = var("x"), var("y")
        expr = and_(eq(x, bv(0)), ult(y, bv(10)))
        assert expr.variables() == frozenset([x, y])

    def test_walk_visits_each_node_once(self):
        x = var("x")
        shared = add(x, bv(1))
        expr = add(shared, shared)  # folded to (x+1)+(x+1) -> reassociated
        nodes = list(expr.walk())
        assert len(nodes) == len({id(n) for n in nodes})

    def test_size_counts_dag_nodes(self):
        x = var("x")
        expr = eq(add(x, bv(1)), bv(5))
        # eq, add-result (folded to x ... ) -- just require consistency
        assert expr.size() == len(list(expr.walk()))


class TestReprs:
    def test_const_repr(self):
        assert repr(bv(7, 8)) == "7#8"

    def test_var_repr(self):
        assert repr(var("n1.drop0", 1)) == "n1.drop0#1"

    def test_cmp_repr_mentions_op(self):
        x = var("x")
        assert "ult" in repr(ult(x, bv(5)))


class TestSortSeparation:
    def test_cmp_is_bool(self):
        assert eq(var("x"), bv(0)).is_bool

    def test_bv_is_not_bool(self):
        assert not add(var("x"), bv(1)).is_bool

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            add(var("a", 8), var("b", 16))
        with pytest.raises(ValueError):
            eq(var("a", 8), bv(0, 32))

    def test_bool_const_identity(self):
        from repro.expr import false, true

        assert true() is true()
        assert false() is not true()
