"""Instruction-coverage tracking across symbolic exploration."""

from repro.lang import compile_source
from repro.solver import Solver
from repro.vm import Executor, coverage_report


def run_and_report(source, entry="main", args=()):
    program = compile_source(source)
    executor = Executor(program, Solver())
    state = executor.make_initial_state(0)
    executor.run_event(state, entry, args)
    return coverage_report(program, executor.visited_pcs), executor, program


class TestCoverage:
    def test_straight_line_is_fully_covered(self):
        report, _, _ = run_and_report("var r; func main() { r = 1 + 2; }")
        assert report.fraction == 1.0
        assert report.uncovered_functions() == []

    def test_untaken_branch_is_uncovered_concretely(self):
        report, _, _ = run_and_report(
            "var r; func main() { if (0) { r = 1; } else { r = 2; } }"
        )
        assert 0 < report.fraction < 1.0
        main = next(f for f in report.functions if f.name == "main")
        assert main.missed_lines  # the dead then-branch

    def test_symbolic_execution_covers_both_branches(self):
        report, _, _ = run_and_report(
            """
            var r;
            func main() {
                var x = symbolic("x");
                if (x) { r = 1; } else { r = 2; }
            }
            """
        )
        assert report.fraction == 1.0

    def test_uncalled_function_reported(self):
        report, _, _ = run_and_report(
            "func helper() { return 1; } func main() { }"
        )
        assert "helper" in report.uncovered_functions()
        assert report.fraction < 1.0

    def test_coverage_accumulates_across_events(self):
        source = """
        var r;
        func main(which) {
            if (which) { r = 1; } else { r = 2; }
        }
        """
        program = compile_source(source)
        executor = Executor(program, Solver())
        for which in (0, 1):
            state = executor.make_initial_state(0)
            executor.run_event(state, "main", [which])
        report = coverage_report(program, executor.visited_pcs)
        assert report.fraction == 1.0

    def test_render_contains_totals(self):
        report, _, _ = run_and_report("func main() { }")
        text = report.render()
        assert "TOTAL" in text
        assert "main" in text

    def test_assume_prunes_coverage(self):
        report, _, _ = run_and_report(
            """
            var r;
            func main() {
                var x = symbolic("x");
                assume(x < 5);
                if (x > 100) { r = 1; }   // unreachable under the assume
                else { r = 2; }
            }
            """
        )
        assert report.fraction < 1.0
