"""Parser tests: program structure, precedence, error reporting."""

import pytest

from repro.lang import ParseError, parse
from repro.lang import nodes as N


def parse_expr(text):
    program = parse(f"func t() {{ return {text}; }}")
    return program.funcs[0].body.statements[0].value


class TestTopLevel:
    def test_empty_program(self):
        program = parse("")
        assert program.globals == [] and program.funcs == []

    def test_global_scalar(self):
        program = parse("var x; var y = 5;")
        assert program.globals[0].name == "x"
        assert program.globals[0].size is None
        assert program.globals[1].init.value == 5

    def test_global_array(self):
        program = parse("var buf[8];")
        assert program.globals[0].size == 8

    def test_zero_size_array_rejected(self):
        with pytest.raises(ParseError):
            parse("var buf[0];")

    def test_const(self):
        program = parse("const LIMIT = 10;")
        assert program.consts[0].name == "LIMIT"

    def test_func_params(self):
        program = parse("func f(a, b, c) { }")
        assert program.funcs[0].params == ["a", "b", "c"]

    def test_junk_at_top_level(self):
        with pytest.raises(ParseError):
            parse("x = 1;")


class TestStatements:
    def test_if_else_chain(self):
        program = parse(
            """
            func f(x) {
                if (x == 0) { return 1; }
                else if (x == 1) { return 2; }
                else { return 3; }
            }
            """
        )
        outer = program.funcs[0].body.statements[0]
        assert isinstance(outer, N.If)
        nested = outer.orelse.statements[0]
        assert isinstance(nested, N.If)
        assert nested.orelse is not None

    def test_while(self):
        program = parse("func f() { while (1) { break; } }")
        loop = program.funcs[0].body.statements[0]
        assert isinstance(loop, N.While)
        assert isinstance(loop.body.statements[0], N.Break)

    def test_for_full(self):
        program = parse("func f() { for (var i = 0; i < 4; i += 1) { } }")
        loop = program.funcs[0].body.statements[0]
        assert isinstance(loop.init, N.VarDecl)
        assert loop.init.init.value == 0
        assert isinstance(loop.cond, N.Binary)
        assert loop.step.op == "+"

    def test_for_with_assignment_init(self):
        program = parse("func f(i) { for (i = 0; i < 4; i += 1) { } }")
        loop = program.funcs[0].body.statements[0]
        assert isinstance(loop.init, N.Assign)

    def test_for_empty_header(self):
        program = parse("func f() { for (;;) { break; } }")
        loop = program.funcs[0].body.statements[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_return_void(self):
        program = parse("func f() { return; }")
        assert program.funcs[0].body.statements[0].value is None

    def test_local_var(self):
        program = parse("func f() { var x = 1; var a[4]; }")
        statements = program.funcs[0].body.statements
        assert statements[0].init.value == 1
        assert statements[1].size == 4

    def test_assignment_forms(self):
        program = parse("func f() { x = 1; a[2] = 3; x += 4; a[0] <<= 1; }")
        statements = program.funcs[0].body.statements
        assert statements[0].op is None
        assert isinstance(statements[1].target, N.Index)
        assert statements[2].op == "+"
        assert statements[3].op == "<<"

    def test_bad_assign_target(self):
        with pytest.raises(ParseError):
            parse("func f() { 1 = 2; }")

    def test_expression_statement(self):
        program = parse("func f() { g(); }")
        assert isinstance(program.funcs[0].body.statements[0], N.ExprStmt)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("func f() { x = 1 }")


class TestExpressionPrecedence:
    def test_mul_binds_tighter_than_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_shift_vs_relational(self):
        expr = parse_expr("1 << 2 < 3")
        assert expr.op == "<"
        assert expr.left.op == "<<"

    def test_bitand_vs_equality(self):
        # C precedence: == binds tighter than &
        expr = parse_expr("a & b == c")
        assert expr.op == "&"
        assert expr.right.op == "=="

    def test_logical_lowest(self):
        expr = parse_expr("a == 1 && b == 2 || c == 3")
        assert isinstance(expr, N.Logical) and expr.op == "||"
        assert expr.left.op == "&&"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_chain(self):
        expr = parse_expr("-~!x")
        assert expr.op == "-"
        assert expr.operand.op == "~"
        assert expr.operand.operand.op == "!"

    def test_ternary_right_associative(self):
        expr = parse_expr("a ? 1 : b ? 2 : 3")
        assert isinstance(expr, N.Ternary)
        assert isinstance(expr.orelse, N.Ternary)

    def test_index(self):
        expr = parse_expr("buf[i + 1]")
        assert isinstance(expr, N.Index)
        assert expr.base == "buf"
        assert expr.index.op == "+"

    def test_call_args(self):
        expr = parse_expr("f(1, x, g())")
        assert isinstance(expr, N.Call)
        assert len(expr.args) == 3
        assert isinstance(expr.args[2], N.Call)

    def test_string_argument(self):
        expr = parse_expr('symbolic("drop")')
        assert isinstance(expr.args[0], N.StrLit)

    def test_indexing_non_name_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("f()[0]")
