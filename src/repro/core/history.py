"""Communication histories and conflict detection (paper Section II-B).

The communication history of a state is the sequence of packets it sent or
received.  Two states are in *direct conflict* when their histories
contradict: one sent a packet to the other's node that the other never
received, or one received a packet from the other's node that the other
never sent.

The mapping algorithms never consult histories (the paper: "The
communication history is not required to be stored: it is simply a construct
to find a solution for the state mapping problem") — but this reproduction
stores them anyway because they power the invariant checks in the test
suite: every dstate must be pairwise conflict-free at all times.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from ..vm.state import ExecutionState

__all__ = [
    "sent_to",
    "received_from",
    "in_direct_conflict",
    "conflict_free",
    "find_conflicts",
]


def sent_to(state: ExecutionState, node: int) -> Set[int]:
    """Packet ids ``state`` sent whose destination node is ``node``."""
    return {pid for kind, pid, peer in state.history if kind == "tx" and peer == node}


def received_from(state: ExecutionState, node: int) -> Set[int]:
    """Packet ids ``state`` received that originated at ``node``."""
    return {pid for kind, pid, peer in state.history if kind == "rx" and peer == node}


def in_direct_conflict(a: ExecutionState, b: ExecutionState) -> bool:
    """Direct conflict per the paper's definition (Section II-B).

    Only defined for states of *different* nodes; two states of the same
    node conflict iff their histories differ at all (they cannot coexist in
    one dscenario anyway, but dstates allow them when histories agree).
    """
    if a.node == b.node:
        return a.history != b.history
    if sent_to(a, b.node) != received_from(b, a.node):
        return True
    if sent_to(b, a.node) != received_from(a, b.node):
        return True
    return False


def conflict_free(states: Iterable[ExecutionState]) -> bool:
    """Are all pairs of ``states`` free of direct conflicts?"""
    return not find_conflicts(states)


def find_conflicts(
    states: Iterable[ExecutionState],
) -> List[Tuple[ExecutionState, ExecutionState]]:
    """All directly conflicting pairs (diagnostics for invariant failures)."""
    states = list(states)
    conflicts = []
    for i, a in enumerate(states):
        for b in states[i + 1 :]:
            if in_direct_conflict(a, b):
                conflicts.append((a, b))
    return conflicts
