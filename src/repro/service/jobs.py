"""The job manager: admission control, supervision, retry, drain, recover.

This is the long-lived coordinator the distributed-exploration line of
work presumes — the part of the service where robustness lives:

- **Backpressure** — a bounded admission queue (HTTP 429 once full, with
  a Retry-After hint) and a per-client live-job cap, so one hot client
  cannot starve the rest or balloon memory.
- **Supervision** — each attempt runs in a subprocess polled for results,
  death, and deadline (the asyncio port of
  :class:`repro.core.resilience.WorkerSupervisor`); failures become typed
  :class:`~repro.core.resilience.WorkerFailure` records on the job.
- **Retry** — crashed/raising attempts are retried with the deterministic
  seeded exponential backoff of :class:`~repro.core.resilience.RetryPolicy`
  (seeded by the submission's ``seed``); retries *resume from the job's
  latest checkpoint*, so work done before a crash is never redone and the
  final report is pinned equal to a fault-free run.
- **Budgets** — an optional per-job wall budget spanning all attempts;
  exceeding it is the terminal ``timeout`` state, not a retry.
- **Graceful drain** — on SIGTERM the service stops admitting, kills the
  in-flight workers (their checkpoints are already on disk), marks their
  records back to ``queued``/interrupted, and exits; the next boot
  recovers every non-terminal record and resumes from checkpoints.
- **Dedup** — submissions are content-addressed
  (:meth:`~repro.service.spec.SubmissionSpec.digest`); a digest already
  ``done`` in the store is answered from the cache, one still in flight
  coalesces onto the live job.

All coordination state lives on one asyncio loop — no locks; the only
concurrency is worker subprocesses and the store's atomic file writes.
"""

from __future__ import annotations

import asyncio
import pickle
import queue as queue_module
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from ..core.resilience import (
    RetryPolicy,
    WorkerFailure,
    chaos_kill_requested,
)
from ..obs.metrics import MetricsRegistry
from .spec import SubmissionSpec
from .store import JobRecord, RunStore
from .worker import job_entry

__all__ = [
    "AdmissionError",
    "ClientCapExceeded",
    "Draining",
    "JobManager",
    "QueueFull",
    "ServiceLimits",
]


@dataclass(frozen=True)
class ServiceLimits:
    """Every robustness knob of the service, in one frozen object."""

    #: queued (not yet running) submissions the service will hold
    max_queue: int = 64
    #: jobs executing concurrently (each is one worker subprocess)
    max_active: int = 2
    #: live (queued+running) jobs any one client may hold
    per_client: int = 8
    #: per-job wall budget across all attempts; None = unbudgeted
    job_timeout_seconds: Optional[float] = None
    #: retries after the first attempt (total attempts = max_retries + 1)
    max_retries: int = 2
    #: engine checkpoint cadence inside job workers, in executed events
    checkpoint_every_events: int = 25
    #: subprocess poll granularity; bounds crash-detection latency
    poll_interval_seconds: float = 0.02
    #: first-retry backoff (doubles per retry, seeded jitter on top)
    backoff_base_seconds: float = 0.05

    def retry_policy(self, seed: int) -> RetryPolicy:
        return RetryPolicy(
            max_retries=self.max_retries,
            backoff_base_seconds=self.backoff_base_seconds,
            seed=seed,
        )


class AdmissionError(Exception):
    """A submission was refused; ``reason`` keys the obs counter."""

    reason = "rejected"
    #: suggested client backoff, surfaced as HTTP Retry-After
    retry_after_seconds = 1.0


class QueueFull(AdmissionError):
    reason = "queue_full"


class ClientCapExceeded(AdmissionError):
    reason = "client_cap"


class Draining(AdmissionError):
    reason = "draining"
    retry_after_seconds = 5.0


class _ActiveJob:
    """Supervision state for one in-flight job."""

    __slots__ = ("record", "task", "process", "cancelled")

    def __init__(self, record: JobRecord) -> None:
        self.record = record
        self.task: Optional[asyncio.Task] = None
        self.process = None
        self.cancelled = False


class JobManager:
    """Owns the queue, the active set, and every job state transition."""

    def __init__(
        self,
        store: RunStore,
        limits: Optional[ServiceLimits] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace=None,
        context=None,
    ) -> None:
        self.store = store
        self.limits = limits or ServiceLimits()
        self.metrics = metrics or MetricsRegistry()
        self.trace = trace
        if context is None:
            import multiprocessing

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context("spawn")
        self._context = context
        self.draining = False
        self.queue: Deque[str] = deque()
        self.active: Dict[str, _ActiveJob] = {}
        #: digest -> live (queued or running) job id, for coalescing
        self._live_digests: Dict[str, str] = {}
        self._client_load: Dict[str, int] = {}
        self._wake = asyncio.Event()
        self._scheduler_task: Optional[asyncio.Task] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> int:
        """Recover interrupted jobs from the store; start the scheduler."""
        recovered = 0
        for record in self.store.interrupted_records():
            self.store.mark(record, "queued", interrupted=True)
            self._admit_live(record)
            recovered += 1
        if recovered:
            self.metrics.counter("service.recovered").inc(recovered)
            self._emit("service.recover", jobs=recovered)
        self._scheduler_task = asyncio.create_task(self._scheduler())
        self._kick()
        return recovered

    async def drain(self) -> Tuple[int, int]:
        """Stop admitting, checkpoint-and-park in-flight jobs, settle.

        Returns ``(parked_running, still_queued)``.  Running workers are
        terminated — their latest checkpoint is already durable on disk —
        and their records marked back to ``queued``/interrupted so the
        next boot resumes them.  Queued records simply stay queued in the
        store.
        """
        if self.draining:
            return 0, len(self.queue)
        self.draining = True
        parked = len(self.active)
        self._emit("service.drain", active=parked, queued=len(self.queue))
        self.metrics.counter("service.drained").inc(1)
        for active in list(self.active.values()):
            process = active.process
            if process is not None and process.is_alive():
                process.terminate()
        # The per-job supervision loops observe `draining`, park their
        # records, and exit; wait for all of them.
        tasks = [a.task for a in self.active.values() if a.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
            self._scheduler_task = None
        return parked, len(self.queue)

    # -- admission -----------------------------------------------------------

    def submit(
        self, spec: SubmissionSpec, client: str = "anon"
    ) -> Tuple[JobRecord, str]:
        """Admit one submission.

        Returns ``(record, disposition)`` where disposition is ``"fresh"``
        (a new job was queued), ``"cached"`` (a done run with the same
        digest was served from the store), or ``"coalesced"`` (an
        identical submission is already live; the caller shares it).
        Raises :class:`AdmissionError` subclasses on refusal.
        """
        if self.draining:
            self._reject(Draining)
        digest = spec.digest()

        live_id = self._live_digests.get(digest)
        if live_id is not None:
            record = self.store.load(live_id)
            if record is not None and not record.terminal:
                self.metrics.counter("service.dedup.coalesced").inc(1)
                self._emit_submit(spec, dedup="coalesced")
                return record, "coalesced"
            self._live_digests.pop(digest, None)

        cached_id = self.store.lookup_digest(digest)
        if cached_id is not None:
            record = self.store.load(cached_id)
            if record is not None:
                self.metrics.counter("service.dedup.cached").inc(1)
                self._emit_submit(spec, dedup="cached")
                return record, "cached"

        if len(self.queue) >= self.limits.max_queue:
            self._reject(QueueFull)
        if self._client_load.get(client, 0) >= self.limits.per_client:
            self._reject(ClientCapExceeded)

        record = self.store.allocate(spec, client)
        self._admit_live(record)
        self.metrics.counter("service.submitted").inc(1)
        self._emit_submit(spec, dedup="none")
        self._kick()
        return record, "fresh"

    def _admit_live(self, record: JobRecord) -> None:
        self.queue.append(record.id)
        self._live_digests[record.digest] = record.id
        self._client_load[record.client] = (
            self._client_load.get(record.client, 0) + 1
        )

    def _reject(self, error_type) -> None:
        self.metrics.counter(f"service.rejected.{error_type.reason}").inc(1)
        self._emit("service.reject", reason=error_type.reason)
        raise error_type()

    # -- cancellation ---------------------------------------------------------

    def cancel(self, job_id: str) -> Optional[JobRecord]:
        """Cancel a queued or running job; terminal jobs are left alone."""
        record = self.store.load(job_id)
        if record is None:
            return None
        if record.terminal:
            return record
        active = self.active.get(job_id)
        if active is not None:
            # The supervision loop observes the flag, terminates the
            # worker, and marks the record.
            active.cancelled = True
            if active.process is not None and active.process.is_alive():
                active.process.terminate()
            return record
        if job_id in self.queue:
            self.queue.remove(job_id)
            record = self.store.mark(record, "cancelled")
            self._settle_live(record)
            self._finish_metrics(record)
        return record

    # -- scheduling -----------------------------------------------------------

    def _kick(self) -> None:
        self._wake.set()

    async def _scheduler(self) -> None:
        while True:
            while (
                self.queue
                and len(self.active) < self.limits.max_active
                and not self.draining
            ):
                job_id = self.queue.popleft()
                record = self.store.load(job_id)
                if record is None or record.terminal:
                    continue
                active = _ActiveJob(record)
                self.active[job_id] = active
                active.task = asyncio.create_task(self._run_job(active))
            self._wake.clear()
            await self._wake.wait()

    # -- job execution --------------------------------------------------------

    async def _run_job(self, active: _ActiveJob) -> None:
        record = active.record
        loop = asyncio.get_event_loop()
        policy = self.limits.retry_policy(seed=record.spec.seed)
        deadline = None
        if self.limits.job_timeout_seconds is not None:
            deadline = loop.time() + self.limits.job_timeout_seconds
        try:
            self.store.mark(record, "running")
            while True:
                attempt = record.attempts
                record.attempts = attempt + 1
                self.store.save(record)
                self._emit("service.job.start", job=record.id, attempt=attempt)
                kind, detail = await self._attempt(active, attempt, deadline)

                if kind == "ok":
                    self.store.mark(record, "done", result=detail)
                    self.store.publish_digest(record.digest, record.id)
                    return
                if kind == "drained":
                    # Parked, not terminal: back to queued for the next
                    # service life, checkpoint already on disk.
                    self.store.mark(
                        record, "queued", interrupted=True
                    )
                    return
                if kind == "cancelled":
                    self.store.mark(record, "cancelled")
                    return
                if kind == "timeout":
                    self.store.mark(record, "timeout", failure=detail)
                    return

                # crash or exception: retry with seeded backoff, resuming
                # from the job's checkpoint if one was written.
                record.failure = detail
                record.retries += 1
                if record.attempts > policy.max_retries:
                    self.store.mark(record, "failed", failure=detail)
                    return
                self.metrics.counter("service.retries").inc(1)
                self._emit(
                    "service.job.retry", job=record.id, attempt=record.attempts
                )
                await asyncio.sleep(
                    policy.backoff_seconds(0, record.attempts)
                )
        finally:
            self.active.pop(record.id, None)
            final = self.store.load(record.id) or record
            if final.terminal:
                self._settle_live(final)
                self._finish_metrics(final)
                self._emit(
                    "service.job.done", job=final.id, state=final.state
                )
            self._kick()

    async def _attempt(
        self, active: _ActiveJob, attempt: int, deadline: Optional[float]
    ) -> Tuple[str, Optional[dict]]:
        """One subprocess attempt; returns ``(kind, detail)``.

        ``kind``: ``ok`` / ``exception`` / ``crash`` / ``timeout`` /
        ``cancelled`` / ``drained``.
        """
        record = active.record
        loop = asyncio.get_event_loop()
        kill_after = self._chaos_kill_after(record.id, attempt)
        payload = pickle.dumps(
            {
                "spec": record.spec.as_dict(),
                "trace_path": self.store.trace_path(record.id),
                "report_path": self.store.report_path(record.id),
                "checkpoint_path": self.store.checkpoint_path(record.id),
                "checkpoint_every": self.limits.checkpoint_every_events,
                "kill_after": kill_after,
            }
        )
        result_queue = self._context.Queue()
        process = self._context.Process(
            target=job_entry, args=(payload, result_queue, attempt)
        )
        process.start()
        active.process = process
        poll = self.limits.poll_interval_seconds
        try:
            while True:
                outcome = self._poll_queue(result_queue)
                if outcome is not None:
                    process.join()
                    if isinstance(outcome, WorkerFailure):
                        return "exception", outcome.as_dict()
                    return "ok", outcome
                if self.draining:
                    return "drained", None
                if active.cancelled:
                    return "cancelled", None
                if not process.is_alive():
                    # The queue feeder flushes before exit: one last poll
                    # before declaring the worker lost.
                    await asyncio.sleep(poll)
                    outcome = self._poll_queue(result_queue)
                    if outcome is not None:
                        process.join()
                        if isinstance(outcome, WorkerFailure):
                            return "exception", outcome.as_dict()
                        return "ok", outcome
                    process.join()
                    return "crash", self._failure_dict(
                        record,
                        "crash",
                        "job worker died without reporting a result"
                        f" (exitcode {process.exitcode})",
                        attempt,
                        exitcode=process.exitcode,
                    )
                if deadline is not None and loop.time() > deadline:
                    process.terminate()
                    process.join()
                    return "timeout", self._failure_dict(
                        record,
                        "timeout",
                        "job exceeded its wall budget of"
                        f" {self.limits.job_timeout_seconds}s",
                        attempt,
                    )
                await asyncio.sleep(poll)
        finally:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - SIGTERM sufficed so far
                process.kill()
                process.join(timeout=5.0)
            active.process = None

    def _chaos_kill_after(self, job_id: str, attempt: int) -> Optional[int]:
        """Chaos: should this attempt die mid-run, and after how many
        trace events?  Deterministic per (job, attempt)."""
        if not chaos_kill_requested(attempt, token=f"svc:{job_id}"):
            return None
        self.metrics.counter("service.chaos.kills_planned").inc(1)
        # Spread across the whole run: early kills exercise the
        # fresh-restart path, late kills (past the first checkpoint)
        # exercise resume.  A kill point beyond the run's trace length
        # simply never fires — chaos is best-effort by design.
        return random.Random(f"svc-kill:{job_id}:{attempt}").randrange(0, 96)

    @staticmethod
    def _poll_queue(result_queue):
        try:
            blob = result_queue.get_nowait()
        except queue_module.Empty:
            return None
        return pickle.loads(blob)

    def _failure_dict(
        self, record: JobRecord, kind: str, message: str, attempt: int, **extra
    ) -> dict:
        return WorkerFailure(
            task_index=0,
            kind=kind,
            message=message,
            attempts=attempt + 1,
            **extra,
        ).as_dict()

    # -- bookkeeping -----------------------------------------------------------

    def _settle_live(self, record: JobRecord) -> None:
        if self._live_digests.get(record.digest) == record.id:
            del self._live_digests[record.digest]
        load = self._client_load.get(record.client, 0) - 1
        if load > 0:
            self._client_load[record.client] = load
        else:
            self._client_load.pop(record.client, None)

    def _finish_metrics(self, record: JobRecord) -> None:
        self.metrics.counter(f"service.jobs.{record.state}").inc(1)

    def _emit(self, ev: str, **fields) -> None:
        if self.trace is not None:
            self.trace.emit(ev, **fields)

    def _emit_submit(self, spec: SubmissionSpec, dedup: str) -> None:
        self._emit(
            "service.submit",
            workload=spec.workload,
            algorithm=spec.algorithm,
            dedup=dedup,
        )

    # -- introspection ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Live queue/active view for ``GET /v1/stats``."""
        return {
            "draining": self.draining,
            "queued": len(self.queue),
            "active": len(self.active),
            "clients": dict(sorted(self._client_load.items())),
        }
