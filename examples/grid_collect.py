#!/usr/bin/env python3
"""The paper's evaluation scenario: grid data collection with symbolic drops.

A side x side Contiki-like grid (Figure 9): the bottom-right node produces a
reading every simulated second; on-path nodes forward it hop by hop along
the preconfigured static route to the sink in the top-left corner; nodes on
the data path and their neighbours may symbolically drop the first packet.

Runs the scenario under COB, COW and SDS and prints a Table-I-style
comparison plus the delivery outcomes SDE explored at the sink.

Run: ``python examples/grid_collect.py [side] [sim_seconds]``
     (defaults: side=4, sim_seconds=5; the paper uses 5/7/10 and 10 s)
"""

import sys
from collections import Counter

from repro.api import build_engine
from repro.bench import render_table1
from repro.bench.runner import BenchRow
from repro.workloads import grid_scenario


def main() -> int:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    sim_seconds = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    nodes = side * side

    scenario = grid_scenario(side, sim_seconds=sim_seconds)
    topology = scenario.topology
    source, sink = nodes - 1, 0
    route = topology.route(source, sink)
    on_path, neighbors, bystanders = topology.path_roles(source, sink)
    print(f"{side}x{side} grid, source={source} -> sink={sink}")
    print(f"static route ({len(route) - 1} hops): {route}")
    print(
        f"roles: {len(on_path)} on-path, {len(neighbors)} overhearing"
        f" neighbours, {len(bystanders)} bystander nodes\n"
    )

    rows = []
    engines = {}
    for algorithm in ("cob", "cow", "sds"):
        engine = build_engine(
            grid_scenario(side, sim_seconds=sim_seconds),
            algorithm,
            max_states=200_000 if algorithm == "cob" else None,
            max_wall_seconds=60.0 if algorithm == "cob" else None,
        )
        report = engine.run()
        rows.append(BenchRow(scenario.name, report))
        engines[algorithm] = engine

    print(render_table1(rows, f"{nodes}-node grid with symbolic packet drops"))
    print()

    # What did SDE find?  Every distinct delivery outcome at the sink.
    sds = engines["sds"]
    delivered_address = sds.program.global_address("delivered")
    outcomes = Counter(
        state.memory[delivered_address] for state in sds.states_of_node(sink)
    )
    print("sink delivery outcomes explored (delivered-count -> #states):")
    for delivered in sorted(outcomes):
        print(f"  {delivered:3d} packets delivered: {outcomes[delivered]} states")
    print(
        "\nEach outcome corresponds to a concrete, replayable drop pattern;"
        "\nuse repro.core.generate_incrementally() to emit the test cases."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
