"""Interval verdict functions and the strengthened signed narrowing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import (
    Interval,
    bv,
    bvxor,
    cmp_verdict,
    cond_verdict,
    eq,
    evaluate,
    interval_eval,
    ite,
    neg,
    signed_extrema,
    slt,
    to_signed,
    var,
)
from repro.solver import Solver

X = var("x")
Y = var("y")


class TestSignedExtrema:
    def test_non_straddling_positive(self):
        assert signed_extrema(Interval(3, 9), 8) == (3, 9)

    def test_non_straddling_negative(self):
        assert signed_extrema(Interval(0xF0, 0xFF), 8) == (-16, -1)

    def test_straddling_covers_full_signed_range(self):
        assert signed_extrema(Interval(0, 255), 8) == (-128, 127)
        assert signed_extrema(Interval(100, 200), 8) == (-128, 127)

    @settings(max_examples=200)
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_extrema_bound_all_members(self, lo, hi, value):
        lo, hi = min(lo, hi), max(lo, hi)
        value = lo + value % (hi - lo + 1)
        smin, smax = signed_extrema(Interval(lo, hi), 8)
        assert smin <= to_signed(value, 8) <= smax


class TestCmpVerdict:
    def test_decided_unsigned(self):
        assert cmp_verdict("ult", Interval(0, 4), Interval(5, 9), 8) is True
        assert cmp_verdict("ult", Interval(9, 12), Interval(0, 9), 8) is False
        assert cmp_verdict("ult", Interval(0, 6), Interval(5, 9), 8) is None

    def test_decided_signed_across_wrap(self):
        negative = Interval(0x80, 0xFF)  # [-128, -1]
        positive = Interval(0, 0x7F)
        assert cmp_verdict("slt", negative, positive, 8) is True
        assert cmp_verdict("sle", positive, negative, 8) is False

    def test_eq_verdicts(self):
        assert cmp_verdict("eq", Interval.of(5), Interval.of(5), 8) is True
        assert cmp_verdict("eq", Interval(0, 3), Interval(4, 9), 8) is False
        assert cmp_verdict("ne", Interval(0, 3), Interval(4, 9), 8) is True


class TestCondVerdict:
    def test_ite_condition_resolution_in_intervals(self):
        # abs(x) with x provably negative: forward interval follows the
        # then-branch only.
        a = ite(slt(X, bv(0)), neg(X), X)
        domains = {X: Interval(0xFFFFFFF0, 0xFFFFFFFF)}  # [-16, -1]
        result = interval_eval(a, domains)
        assert result == Interval(1, 16)

    def test_undecided_condition_joins(self):
        a = ite(slt(X, bv(0)), bv(1), bv(2))
        assert interval_eval(a, {}) == Interval(1, 2)

    def test_boolean_connectives(self):
        from repro.expr import and_, or_

        p = slt(X, bv(0))
        domains = {X: Interval(0, 5)}
        assert cond_verdict(p, domains) is False
        assert cond_verdict(and_(p, eq(Y, bv(1))), domains) is False
        assert cond_verdict(or_(p, eq(Y, bv(1))), domains) is None


class TestAbsPattern:
    """The queries that motivated the upgrade: decidable without blow-up."""

    def test_abs_nonnegativity_proved(self):
        a = ite(slt(X, bv(0)), neg(X), X)
        solver = Solver(max_nodes=5_000)
        assert not solver.is_satisfiable(
            [eq(X, X), slt(a, bv(0)), _ne_intmin()]
        )

    def test_abs_intmin_is_the_only_counterexample(self):
        a = ite(slt(X, bv(0)), neg(X), X)
        solver = Solver(max_nodes=5_000)
        model = solver.check([slt(a, bv(0))])
        assert model is not None
        assert model["x"] == 0x80000000


class TestXorCanonicalization:
    def test_chain_cancellation(self):
        d = var("d")
        assert bvxor(bvxor(X, d), bvxor(Y, d)) is bvxor(X, Y)

    def test_constants_gather(self):
        e = bvxor(bvxor(X, bv(0x0F)), bv(0xF0))
        assert e is bvxor(X, bv(0xFF))

    def test_full_cancellation_to_constant(self):
        e = bvxor(bvxor(X, Y), bvxor(Y, X))
        assert e is bv(0)

    def test_order_insensitive(self):
        assert bvxor(X, Y) is bvxor(Y, X)

    @settings(max_examples=150)
    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_canonicalization_preserves_semantics(self, a, b, c):
        d = var("d")
        expr = bvxor(bvxor(X, bv(c)), bvxor(bvxor(Y, d), bvxor(X, d)))
        env = {"x": a, "y": b, "d": c}
        assert evaluate(expr, env) == (b ^ c)


def _ne_intmin():
    from repro.expr import ne

    return ne(X, bv(0x80000000))
