"""Atomic artifact writes: a killed run never leaves a truncated file.

Every artifact the CLI persists — JSONL traces, metrics snapshots, JSON
reports, engine checkpoints — goes through these helpers.  The contract:
the destination path either keeps its previous content or holds the
complete new content, never a prefix of it.  That is what makes
checkpoint/resume trustworthy: a run killed mid-``--checkpoint-every``
leaves the last *complete* checkpoint on disk, not a half-written pickle.

Implementation is the classic temp-file-in-same-directory + ``os.replace``
dance (``os.replace`` is atomic on POSIX and Windows when source and
destination share a filesystem, which same-directory guarantees).  The
temp file is fsync'd before the rename so the rename never outlives the
data on a crash, and the *containing directory* is fsync'd after the
rename so the rename itself is durable: on POSIX the new directory entry
lives in the directory's metadata, and a power loss between the rename
and the directory sync could otherwise resurrect the old file — fatal
for the service's run store, which treats a published report as
immutable truth.
"""

from __future__ import annotations

import os
import tempfile

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def _fsync_directory(directory: str) -> None:
    """Flush a directory's entry table; best-effort where unsupported.

    Windows cannot open directories with ``os.open``; some filesystems
    refuse to fsync a directory fd.  Both degrade to the pre-PR-9
    guarantee (atomic but not crash-durable rename) rather than failing
    the write.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (all-or-nothing)."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
        _fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (all-or-nothing)."""
    atomic_write_bytes(path, text.encode(encoding))
