"""The job worker subprocess: one SDE run, streamed and checkpointed.

Each attempt at a job runs here, in a child process supervised by the
:class:`~repro.service.jobs.JobManager`.  The worker:

- rebuilds the scenario from the submission spec (workload registry);
- runs the engine with service-owned checkpointing into the job dir, so
  a killed attempt leaves a resumable checkpoint behind;
- **streams** the event trace: every emitted event is appended to
  ``trace.jsonl`` immediately (line-buffered JSONL), which is what makes
  ``GET /v1/runs/{id}/trace`` live rather than post-hoc;
- on a retry or a service restart, *resumes from the latest checkpoint*
  (PR 3 machinery) instead of starting over — the resumed report is
  pinned equal to an uninterrupted run on every deterministic field;
- writes ``report.json`` atomically and ships a small summary dict back
  on the result queue (or a typed
  :class:`~repro.core.resilience.WorkerFailure` on error).

**Chaos.**  The supervisor decides per attempt whether this worker dies
(seeded coin over ``SDE_CHAOS_KILL_WORKER``, see
:func:`repro.core.resilience.chaos_kill_requested`) and passes a
deterministic ``kill_after`` trace-event count in the payload.  The
worker then ``os._exit``\\ s mid-run once that many events have streamed
— after data has hit the trace file and (usually) a checkpoint has hit
disk, which is exactly the crash the resume path must survive.
"""

from __future__ import annotations

import json
import os
import pickle
import traceback
from typing import Optional

from ..core.resilience import WorkerFailure, resume_engine
from ..core.scenario import build_engine
from ..obs.events import TraceEmitter
from .spec import SubmissionSpec

__all__ = ["StreamingTraceEmitter", "execute_job", "job_entry"]


class StreamingTraceEmitter(TraceEmitter):
    """A TraceEmitter that writes each event through to a JSONL file.

    The in-memory event list stays authoritative (checkpoints serialize
    it); the file is a write-through mirror flushed per event so an
    ``os._exit`` or SIGKILL loses nothing that was emitted.  ``kill_after``
    implements the chaos gate's mid-run worker death: the process exits
    hard once that many events have been streamed.
    """

    __slots__ = ("_handle", "_streamed", "kill_after")

    def __init__(self, path, kill_after: Optional[int] = None) -> None:
        super().__init__()
        # "w": a retry owns the whole file — its resumed trace replays the
        # checkpointed prefix, so appending would duplicate events.
        self._handle = open(path, "w", encoding="utf-8")
        self._streamed = 0
        self.kill_after = kill_after

    def emit(self, ev: str, **fields) -> None:
        super().emit(ev, **fields)
        self._stream(self.events[-1])

    def extend(self, events) -> None:
        events = list(events)
        super().extend(events)
        for event in events:
            self._stream(event)

    def _stream(self, event: dict) -> None:
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()
        self._streamed += 1
        if self.kill_after is not None and self._streamed >= self.kill_after:
            os._exit(137)  # chaos: die like an OOM kill, mid-run

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass


def execute_job(payload: dict) -> dict:
    """Run one job attempt to completion in this process.

    ``payload`` carries the spec dict plus the service-owned paths and
    cadence::

        {"spec": {...}, "trace_path": ..., "report_path": ...,
         "checkpoint_path": ..., "checkpoint_every": 25,
         "kill_after": None | int}

    Returns the summary dict the job manager stores on the record.
    """
    spec = SubmissionSpec.from_dict(payload["spec"])
    checkpoint_path = payload["checkpoint_path"]
    trace = StreamingTraceEmitter(
        payload["trace_path"], kill_after=payload.get("kill_after")
    )
    try:
        resumed = os.path.exists(checkpoint_path)
        if resumed:
            # A previous attempt (or a previous service life) left a
            # checkpoint: continue it rather than redoing the work.  The
            # resumed report is pinned equal to an uninterrupted run.
            engine = resume_engine(
                checkpoint_path,
                trace=trace,
                checkpoint_path=checkpoint_path,
                checkpoint_every_events=payload["checkpoint_every"],
            )
        else:
            scenario = spec.build_scenario()
            engine = build_engine(
                scenario,
                spec.algorithm,
                trace=trace,
                checkpoint_path=checkpoint_path,
                checkpoint_every_events=payload["checkpoint_every"],
                **spec.engine_overrides(),
            )
        report = engine.run()
        from ..core.reporting import save_report

        save_report(report, payload["report_path"])
        return {
            "ok": True,
            "events_executed": report.events_executed,
            "total_states": report.total_states,
            "error_states": len(report.error_states),
            "aborted": report.aborted,
            "abort_reason": report.abort_reason,
            "resumed": resumed,
            "checkpoints_written": getattr(report, "checkpoints_written", 0),
            "trace_events": len(trace),
        }
    finally:
        trace.close()


def job_entry(payload_bytes: bytes, queue, attempt: int = 0) -> None:
    """Subprocess target: run the attempt, ship a summary or a failure.

    Mirrors the parallel runner's ``_worker_entry`` contract: failures
    travel as typed :class:`WorkerFailure` records (exception name,
    message, full traceback), never bare pickled exceptions.
    """
    # A fork()ed child inherits the service loop's signal plumbing: a
    # no-op C handler for SIGTERM/SIGINT plus the loop's wakeup fd.
    # Left in place, terminate() would not kill the worker, and worse,
    # the child's handler would write into the *shared* wakeup pipe and
    # convince the parent loop that *it* was signalled.  Restore default
    # handling before any real work.
    import signal

    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)

    payload = pickle.loads(payload_bytes)
    try:
        queue.put(pickle.dumps(execute_job(payload)))
    except BaseException as exc:  # noqa: BLE001 - classified for the parent
        queue.put(
            pickle.dumps(
                WorkerFailure(
                    task_index=0,
                    kind="exception",
                    message=str(exc),
                    exc_type=type(exc).__name__,
                    traceback=traceback.format_exc(),
                    attempts=attempt + 1,
                )
            )
        )
