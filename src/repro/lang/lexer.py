"""Tokenizer for NSL (Node Scripting Language).

NSL is the C-like guest language node programs are written in.  The lexer
produces a flat token list consumed by the recursive-descent parser.  It
supports decimal/hex/char integer literals, string literals (used only as
intrinsic arguments, e.g. ``symbolic("drop")``), line (``//``) and block
(``/* */``) comments.
"""

from __future__ import annotations

from typing import List, NamedTuple

from .errors import LexError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    [
        "var",
        "const",
        "func",
        "if",
        "else",
        "while",
        "for",
        "break",
        "continue",
        "return",
    ]
)

# Multi-character operators first (longest match wins).
_OPERATORS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "~",
    "&",
    "|",
    "^",
    "?",
    ":",
    ";",
    ",",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
]

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


class Token(NamedTuple):
    kind: str  # 'int', 'string', 'ident', 'keyword', 'op', 'eof'
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value!r}@{self.line}:{self.column}"


def tokenize(source: str) -> List[Token]:
    """Convert NSL source text into a token list ending with an EOF token."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    length = len(source)

    def column() -> int:
        return pos - line_start + 1

    while pos < length:
        ch = source[pos]

        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue

        if source.startswith("//", pos):
            while pos < length and source[pos] != "\n":
                pos += 1
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise LexError("unterminated block comment", line, column())
            line += source.count("\n", pos, end)
            newline = source.rfind("\n", pos, end)
            if newline >= 0:
                line_start = newline + 1
            pos = end + 2
            continue

        if ch.isdigit():
            start, start_col = pos, column()
            if source.startswith("0x", pos) or source.startswith("0X", pos):
                pos += 2
                while pos < length and source[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                text = source[start:pos]
                if len(text) == 2:
                    raise LexError("empty hex literal", line, start_col)
                value = int(text, 16)
            else:
                while pos < length and source[pos].isdigit():
                    pos += 1
                value = int(source[start:pos])
            tokens.append(Token("int", value, line, start_col))
            continue

        if ch == "'":
            start_col = column()
            pos += 1
            if pos >= length:
                raise LexError("unterminated char literal", line, start_col)
            if source[pos] == "\\":
                pos += 1
                if pos >= length or source[pos] not in _ESCAPES:
                    raise LexError("bad escape in char literal", line, start_col)
                value = _ESCAPES[source[pos]]
            else:
                value = ord(source[pos])
            pos += 1
            if pos >= length or source[pos] != "'":
                raise LexError("unterminated char literal", line, start_col)
            pos += 1
            tokens.append(Token("int", value, line, start_col))
            continue

        if ch == '"':
            start_col = column()
            pos += 1
            chars: List[str] = []
            while pos < length and source[pos] != '"':
                if source[pos] == "\n":
                    raise LexError("newline in string literal", line, start_col)
                if source[pos] == "\\":
                    pos += 1
                    if pos >= length or source[pos] not in _ESCAPES:
                        raise LexError("bad escape in string", line, start_col)
                    chars.append(chr(_ESCAPES[source[pos]]))
                else:
                    chars.append(source[pos])
                pos += 1
            if pos >= length:
                raise LexError("unterminated string literal", line, start_col)
            pos += 1
            tokens.append(Token("string", "".join(chars), line, start_col))
            continue

        if ch.isalpha() or ch == "_":
            start, start_col = pos, column()
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, start_col))
            continue

        matched = False
        for op in _OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token("op", op, line, column()))
                pos += len(op)
                matched = True
                break
        if matched:
            continue

        raise LexError(f"unexpected character {ch!r}", line, column())

    tokens.append(Token("eof", None, line, column()))
    return tokens
