"""Mini verification case studies: proving guest-code properties.

Each case runs a small NSL program on fully symbolic inputs, asserts a
functional property inside the guest with ``assert()``, and requires
symbolic execution to either prove it (no error states across all paths)
or find the counterexample we planted.  This is the classic use of a
symbolic VM and exercises deep interactions between the interpreter, the
path-constraint machinery and the solver.
"""

from repro.lang import compile_source
from repro.solver import Solver
from repro.vm import Executor, Status


def explore(source, entry="main", args=(), max_steps=500_000):
    program = compile_source(source)
    executor = Executor(program, Solver(), max_steps_per_event=max_steps)
    state = executor.make_initial_state(0)
    finals = executor.run_event(state, entry, args)
    errors = [s for s in finals if s.status == Status.ERROR]
    completed = [s for s in finals if s.status == Status.IDLE]
    return completed, errors, executor


class TestProvedProperties:
    def test_abs_is_nonnegative_except_intmin(self):
        # abs(INT_MIN) wraps; excluding it, abs(x) >= 0 holds on all paths.
        completed, errors, _ = explore(
            """
            func main() {
                var x = symbolic("x");
                assume(x != 0x80000000);
                var a = abs(x);
                assert(a >= 0);
            }
            """
        )
        assert errors == []
        assert completed

    def test_abs_intmin_counterexample_found(self):
        completed, errors, executor = explore(
            """
            func main() {
                var x = symbolic("x");
                var a = abs(x);
                assert(a >= 0, 11);
            }
            """
        )
        assert len(errors) == 1
        model = executor.solver.get_model(errors[0].constraints)
        assert model["n0.x"] == 0x80000000

    def test_max3_is_upper_bound(self):
        # Three independent symbolic operands flowing into nested ite
        # expressions: interval propagation cannot decide these alone, so
        # the solver falls back to (complete) enumeration — bound the input
        # width like a KLEE user would bound input size.
        completed, errors, _ = explore(
            """
            func max3(a, b, c) { return max(max(a, b), c); }
            func main() {
                var a = symbolic("a", 5);
                var b = symbolic("b", 5);
                var c = symbolic("c", 5);
                var m = max3(a, b, c);
                assert(m >= a && m >= b && m >= c);
                assert(m == a || m == b || m == c);
            }
            """
        )
        assert errors == []

    def test_clamp_stays_in_range(self):
        completed, errors, _ = explore(
            """
            func clamp(x, lo, hi) {
                if (x < lo) { return lo; }
                if (x > hi) { return hi; }
                return x;
            }
            func main() {
                var x = symbolic("x");
                var c = clamp(x, 10, 20);
                assert(c >= 10 && c <= 20);
            }
            """
        )
        assert errors == []
        # clamp explores exactly three paths: below, above, inside.
        assert len(completed) == 3

    def test_parity_via_two_methods_agree(self):
        completed, errors, _ = explore(
            """
            func main() {
                var x = symbolic("x", 8);
                var p1 = x & 1;
                var half = lshr(x, 1);
                var p2 = x - (half + half);
                assert(p1 == p2);
            }
            """
        )
        assert errors == []

    def test_swap_via_xor(self):
        completed, errors, _ = explore(
            """
            func main() {
                var a = symbolic("a");
                var b = symbolic("b");
                var x = a; var y = b;
                x = x ^ y;
                y = x ^ y;
                x = x ^ y;
                assert(x == b && y == a);
            }
            """
        )
        assert errors == []
        assert len(completed) == 1  # no branching at all: pure dataflow


class TestSortingNetwork:
    SORT3 = """
    var v[3];

    func cswap(i, j) {
        if (v[i] > v[j]) {
            var t = v[i];
            v[i] = v[j];
            v[j] = t;
        }
    }

    func main() {
        v[0] = symbolic("a", 8);
        v[1] = symbolic("b", 8);
        v[2] = symbolic("c", 8);
        // 3-element sorting network
        cswap(0, 1);
        cswap(1, 2);
        cswap(0, 1);
        assert(v[0] <= v[1] && v[1] <= v[2], 3);
    }
    """

    def test_network_sorts_all_inputs(self):
        completed, errors, _ = explore(self.SORT3)
        assert errors == []
        # Up to 2^3 comparator outcomes, minus infeasible combinations.
        assert 4 <= len(completed) <= 8

    def test_broken_network_yields_counterexample(self):
        broken = self.SORT3.replace(
            "cswap(0, 1);\n        cswap(1, 2);\n        cswap(0, 1);",
            "cswap(0, 1);\n        cswap(1, 2);",
        )
        completed, errors, executor = explore(broken)
        assert errors
        # Re-run the counterexample concretely and confirm it is unsorted
        # after the broken network.
        model = executor.solver.get_model(errors[0].constraints)
        a = model.get("n0.a", 0)
        b = model.get("n0.b", 0)
        c = model.get("n0.c", 0)
        first = sorted([a, b])  # cswap(0,1)
        arr = [first[0], *sorted([first[1], c])]  # cswap(1,2)
        assert not (arr[0] <= arr[1] <= arr[2]) or arr[0] > arr[1]


class TestChecksums:
    def test_additive_checksum_detects_single_corruption(self):
        # Modular-arithmetic cancellation is beyond interval reasoning:
        # complete enumeration over bounded 4-bit inputs proves it instead.
        completed, errors, _ = explore(
            """
            func main() {
                var a = symbolic("a", 4);
                var b = symbolic("b", 4);
                var sum = (a + b) & 0xf;
                // corrupt nibble a by a nonzero delta
                var delta = symbolic("d", 4);
                assume(delta != 0);
                var a2 = (a + delta) & 0xf;
                var sum2 = (a2 + b) & 0xf;
                // additive checksum must catch any single-symbol corruption
                assert(sum != sum2);
            }
            """
        )
        assert errors == []

    def test_xor_checksum_misses_symmetric_corruption(self):
        """XOR checksums miss equal corruption of two bytes: symbolic
        execution finds the collision."""
        completed, errors, executor = explore(
            """
            func main() {
                var a = symbolic("a", 8);
                var b = symbolic("b", 8);
                var d = symbolic("d", 8);
                assume(d != 0);
                var sum = a ^ b;
                var sum2 = (a ^ d) ^ (b ^ d);
                assert(sum != sum2, 99);
            }
            """
        )
        assert len(errors) == 1  # always fails: sums are provably equal
        assert errors[0].error.code == 99
