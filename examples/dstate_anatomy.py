#!/usr/bin/env python3
"""Anatomy of a state mapping: watch the paper's figures happen live.

Drives a 3-node line through the exact situation of Figures 3 and 4 —
a local branch followed by a conflicted transmission — and renders the
resulting dscenario/dstate/virtual-state structure for each algorithm,
reproducing the paper's diagrams as ASCII.

Run: ``python examples/dstate_anatomy.py``
"""

from repro.api import Scenario, Topology, build_engine
from repro.core.tracing import render_groups, render_virtual_structure
from repro.net import SymbolicPacketDrop

# Node 2 sends to node 1 (which may drop -> the local branch of Figure 3);
# node 1 then forwards to node 0 (the conflicted transmission of Figure 4).
PROGRAM = """
var got;
func on_boot() {
    if (node_id() == 2) { timer_set(0, 100); }
}
func on_timer(tid) {
    var buf[1];
    buf[0] = 7;
    uc_send(1, buf, 1);
}
func on_recv(src, len) {
    got = recv_byte(0);
    if (node_id() == 1) {
        var buf[1];
        buf[0] = got + 1;
        uc_send(0, buf, 1);
    }
}
"""


def scenario():
    return Scenario(
        name="anatomy",
        program=PROGRAM,
        topology=Topology.line(3),
        horizon_ms=1000,
        failure_factory=lambda: [SymbolicPacketDrop([1])],
    )


def main() -> int:
    for algorithm, caption in (
        ("cob", "Figure 3: the branch forked BOTH dscenarios completely"),
        ("cow", "Figure 4: the conflicted forward forked targets AND the"
                " bystander (node 2's copy is a pure duplicate)"),
        ("sds", "Figures 6-8: only the target forked; node 2 is shared via"
                " virtual states"),
    ):
        engine = build_engine(scenario(), algorithm, check_invariants=True)
        report = engine.run()
        print("=" * 66)
        print(f"{algorithm.upper()} — {report.total_states} states,"
              f" {report.group_count} groups")
        print("=" * 66)
        print(render_groups(engine.mapper))
        if algorithm == "sds":
            print()
            print(render_virtual_structure(engine.mapper))
        print(f"\n  {caption}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
