"""Evaluation scenarios: the paper's grids, the line example, the flooding
limitation case, and the guest programs they run.

Besides the factory functions, the module keeps a name -> factory
*registry* so tools (the CLI, benchmark drivers, :mod:`repro.api` users)
can build workloads from strings; :func:`register_workload` admits
out-of-tree scenarios to the same machinery.
"""

from typing import Callable, Dict

from .dissemination import (  # noqa: F401
    DISSEMINATION_APP,
    dissemination_scenario,
    first_gossip_packet,
)
from .election import (  # noqa: F401
    ELECTION_APP,
    election_scenario,
    id_gossip_from_max,
)
from .flood import flood_scenario  # noqa: F401
from .grid import PAPER_SIZES, grid_scenario, paper_grid_scenario  # noqa: F401
from .line import line_scenario  # noqa: F401
from .quorum import QUORUM_APP, quorum_scenario, write_packet  # noqa: F401

#: built-in workload name -> scenario factory.  Factories take the
#: workload size as their first argument; further keywords are
#: factory-specific (see each module).
WORKLOADS: Dict[str, Callable] = {
    "grid": grid_scenario,
    "line": line_scenario,
    "flood": flood_scenario,
    "dissemination": dissemination_scenario,
    "election": election_scenario,
    "quorum": quorum_scenario,
}


def register_workload(name: str, factory: Callable) -> None:
    """Register (or replace) a workload factory under ``name``."""
    WORKLOADS[name] = factory


def available_workloads() -> tuple:
    """Every registered workload name, sorted."""
    return tuple(sorted(WORKLOADS))


def make_workload(name: str, *args, **kwargs):
    """Build a scenario from a registered workload name."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {available_workloads()}"
        ) from None
    return factory(*args, **kwargs)
from .programs import (  # noqa: F401
    BUGGY_DEDUP_APP,
    COLLECT_APP,
    FLOOD_APP,
    PING_PONG_APP,
    branch_storm_program,
    buggy_dedup_program,
    collect_program,
    first_collect_packet,
    flood_program,
)
