"""Atomic artifact writes: temp file + rename, no partial files ever.

Every file the CLI produces (reports, traces, metrics snapshots,
checkpoints) goes through :func:`repro.obs.fileio.atomic_write_bytes`.
The contract: a reader never observes a half-written file — it sees
either the previous content or the complete new content — and a failed
write leaves no temp droppings behind.
"""

from __future__ import annotations

import os

import pytest

from repro.obs import atomic_write_bytes, atomic_write_text


def _entries(directory):
    return sorted(p.name for p in directory.iterdir())


class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        path = tmp_path / "artifact.bin"
        atomic_write_bytes(path, b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_writes_text(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, '{"ok": true}\n')
        assert path.read_text() == '{"ok": true}\n'

    def test_replaces_existing_content(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_files_left_after_success(self, tmp_path):
        path = tmp_path / "artifact.json"
        for _ in range(3):
            atomic_write_text(path, "content")
        assert _entries(tmp_path) == ["artifact.json"]

    def test_failed_replace_cleans_up_and_keeps_old_content(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "previous")

        def boom(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="disk on fire"):
            atomic_write_text(path, "next")
        monkeypatch.undo()
        # The old content survives and no temp file is left behind.
        assert path.read_text() == "previous"
        assert _entries(tmp_path) == ["artifact.json"]

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(OSError):
            atomic_write_text(tmp_path / "absent" / "artifact.json", "x")

    def test_containing_directory_is_fsynced_after_rename(
        self, tmp_path, monkeypatch
    ):
        """Crash durability: the rename must be flushed, not just the data.

        Capture every ``os.fsync`` call with the kind of file the fd
        refers to — exactly one call must target the containing
        directory, and it must come after the data fsync.
        """
        import stat

        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            mode = os.fstat(fd).st_mode
            synced.append("dir" if stat.S_ISDIR(mode) else "file")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        atomic_write_text(tmp_path / "artifact.json", "durable")
        assert synced == ["file", "dir"]

    def test_directory_fsync_failure_is_not_fatal(self, tmp_path, monkeypatch):
        """EINVAL from a directory fsync (some filesystems) degrades
        gracefully: the write still lands and nothing raises."""
        import stat

        real_fsync = os.fsync

        def picky_fsync(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                raise OSError(22, "Invalid argument")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", picky_fsync)
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "content")
        assert path.read_text() == "content"


class TestConsumersWriteAtomically:
    def test_trace_dump_leaves_single_file(self, tmp_path):
        from repro.obs import TraceEmitter, load_trace

        trace = TraceEmitter()
        trace.emit("run.start", algorithm="sds", nodes=4)
        trace.emit("run.end", algorithm="sds", events=7)
        path = tmp_path / "trace.jsonl"
        trace.dump(path)
        assert _entries(tmp_path) == ["trace.jsonl"]
        assert path.read_text().endswith("\n")
        assert [e["ev"] for e in load_trace(path)] == ["run.start", "run.end"]

    def test_save_metrics_leaves_single_file(self, tmp_path):
        import json

        from repro.obs import save_metrics

        path = tmp_path / "metrics.json"
        save_metrics({"schema": 1, "counters": {}}, path)
        assert _entries(tmp_path) == ["metrics.json"]
        assert json.loads(path.read_text())["schema"] == 1

    def test_save_report_leaves_single_file(self, tmp_path):
        from repro.core.reporting import load_report_dict, save_report
        from repro.core.scenario import build_engine
        from repro.workloads import grid_scenario

        report = build_engine(grid_scenario(3, sim_seconds=2), "sds").run()
        path = tmp_path / "report.json"
        save_report(report, path)
        assert _entries(tmp_path) == ["report.json"]
        assert load_report_dict(path)["total_states"] == report.total_states
